"""Design-space exploration — environment, cost and confidence together.

A realistic late-stage question the library can answer in one script: *the
sensor supply passed ASIL-B on the bench — does the verdict survive a hot
vehicle-mounted deployment, what does it cost to fix if not, and how robust
is the final verdict to the reliability data?*

Steps:

1. baseline: DECISIVE on the power supply at reference conditions;
2. derate the reliability model for a ground-mobile 85 °C profile
   (MIL-HDBK-217-style pi factors) and re-run the loop;
3. compare the Pareto fronts of mechanism cost vs SPFM in both worlds;
4. quantify the final verdict's robustness by Monte Carlo over the data;
5. write the markdown safety summary report.

Run:  python examples/design_space_exploration.py
"""

import tempfile
from pathlib import Path

from repro.casestudies.power_supply import (
    build_power_supply_ssam,
    power_supply_mechanisms,
    power_supply_reliability,
)
from repro.decisive import DecisiveProcess
from repro.reliability.derating import OperatingProfile, derate_model
from repro.safety import (
    pareto_front,
    pmhf,
    pmhf_meets,
    run_ssam_fmea,
    spfm_uncertainty,
    write_safety_report,
)


def run_world(label, reliability):
    process = DecisiveProcess(
        build_power_supply_ssam(),
        reliability,
        power_supply_mechanisms(),
        target_asil="ASIL-B",
        # Step 3 must *replace* the hand-modelled bench data with this
        # world's (possibly derated) catalogue.
        overwrite_reliability=True,
    )
    log = process.run()
    concept = log.concept
    fmea, _, _ = process.step4a_evaluate()
    pmhf_value = pmhf(fmea, process.deployments)
    print(
        f"{label:28} SPFM {concept.spfm * 100:6.2f}%  "
        f"PMHF {pmhf_value:.2e}/h ({'PASS' if pmhf_meets(pmhf_value, 'ASIL-B') else 'FAIL'})  "
        f"{concept.achieved_asil:7} cost {concept.fmeda.total_cost:g} h"
    )
    return process, log


def main() -> None:
    bench = power_supply_reliability()
    field_profile = OperatingProfile(
        temperature_celsius=85.0,
        quality="commercial",
        environment="ground_mobile",
    )
    field = derate_model(bench, field_profile)
    print(
        f"derating factor for 85C / commercial / ground-mobile: "
        f"x{field_profile.total_factor:.1f}\n"
    )

    print("== DECISIVE outcomes ==")
    _, bench_log = run_world("bench (reference)", bench)
    field_process, field_log = run_world("field (derated)", field)
    print(
        "\nnote: SPFM is a *ratio* metric — uniform derating scales every\n"
        "FIT by the same factor and leaves it unchanged; PMHF is absolute\n"
        "and degrades with the environment, which is exactly why ISO 26262\n"
        "requires both."
    )

    # A localised hot spot (the MCU sits next to the regulator) shifts the
    # *relative* contributions, so even the SPFM moves.
    hot_mcu = derate_model(
        bench,
        OperatingProfile(),
        overrides={"MC": OperatingProfile(temperature_celsius=105.0)},
    )
    run_world("hot-spot MCU (105C local)", hot_mcu)

    # Pareto fronts: what does each extra hour of mechanism work buy?
    print("\n== cost vs SPFM fronts ==")
    for label, reliability in (("bench", bench), ("field", field)):
        from repro.federation import aggregate_reliability

        model = build_power_supply_ssam()
        aggregate_reliability(model, reliability, overwrite=True)
        fmea = run_ssam_fmea(model.top_components()[0], reliability)
        front = pareto_front(fmea, power_supply_mechanisms())
        points = "  ".join(
            f"({plan.cost:g}h, {plan.spfm * 100:.2f}%)" for plan in front
        )
        print(f"  {label:6} {points}")

    # Robustness of the field verdict under data uncertainty.
    fmea, _, _ = field_process.step4a_evaluate()
    robustness = spfm_uncertainty(
        fmea, field_process.deployments, target_asil="ASIL-B", samples=1500
    )
    low, high = robustness.interval(0.90)
    print(
        f"\nfield verdict robustness: SPFM 90% interval "
        f"[{low * 100:.2f}%, {high * 100:.2f}%], "
        f"ASIL-B holds in {robustness.confidence:.0%} of draws"
    )

    # The one-document summary.
    out = Path(tempfile.mkdtemp(prefix="same_report_")) / "safety_report.md"
    write_safety_report(
        out,
        field_log.concept.fmeda,
        target_asil="ASIL-B",
        hazards=field_log.concept.hazards,
        requirements=field_log.concept.safety_requirements,
        uncertainty=robustness,
    )
    print(f"\nsafety summary report written to {out}")
    print("--- first lines ---")
    print("\n".join(out.read_text().splitlines()[:14]))


if __name__ == "__main__":
    main()
