"""Iterative design of the AUV main control unit (System B).

Runs the full DECISIVE loop on the paper's second evaluation subject: the
process iterates — evaluate (Step 4a), refine with safety mechanisms
(Step 4b) — until the design reaches ASIL-B, then synthesises the safety
concept (Step 5).  Also shows the Pareto front of (cost, SPFM) trade-offs
SAME can search when several mechanisms compete.

Run:  python examples/auv_design_iteration.py
"""

from repro.casestudies.systems import build_system_b, system_mechanisms
from repro.decisive import DecisiveProcess
from repro.reliability import standard_reliability_model
from repro.safety import pareto_front, run_ssam_fmea


def main() -> None:
    model = build_system_b()
    print(f"System B: {model.element_count()} model elements")

    process = DecisiveProcess(
        model,
        reliability=standard_reliability_model(),
        mechanisms=system_mechanisms(),
        target_asil="ASIL-B",
    )
    log = process.run()

    print(f"\nDECISIVE iterations (target {log.target_asil}):")
    for record in log.iterations:
        deployed = (
            ", ".join(
                f"{d.mechanism} on {d.component}" for d in record.deployments
            )
            or "-"
        )
        print(
            f"  iter {record.index}: SPFM {record.spfm * 100:6.2f}%  "
            f"{record.asil:7}  new mechanisms: {deployed}"
        )
    print(f"target met: {log.met_target}")

    concept = log.concept
    print("\nSafety concept (DECISIVE Step 5):")
    print(f"  system         : {concept.system}")
    print(f"  achieved       : {concept.achieved_asil} (SPFM {concept.spfm * 100:.2f}%)")
    print(f"  requirements   : {concept.safety_requirements}")
    print(f"  hazards        : {concept.hazards}")
    print(f"  SM cost        : {concept.fmeda.total_cost:g} h")
    for deployment in concept.deployments:
        print(
            f"    {deployment.mechanism:22} on {deployment.component:8} "
            f"/{deployment.failure_mode:12} cov {deployment.coverage:.0%} "
            f"cost {deployment.cost:g}h"
        )

    # The Pareto front over the full catalogue: cheapest designs first.
    fmea = run_ssam_fmea(
        model.top_components()[0], standard_reliability_model()
    )
    front = pareto_front(fmea, system_mechanisms())
    print(f"\nPareto front ({len(front)} non-dominated plans):")
    for plan in front[:12]:
        print(
            f"  cost {plan.cost:6.1f} h  SPFM {plan.spfm * 100:6.2f}%  "
            f"{plan.asil}"
        )
    if len(front) > 12:
        print(f"  ... and {len(front) - 12} more")


if __name__ == "__main__":
    main()
