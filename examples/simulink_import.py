"""Model federation & transformation — non-Simulink tool support (REQ1/REQ2).

Demonstrates the paper's Section IV-D2 workflow:

1. persist a Simulink design and a Table II reliability workbook to disk;
2. transform the Simulink model to SSAM *without information loss* (and
   prove it by reconstructing an identical Simulink model);
3. federate reliability data into the SSAM model through SSAM's
   ``ExternalReference`` facility with an RQL extraction query;
4. run the graph-based FMEA (Algorithm 1) on the hand-modelled SSAM
   architecture and compare with the injection-based result.

Run:  python examples/simulink_import.py
"""

import tempfile
from pathlib import Path

from repro.casestudies.power_supply import (
    ASSUMED_STABLE,
    build_power_supply_simulink,
    build_power_supply_ssam,
    power_supply_reliability,
)
from repro.federation import attach_reliability_reference, federate_reliability
from repro.reliability.sources import save_reliability_table
from repro.safety import run_simulink_fmea, run_ssam_fmea, spfm
from repro.ssam.base import text_of
from repro.transform import simulink_to_ssam, ssam_to_simulink


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="same_import_"))

    # -- 1. artefacts on disk -------------------------------------------------
    simulink_path = build_power_supply_simulink().save(
        workdir / "power_supply.slx.json"
    )
    reliability_path = save_reliability_table(
        power_supply_reliability(), workdir / "reliability.csv"
    )
    print(f"artefacts under {workdir}")

    # -- 2. lossless transformation -----------------------------------------
    from repro.simulink import SimulinkModel

    simulink_model = SimulinkModel.load(simulink_path)
    ssam = simulink_to_ssam(simulink_model)
    reconstructed = ssam_to_simulink(ssam)
    lossless = reconstructed.to_dict() == simulink_model.to_dict()
    print(
        f"Simulink -> SSAM: {ssam.element_count()} elements; "
        f"round trip identical: {lossless}"
    )
    assert lossless

    # -- 3. federation through ExternalReference + RQL -----------------------
    ssam_hand = build_power_supply_ssam()
    system = ssam_hand.top_components()[0]
    for sub in system.get("subcomponents"):
        name = text_of(sub)
        if name not in ("D1", "L1", "C1", "C2", "MC1"):
            continue
        sub.set("failureModes", [])  # wipe; we will pull from the workbook
        attach_reliability_reference(
            sub,
            location="reliability.csv",
            driver_type="table",
            # An explicit extraction rule, the RQL equivalent of the
            # paper's EOL script (a blank query would also work: the
            # federator then parses the whole Table II workbook).
            query=(
                "[{'fit': r['FIT']} for r in rows() "
                "if r['Component'] == component_class][0]"
            ),
        )
    report = federate_reliability(ssam_hand, base_dir=workdir)
    print(
        f"federated FIT for {report.populated} "
        f"(errors: {report.errors or 'none'})"
    )

    # -- 4. graph FMEA vs injection FMEA -------------------------------------
    ssam_full = build_power_supply_ssam()  # with hand-modelled failure modes
    graph_fmea = run_ssam_fmea(
        ssam_full.top_components()[0], power_supply_reliability()
    )
    injection_fmea = run_simulink_fmea(
        simulink_model,
        power_supply_reliability(),
        sensors=["CS1"],
        assume_stable=ASSUMED_STABLE,
    )
    print(
        f"graph FMEA      SR components: "
        f"{sorted(graph_fmea.safety_related_components())}, "
        f"SPFM {spfm(graph_fmea) * 100:.2f}%"
    )
    print(
        f"injection FMEA  SR components: "
        f"{sorted(injection_fmea.safety_related_components())}, "
        f"SPFM {spfm(injection_fmea) * 100:.2f}%"
    )


if __name__ == "__main__":
    main()
