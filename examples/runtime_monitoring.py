"""Runtime monitor generation (the paper's future-work item VIII.4).

Declares the power-supply's current sensor *dynamic*, generates a runtime
monitor from its IO-node limits, and drives it with a time series produced
by the transient circuit simulator — healthy at first, then with the diode
failing open mid-mission.  The monitor flags the violation within a few
samples.  Also prints the generated standalone monitor module.

Run:  python examples/runtime_monitoring.py
"""

from repro.casestudies.power_supply import build_power_supply_ssam
from repro.circuit import Netlist, transient
from repro.monitor import generate_monitor, generate_monitor_source
from repro.ssam.base import text_of


def psu_netlist(diode_open: bool) -> Netlist:
    netlist = Netlist("psu")
    netlist.voltage_source("DC1", "vin", "0", 5.0)
    if not diode_open:
        netlist.diode("D1", "vin", "n1")
    netlist.inductor("L1", "n1", "n2", 1e-3, series_resistance=0.1)
    netlist.capacitor("C1", "n2", "0", 10e-6)
    netlist.capacitor("C2", "n2", "0", 10e-6)
    netlist.ammeter("CS1", "n2", "n3")
    netlist.resistor("MC1", "n3", "0", 100.0)
    return netlist


def main() -> None:
    model = build_power_supply_ssam()
    system = model.top_components()[0]
    for sub in system.get("subcomponents"):
        if text_of(sub) == "CS1":
            sub.set("dynamic", True)  # SSAM: dynamic => monitored at runtime

    monitor = generate_monitor(model, debounce=3)
    print("generated channels:")
    for channel in monitor.channels():
        print(
            f"  {channel.name}: [{channel.lower}, {channel.upper}] "
            f"{channel.unit} (debounce {channel.debounce})"
        )

    # Healthy mission segment: the supply settles to ~43.6 mA.  The first
    # millisecond is start-up inrush and is outside the monitored mission.
    healthy = transient(psu_netlist(diode_open=False), t_stop=5e-3, dt=5e-5)
    settled = healthy.current("CS1")[20:]
    monitor.observe_series("CS1.I", settled, dt=5e-5, t0=1e-3)
    print(f"\nafter healthy segment: violations = {len(monitor.violations)}")

    # D1 fails open mid-mission: the current collapses below the lower limit.
    faulty = transient(psu_netlist(diode_open=True), t_stop=1e-3, dt=5e-5)
    fired = monitor.observe_series(
        "CS1.I", faulty.current("CS1"), dt=5e-5, t0=5e-3
    )
    print(f"after fault segment: violations = {len(monitor.violations)}")
    if fired:
        print(f"first violation: {fired[0]}")

    print("\n--- generated standalone monitor module ---")
    print(generate_monitor_source(model, debounce=3))


if __name__ == "__main__":
    main()
