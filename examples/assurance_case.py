"""Assurance-case integration (paper Section V-C).

Builds a GSN assurance case whose evidence is the *generated* FMEDA
workbook: an SACM-style artifact stores the query that computes the SPFM
and the acceptance expression checking it against the ASIL-B target.  The
case is then evaluated automatically — once against the refined design
(supported) and once against a regression where ECC was dropped (the same
query now fails, so the case flags itself without human review).

Run:  python examples/assurance_case.py
"""

import tempfile
from pathlib import Path

from repro.assurance import (
    ArtifactReference,
    Context,
    Goal,
    Solution,
    Strategy,
    evaluate_case,
    render_goal_structure,
)
from repro.casestudies.power_supply import (
    ASSUMED_STABLE,
    build_power_supply_simulink,
    power_supply_mechanisms,
    power_supply_reliability,
)
from repro.safety import run_fmeda, run_simulink_fmea, save_fmeda_workbook


def build_case(workdir: Path) -> Goal:
    artifact = ArtifactReference(
        name="generated FMEDA",
        location="fmeda",
        driver_type="table",
        metadata="Summary",
        query="rows('Summary')[0]['SPFM']",
        acceptance="result >= 0.90",  # the ASIL-B SPFM target
        description="SPFM computed from the FMEDA the tool generated",
    )
    top = Goal("G1", "The power-supply design is acceptably safe for H1")
    top.add_context(
        Context("C1", "H1: the power supply fails unexpectedly; target ASIL-B")
    )
    strategy = top.add_support(
        Strategy("S1", "Argument over ISO 26262 architectural metrics")
    )
    goal = strategy.add_goal(
        Goal("G2", "The single point fault metric meets the ASIL-B target")
    )
    goal.add_support(Solution("Sn1", "FMEDA result", artifact=artifact))
    return top


def run_design(workdir: Path, with_ecc: bool) -> None:
    fmea = run_simulink_fmea(
        build_power_supply_simulink(),
        power_supply_reliability(),
        sensors=["CS1"],
        assume_stable=ASSUMED_STABLE,
    )
    deployments = []
    if with_ecc:
        deployments.append(
            power_supply_mechanisms().deploy("MC1", "MCU", "RAM Failure")
        )
    fmeda = run_fmeda(fmea, deployments)
    save_fmeda_workbook(fmeda, workdir / "fmeda")
    print(
        f"  design {'with' if with_ecc else 'WITHOUT'} ECC: "
        f"SPFM {fmeda.spfm * 100:.2f}% ({fmeda.asil})"
    )


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="same_case_"))
    case = build_case(workdir)
    print(render_goal_structure(case))

    print("\n1) refined design (ECC on MC1):")
    run_design(workdir, with_ecc=True)
    evaluation = evaluate_case(case, base_dir=workdir)
    print(f"  case evaluation: {'SUPPORTED' if evaluation.ok else 'FAILED'}")

    print("\n2) regression: ECC dropped from the design:")
    run_design(workdir, with_ecc=False)
    evaluation = evaluate_case(case, base_dir=workdir)
    print(f"  case evaluation: {'SUPPORTED' if evaluation.ok else 'FAILED'}")
    for identifier in evaluation.failures():
        message = evaluation.messages.get(identifier, "")
        print(f"    {identifier}: {evaluation.status(identifier).value}  {message}")


if __name__ == "__main__":
    main()
