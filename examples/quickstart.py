"""Quickstart — the paper's case study in ~40 lines.

Runs DECISIVE Steps 3-4 on the sensor power-supply system (Fig. 11):
automated FMEA by fault injection, SPFM, ECC deployment, FMEDA — ending at
the paper's Table IV numbers (SPFM 5.38 % -> 96.77 %, ASIL-B).

Run:  python examples/quickstart.py
"""

from repro.casestudies.power_supply import (
    ASSUMED_STABLE,
    build_power_supply_simulink,
    power_supply_mechanisms,
    power_supply_reliability,
)
from repro.safety.report import fmea_to_sheet, fmeda_to_sheet, render_text_table
from repro.same import SAME


def main() -> None:
    same = SAME()

    # DECISIVE Step 2 artefact: the system design (a block diagram).
    same.open_simulink(build_power_supply_simulink())

    # Step 3: aggregate the component reliability model (Table II).
    same.load_reliability(power_supply_reliability())

    # Step 4a: automated FMEA by fault injection; the safety goal is
    # judged at current sensor CS1, and DC1 is assumed stable.
    fmea = same.run_fmea_simulink(sensors=["CS1"], assume_stable=ASSUMED_STABLE)
    print("Automated FMEA (DECISIVE Step 4a)")
    print(render_text_table(fmea_to_sheet(fmea)))

    value, asil = same.calculate_spfm()
    print(f"\nSPFM = {value * 100:.2f}%  -> {asil};  ASIL-B needs >= 90%")

    # Step 4b: deploy ECC (99 % coverage of MCU RAM failures, Table III).
    same.load_mechanisms(power_supply_mechanisms())
    same.deploy("MC1", "RAM Failure", "ECC")
    fmeda = same.run_fmeda()
    print("\nFMEDA after deploying ECC on MC1 (DECISIVE Step 4b)")
    print(render_text_table(fmeda_to_sheet(fmeda)))
    print(
        f"\nSPFM = {fmeda.spfm * 100:.2f}%  -> {fmeda.asil}  "
        f"(paper: 5.38% -> 96.77%, ASIL-B)"
    )


if __name__ == "__main__":
    main()
