"""FTA federated with FMEA (the paper's future-work item VIII.1).

Synthesises the loss-of-function fault tree of the power-supply
architecture from the same path model Algorithm 1 uses, quantifies it with
the FMEA's failure-rate data, and cross-checks the two analyses: the FMEA's
single-point components must equal the components in the FTA's singleton
minimal cut sets.  Then shows how adding a redundant diode changes the cut
sets (D1 stops being a single point of failure).

Run:  python examples/fta_federation.py
"""

from repro.casestudies.power_supply import (
    build_power_supply_ssam,
    power_supply_reliability,
)
from repro.fta import federate_fta_fmea
from repro.safety import run_ssam_fmea
from repro.ssam import ArchitectureBuilder
from repro.ssam.base import text_of


def analyse(model, label: str) -> None:
    system = model.top_components()[0]
    fmea = run_ssam_fmea(system, power_supply_reliability())
    federated = federate_fta_fmea(system, fmea, mission_hours=8760.0)
    print(f"== {label} ==")
    print(federated.tree.render())
    print(f"minimal cut sets : {[sorted(cs) for cs in federated.cut_sets]}")
    print(f"FTA single points : {federated.fta_single_points}")
    print(f"FMEA single points: {federated.fmea_single_points}")
    print(f"consistent        : {federated.consistent}")
    print(f"P(top, 1 year)    : {federated.top_probability:.3e}")
    ranked = sorted(
        federated.importance.items(), key=lambda item: -item[1]
    )
    print("Fussell-Vesely importance:")
    for event, importance in ranked:
        print(f"  {event:20} {importance:6.1%}")
    print()


def with_redundant_diode():
    """The same PSU but with a parallel diode path around D1."""
    model = build_power_supply_ssam("psu_redundant")
    system = model.top_components()[0]
    by_name = {text_of(sub): sub for sub in system.get("subcomponents")}
    # Add D2 in parallel with D1 (same reliability data).
    from repro.ssam import architecture as arch

    d2 = arch.component("D2", fit=10, component_class="Diode")
    d2.add("failureModes", arch.failure_mode("Open", "open", 0.30))
    d2.add("failureModes", arch.failure_mode("Short", "short", 0.70))
    system.add("subcomponents", d2)
    arch.connect(system, by_name["DC1"], d2, kind="power")
    arch.connect(system, d2, by_name["L1"], kind="power")
    return model


def main() -> None:
    analyse(build_power_supply_ssam(), "baseline power supply")
    analyse(with_redundant_diode(), "with redundant diode D2")


if __name__ == "__main__":
    main()
