"""From a blank page to a safety concept — every DECISIVE step, explicitly.

This example starts where real projects start (nothing but a system idea),
and walks all five steps with the library's full feature set:

1. HARA: hazardous events with S/E/C classes -> hazard log + ASIL targets
   + top-level safety requirements (Step 1);
2. architecture design with the fluent builder (Step 2);
3. reliability aggregation from the built-in catalogue (Step 3);
4. automated FMEA, metrics (SPFM / PMHF), mechanism search (Steps 4a/4b);
5. derived safety requirements, the safety concept, and a change-impact
   check on a later design edit (Step 5 + the iterative loop's entry
   condition).

Run:  python examples/hara_to_safety_concept.py
"""

from repro.decisive import (
    DecisiveProcess,
    HazardousEventSpec,
    HazardSpec,
    assess_impact,
)
from repro.reliability import standard_reliability_model
from repro.safety import (
    derive_safety_requirements,
    pmhf,
    pmhf_meets,
    run_ssam_fmea,
)
from repro.casestudies.systems import system_mechanisms
from repro.same import render_architecture_mermaid, render_hazard_log
from repro.ssam import ArchitectureBuilder, SSAMModel
from repro.ssam.architecture import component_package


def step1_hara(model: SSAMModel) -> None:
    from repro.decisive import perform_hara

    perform_hara(
        model,
        [
            HazardSpec(
                "H1",
                "The actuator moves without a command",
                [
                    HazardousEventSpec(
                        "operator nearby",
                        "S3",
                        "E3",
                        "C2",
                        causes=["controller output stuck high"],
                        control_measures=["hardware interlock"],
                    )
                ],
            ),
            HazardSpec(
                "H2",
                "Loss of actuation on demand",
                [HazardousEventSpec("emergency stop", "S2", "E2", "C2")],
            ),
        ],
    )
    print("Step 1 — hazard log:")
    print(render_hazard_log(model))
    for hazard in model.hazards():
        from repro.ssam.base import text_of

        print(f"  target for {text_of(hazard)}: {hazard.get('integrityTarget')}")


def step2_design(model: SSAMModel):
    catalogue = standard_reliability_model()
    builder = ArchitectureBuilder("ActuatorChannel", component_type="system")

    def part(name, klass, **kwargs):
        handle = builder.component(name, component_class=klass, **kwargs)
        entry = catalogue.lookup(klass)
        handle.element.set("fit", float(entry.fit))
        for mode in entry.failure_modes:
            handle.failure_mode(mode.name, mode.nature, mode.distribution)
        return handle

    supply = part("PSU", "PowerRegulator")
    controller = part("CTL", "MCU")
    driver = part("DRV", "Relay")
    motor = part("MOT", "Motor")
    sensor = part("FB", "Sensor")

    builder.entry(supply)
    builder.chain(supply, controller, driver, motor)
    builder.exit(motor)
    builder.wire(sensor, controller, kind="data")

    package = component_package("ActuatorArchitecture")
    package.add("components", builder.build())
    model.add_component_package(package)
    print("\nStep 2 — architecture (Mermaid):")
    print(render_architecture_mermaid(model))


def main() -> None:
    model = SSAMModel("actuator_channel")
    step1_hara(model)
    step2_design(model)

    # Steps 3-4 via the process loop (target from H1's HARA outcome).
    target = max(
        (h.get("integrityTarget") for h in model.hazards()),
        key=["QM", "ASIL-A", "ASIL-B", "ASIL-C", "ASIL-D"].index,
    )
    process = DecisiveProcess(
        model, standard_reliability_model(), system_mechanisms(), target
    )
    log = process.run()
    print(f"\nSteps 3-4 — iterations toward {target}:")
    for record in log.iterations:
        print(
            f"  iter {record.index}: SPFM {record.spfm * 100:6.2f}% "
            f"({record.asil})"
        )
    print(f"  target met: {log.met_target}")

    fmea, _, _ = process.step4a_evaluate()
    value = pmhf(fmea, process.deployments)
    print(
        f"  PMHF {value:.2e}/h — meets {target}: "
        f"{pmhf_meets(value, target)}"
    )

    # Step 5: derived requirements + the concept.
    derived = derive_safety_requirements(
        model, fmea, process.deployments, integrity_level=target
    )
    print(f"\nStep 5 — {len(derived)} derived safety requirements, e.g.:")
    print(f"  {derived[0].get('text')}")
    concept = log.concept
    print(
        f"  safety concept: {concept.achieved_asil}, "
        f"{len(concept.deployments)} mechanisms, "
        f"cost {concept.fmeda.total_cost:g} h"
    )

    # The iterative loop: a design change triggers impact analysis.
    before = model.clone()
    model.find_by_name("DRV").set("fit", 40.0)  # supplier revises the relay
    report = assess_impact(before, model, fmea)
    print("\nChange: relay FIT 25 -> 40. Impact analysis:")
    print(report.summary())


if __name__ == "__main__":
    main()
