"""Architectural metrics — SPFM (Eq. 1), LFM, and ISO 26262 ASIL targets.

The Single Point Fault Metric over the safety-related hardware (Eq. 1)::

    SPFM = 1 - sum_{SR_HW}(lambda_SPF) / sum_{SR_HW}(lambda)

where the sums range over *safety-related* components (a component is
safety-related when at least one of its failure modes is), ``lambda`` is a
component's total failure rate and ``lambda_SPF`` the failure rate of its
failure modes that cause single point faults, *after* diagnostic coverage.

Convention note (documented in DESIGN.md): the paper counts a component's
safety-related failure-mode rate fully in the numerator when uncovered —
Table IV's 5.38 % comes from (3 + 4.5 + 300) / (10 + 15 + 300) and the
96.77 % from (3 + 4.5 + 3) / 325 after ECC at 99 % on MC1.  This module
reproduces exactly that convention.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.safety.fmea import FmeaError, FmeaResult
from repro.safety.mechanisms import Deployment

#: Minimum SPFM per ASIL (ISO 26262 part 5, Table 4).  ASIL-A has no
#: hardware-architectural-metric requirement; QM none at all.
ASIL_SPFM_TARGETS: Dict[str, float] = {
    "QM": 0.0,
    "ASIL-A": 0.0,
    "ASIL-B": 0.90,
    "ASIL-C": 0.97,
    "ASIL-D": 0.99,
}

#: Minimum Latent Fault Metric per ASIL (ISO 26262 part 5, Table 5).
ASIL_LFM_TARGETS: Dict[str, float] = {
    "QM": 0.0,
    "ASIL-A": 0.0,
    "ASIL-B": 0.60,
    "ASIL-C": 0.80,
    "ASIL-D": 0.90,
}

_ASIL_ORDER = ["QM", "ASIL-A", "ASIL-B", "ASIL-C", "ASIL-D"]


def _coverage_map(
    deployments: Iterable[Deployment],
) -> Dict[Tuple[str, str], float]:
    """(component, failure mode) -> combined diagnostic coverage.

    Multiple mechanisms on the same mode combine as independent diagnostics:
    residual = product of (1 - coverage_i).
    """
    residual: Dict[Tuple[str, str], float] = {}
    for deployment in deployments:
        key = (deployment.component, deployment.failure_mode)
        residual[key] = residual.get(key, 1.0) * (1.0 - deployment.coverage)
    return {key: 1.0 - value for key, value in residual.items()}


def single_point_rates(
    fmea: FmeaResult,
    deployments: Iterable[Deployment] = (),
) -> Dict[str, float]:
    """Residual single-point failure rate (FIT) per safety-related component.

    These are Table IV's ``Single_Point_Failure_Rate`` values: for each
    safety-related component, the sum over its safety-related failure modes
    of ``fit * distribution * (1 - coverage)``.
    """
    coverage = _coverage_map(deployments)
    rates: Dict[str, float] = {}
    for row in fmea.rows:
        if not row.safety_related:
            continue
        covered = coverage.get((row.component, row.failure_mode), 0.0)
        rates[row.component] = rates.get(row.component, 0.0) + (
            row.mode_rate * (1.0 - covered)
        )
    return rates


def spfm(
    fmea: FmeaResult,
    deployments: Iterable[Deployment] = (),
) -> float:
    """Single Point Fault Metric (Eq. 1) over the safety-related hardware."""
    sr_components = fmea.safety_related_components()
    if not sr_components:
        # No single point faults at all: the metric is vacuously perfect.
        return 1.0
    lambda_spf = sum(single_point_rates(fmea, deployments).values())
    lambda_total = sum(fmea.component_fit(c) for c in sr_components)
    if lambda_total <= 0:
        raise FmeaError(
            "total failure rate of safety-related components is zero; "
            "did the FMEA rows carry FIT data?"
        )
    return 1.0 - lambda_spf / lambda_total


def spfm_meets(value: float, asil: str) -> bool:
    """Whether an SPFM value meets the target for ``asil``."""
    try:
        return value >= ASIL_SPFM_TARGETS[asil]
    except KeyError:
        raise ValueError(
            f"unknown ASIL {asil!r}; expected one of {_ASIL_ORDER}"
        ) from None


def asil_from_spfm(value: float) -> str:
    """The most stringent ASIL whose SPFM target ``value`` meets."""
    achieved = "QM"
    for asil in _ASIL_ORDER:
        if value >= ASIL_SPFM_TARGETS[asil]:
            achieved = asil
    return achieved


#: Maximum PMHF per ASIL (ISO 26262 part 5, Table 6), in failures/hour.
ASIL_PMHF_TARGETS: Dict[str, float] = {
    "ASIL-B": 1e-7,
    "ASIL-C": 1e-7,
    "ASIL-D": 1e-8,
}


def pmhf(
    fmea: FmeaResult,
    deployments: Iterable[Deployment] = (),
) -> float:
    """Probabilistic Metric for random Hardware Failures, in failures/hour.

    The single-point-dominated approximation of ISO 26262-5: the residual
    single-point failure rate of the safety-related hardware, converted
    from FIT (1e-9 f/h).  Dual-point contributions are second-order and
    neglected, which is conservative only when latent coverage is high —
    the LFM tracks that side.
    """
    residual_fit = sum(single_point_rates(fmea, deployments).values())
    return residual_fit * 1e-9


def pmhf_meets(value: float, asil: str) -> bool:
    """Whether a PMHF value meets the target for ``asil`` (levels without
    a PMHF requirement always pass)."""
    target = ASIL_PMHF_TARGETS.get(asil)
    if target is None:
        if asil not in _ASIL_ORDER:
            raise ValueError(
                f"unknown ASIL {asil!r}; expected one of {_ASIL_ORDER}"
            )
        return True
    return value <= target


def latent_fault_metric(
    fmea: FmeaResult,
    deployments: Iterable[Deployment] = (),
) -> float:
    """Latent Fault Metric (extension beyond the paper's SPFM).

    Residual-fault shares diagnosed by a mechanism are *detected*; the LFM
    measures how much of the remaining (non-single-point) failure rate is
    covered against latency.  With no deployments the non-safety-related
    share is considered latent-safe by construction (perceived faults),
    matching the conservative reading of ISO 26262 part 5 Annex C.
    """
    coverage = _coverage_map(deployments)
    sr_components = set(fmea.safety_related_components())
    if not sr_components:
        return 1.0
    latent = 0.0
    total = 0.0
    for row in fmea.rows:
        if row.component not in sr_components:
            continue
        covered = coverage.get((row.component, row.failure_mode), 0.0)
        if row.safety_related:
            # Residual single-point share is counted by SPFM, not LFM;
            # the covered share could still be latent if undetected at
            # runtime — mechanisms are diagnostics, so covered == detected.
            continue
        total += row.mode_rate
        latent += row.mode_rate * (1.0 - covered)
    if total <= 0:
        return 1.0
    return 1.0 - latent / total
