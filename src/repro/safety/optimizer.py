"""Automated safety-mechanism deployment search (DECISIVE Step 4b).

Given an FMEA result and a safety-mechanism catalogue, the optimiser answers
the questions the paper automates: *which mechanisms, on which components,
reach the target ASIL at the lowest cost?* and *what is the Pareto front of
viable (cost, SPFM) trade-offs?*

Strategies:

- :func:`dp_search_for_target` / :func:`dp_pareto_front` — **exact**
  separable Pareto dynamic program (the default).  SPFM (Eq. 1) is additive
  over per-failure-mode residual rates, so the search space separates by
  row: fold rows one at a time, keeping only (cost, residual-rate) states
  that survive dominance pruning.  Polynomial in rows × options × frontier
  instead of exponential in rows;
- :func:`enumerate_plans` — exhaustive enumeration over per-failure-mode
  options (bounded; raises when the space is too large);
- :func:`greedy_plan` — iteratively deploy the mechanism with the best
  SPFM-gain-per-cost until the target is met;
- :func:`search_for_target` — strategy dispatcher (``dp`` default,
  ``exhaustive`` and ``greedy`` selectable);
- :func:`pareto_front` — non-dominated (cost, SPFM) plans (``dp`` default).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.safety.fmea import FmeaError, FmeaResult, FmeaRow
from repro.safety.mechanisms import Deployment, SafetyMechanismModel
from repro.safety.metrics import (
    ASIL_SPFM_TARGETS,
    _coverage_map,
    asil_from_spfm,
    spfm,
    spfm_meets,
)

#: Exhaustive enumeration cap (number of candidate plans).
_MAX_ENUMERATION = 200_000

#: DP frontier bound: when the non-dominated state count of one row fold
#: exceeds this, epsilon-bucket merging switches on automatically (see
#: :func:`_dp_frontier`) so near-continuous cost data cannot blow up the
#: search.  Real catalogues (few distinct costs) stay far below it.
_MAX_DP_STATES = 200_000

#: Strategies accepted by :func:`search_for_target`.
SEARCH_STRATEGIES = ("dp", "exhaustive", "greedy")

#: Strategies accepted by :func:`pareto_front` (greedy has no front).
PARETO_STRATEGIES = ("dp", "exhaustive")


class _SpfmEvaluator:
    """Incremental SPFM scoring over a fixed FMEA.

    The search strategies below score thousands of candidate plans against
    the *same* FMEA; calling :func:`repro.safety.metrics.spfm` each time
    re-derives the safety-related component set, re-scans every row and
    re-sums ``component_fit`` per component.  This evaluator precomputes all
    of that once and scores a candidate in O(safety-related rows), memoising
    per-component contributions so that near-identical candidates (greedy
    trials differ in a single failure mode) only recompute the component
    that changed.

    Scores are bit-identical to ``metrics.spfm``: each component's residual
    rate accumulates over its rows in FMEA row order, components sum in
    first-appearance order — the exact float-operation order of
    ``single_point_rates`` + ``sum(rates.values())``.
    """

    def __init__(self, fmea: FmeaResult) -> None:
        self._components: List[str] = []
        self._rows_of: Dict[str, List[Tuple[Tuple[str, str], float]]] = {}
        for row in fmea.rows:
            if not row.safety_related:
                continue
            if row.component not in self._rows_of:
                self._components.append(row.component)
                self._rows_of[row.component] = []
            self._rows_of[row.component].append(
                ((row.component, row.failure_mode), row.mode_rate)
            )
        self._vacuous = not self._components
        self._lambda_total = 0.0
        if not self._vacuous:
            self._lambda_total = sum(
                fmea.component_fit(c) for c in self._components
            )
            if self._lambda_total <= 0:
                raise FmeaError(
                    "total failure rate of safety-related components is "
                    "zero; did the FMEA rows carry FIT data?"
                )
        self._cache: Dict[str, Dict[Tuple[float, ...], float]] = {
            component: {} for component in self._components
        }

    @property
    def vacuous(self) -> bool:
        return self._vacuous

    @property
    def lambda_total(self) -> float:
        return self._lambda_total

    @property
    def components(self) -> List[str]:
        return list(self._components)

    def component_contribution(
        self, component: str, coverage: Dict[Tuple[str, str], float]
    ) -> float:
        """One component's residual single-point rate under ``coverage``."""
        rows = self._rows_of[component]
        signature = tuple(coverage.get(key, 0.0) for key, _ in rows)
        contribution = self._cache[component].get(signature)
        if contribution is None:
            contribution = 0.0
            for (_, mode_rate), covered in zip(rows, signature):
                contribution = contribution + mode_rate * (1.0 - covered)
            self._cache[component][signature] = contribution
        elif obs.enabled():
            obs.counter("optimizer_spfm_cache_hits").inc()
        return contribution

    def spfm(self, deployments: Sequence[Deployment]) -> float:
        if obs.enabled():
            obs.counter("optimizer_spfm_evaluations").inc()
        if self._vacuous:
            return 1.0
        coverage = _coverage_map(deployments)
        lambda_spf = 0.0
        for component in self._components:
            lambda_spf += self.component_contribution(component, coverage)
        return 1.0 - lambda_spf / self._lambda_total

    def plan(self, deployments: Sequence[Deployment]) -> DeploymentPlan:
        return DeploymentPlan(
            deployments=tuple(deployments),
            spfm=self.spfm(deployments),
            cost=sum(d.cost for d in deployments),
        )


@dataclass(frozen=True)
class DeploymentPlan:
    """An evaluated set of deployments."""

    deployments: Tuple[Deployment, ...]
    spfm: float
    cost: float

    @property
    def asil(self) -> str:
        return asil_from_spfm(self.spfm)

    def meets(self, target_asil: str) -> bool:
        return spfm_meets(self.spfm, target_asil)


def _options_per_row(
    fmea: FmeaResult, catalogue: SafetyMechanismModel
) -> List[Tuple[FmeaRow, List[Optional[Deployment]]]]:
    """For each safety-related row: [None (no mechanism), option1, ...]."""
    out: List[Tuple[FmeaRow, List[Optional[Deployment]]]] = []
    for row in fmea.safety_related_rows():
        options: List[Optional[Deployment]] = [None]
        for spec in catalogue.options_for(row.component_class, row.failure_mode):
            options.append(
                Deployment(
                    component=row.component,
                    failure_mode=row.failure_mode,
                    mechanism=spec.name,
                    coverage=spec.coverage,
                    cost=spec.cost,
                )
            )
        out.append((row, options))
    return out


def evaluate(fmea: FmeaResult, deployments: Sequence[Deployment]) -> DeploymentPlan:
    """Score one deployment set."""
    return DeploymentPlan(
        deployments=tuple(deployments),
        spfm=spfm(fmea, deployments),
        cost=sum(d.cost for d in deployments),
    )


def enumerate_plans(
    fmea: FmeaResult,
    catalogue: SafetyMechanismModel,
    max_plans: int = _MAX_ENUMERATION,
) -> List[DeploymentPlan]:
    """All plans over the per-failure-mode option sets (bounded)."""
    per_row = _options_per_row(fmea, catalogue)
    space = 1
    for _, options in per_row:
        space *= len(options)
    if space > max_plans:
        raise ValueError(
            f"deployment space has {space} plans (> {max_plans}); "
            f"use greedy_plan or pareto_front instead"
        )
    evaluator = _SpfmEvaluator(fmea)
    plans: List[DeploymentPlan] = []
    skipped = 0
    option_lists = [options for _, options in per_row]
    with obs.span("optimizer.enumerate", space=space) as sp:
        for combo in itertools.product(*option_lists):
            chosen = [d for d in combo if d is not None]
            try:
                plans.append(evaluator.plan(chosen))
            except (FmeaError, ArithmeticError) as exc:
                # One pathological candidate (e.g. degenerate coverage data)
                # must not void the other 199 999 — skip it and count it.
                skipped += 1
                if obs.enabled():
                    obs.counter("optimizer_trial_failures").inc()
                if skipped == 1:
                    sp.set(first_skip=f"{type(exc).__name__}: {exc}")
        sp.set(plans=len(plans), skipped=skipped)
    return plans


# -- the separable Pareto DP -------------------------------------------------


class _DpState:
    """One surviving (cost, residual-rate) point of the row-fold frontier.

    ``parent``/``deployment`` chain back through the folds, so any state
    reconstructs its deployment list in row order without storing it.
    """

    __slots__ = ("cost", "residual", "parent", "deployment")

    def __init__(
        self,
        cost: float,
        residual: float,
        parent: Optional["_DpState"],
        deployment: Optional[Deployment],
    ) -> None:
        self.cost = cost
        self.residual = residual
        self.parent = parent
        self.deployment = deployment


def _dp_deployments(state: _DpState) -> List[Deployment]:
    """Reconstruct a state's deployments in FMEA row order."""
    chosen: List[Deployment] = []
    while state is not None:
        if state.deployment is not None:
            chosen.append(state.deployment)
        state = state.parent
    chosen.reverse()
    return chosen


def _dp_frontier(
    per_row: List[Tuple[FmeaRow, List[Optional[Deployment]]]],
    lambda_total: float,
    resolution: float,
    max_states: int,
) -> Tuple[List[_DpState], Dict[str, float]]:
    """Fold rows one at a time, keeping non-dominated (cost, residual) states.

    SPFM is ``1 - residual / lambda_total`` with ``residual`` additive over
    rows (each row contributes ``mode_rate * (1 - coverage)`` for the chosen
    option, ``mode_rate`` for none), and cost is additive too — so a partial
    assignment is summarised exactly by its (cost, residual) pair, and any
    state that is >=-cost and >=-residual of another can never lead to a
    better completion (every completion adds the same deltas to both).

    Dominance pruning alone keeps the frontier small when costs repeat (real
    catalogues quote a few distinct costs, so partial sums collide).  On
    near-continuous cost data the exact frontier can keep growing, so an
    **epsilon-bucket merge** bounds it: states whose residuals fall in the
    same bucket of width ``resolution * lambda_total`` are merged, keeping
    the cheapest.  ``resolution`` is expressed in SPFM units; each fold's
    merge can raise the surviving residual by at most one bucket, so the
    achieved SPFM of the returned optimum understates the true optimum by
    at most ``len(per_row) * resolution``.  ``resolution=0`` (default)
    disables merging — the frontier is exact — and merging switches on
    automatically at ``2 / max_states`` only if a fold's exact frontier
    exceeds ``max_states``.

    Cost and residual accumulate in FMEA row order, matching the float-op
    order of ``sum(d.cost for d in deployments)`` over row-ordered plans,
    so surviving states carry bit-identical costs to their enumerated
    counterparts.
    """
    stats: Dict[str, float] = {
        "candidates": 0,
        "pruned": 0,
        "merged": 0,
        "max_frontier": 1,
        "auto_resolution": 0.0,
    }
    states: List[_DpState] = [_DpState(0.0, 0.0, None, None)]
    effective = resolution
    for row, options in per_row:
        mode_rate = row.mode_rate
        option_residuals = [
            mode_rate if option is None else mode_rate * (1.0 - option.coverage)
            for option in options
        ]
        candidates = [
            _DpState(
                state.cost if option is None else state.cost + option.cost,
                state.residual + residual,
                state,
                option,
            )
            for state in states
            for option, residual in zip(options, option_residuals)
        ]
        stats["candidates"] += len(candidates)
        candidates.sort(key=lambda s: (s.cost, s.residual))
        frontier: List[_DpState] = []
        best = math.inf
        for state in candidates:
            if state.residual < best:
                frontier.append(state)
                best = state.residual
        stats["pruned"] += len(candidates) - len(frontier)
        if len(frontier) > max_states and effective <= 0.0:
            effective = 2.0 / max_states
            stats["auto_resolution"] = effective
        if effective > 0.0 and lambda_total > 0.0:
            eps = effective * lambda_total
            merged: List[_DpState] = []
            last_bucket: Optional[int] = None
            # Frontier residuals decrease along increasing cost, so equal
            # buckets are consecutive and the first (cheapest) one wins.
            for state in frontier:
                bucket = int(state.residual / eps)
                if bucket != last_bucket:
                    merged.append(state)
                    last_bucket = bucket
            stats["merged"] += len(frontier) - len(merged)
            frontier = merged
        states = frontier
        stats["max_frontier"] = max(stats["max_frontier"], len(states))
    stats["resolution"] = effective
    return states, stats


def _publish_dp(sp, stats: Dict[str, float], final_states: int) -> None:
    candidates = int(stats["candidates"])
    dropped = int(stats["pruned"] + stats["merged"])
    sp.set(
        states=final_states,
        candidates=candidates,
        pruned=int(stats["pruned"]),
        merged=int(stats["merged"]),
        max_frontier=int(stats["max_frontier"]),
        prune_ratio=round(dropped / candidates, 4) if candidates else 0.0,
    )
    if stats["auto_resolution"]:
        sp.set(auto_resolution=stats["auto_resolution"])
    if obs.enabled():
        obs.counter("optimizer_dp_states").inc(final_states)
        obs.counter("optimizer_dp_pruned").inc(dropped)


def dp_search_for_target(
    fmea: FmeaResult,
    catalogue: SafetyMechanismModel,
    target_asil: str,
    resolution: float = 0.0,
    max_states: int = _MAX_DP_STATES,
) -> Optional[DeploymentPlan]:
    """Exact minimal-cost plan meeting ``target_asil`` via the Pareto DP.

    Equivalent to enumerating every plan and taking the cheapest feasible
    one, but polynomial: O(rows x options x frontier).  With the default
    ``resolution=0`` the result is the exact optimum (bit-equal cost to the
    enumerated optimum); a positive ``resolution`` bounds the frontier at
    the price of understating the achieved SPFM by at most
    ``rows * resolution`` (see :func:`_dp_frontier`).

    Returns ``None`` when no plan in the catalogue reaches the target.
    """
    spfm_meets(1.0, target_asil)  # validate the ASIL name up front
    per_row = _options_per_row(fmea, catalogue)
    evaluator = _SpfmEvaluator(fmea)
    with obs.span(
        "optimizer.dp", target=target_asil, rows=len(per_row)
    ) as sp:
        states, stats = _dp_frontier(
            per_row, evaluator.lambda_total, resolution, max_states
        )
        _publish_dp(sp, stats, len(states))
        # The feasibility threshold in residual-rate units; the tiny slack
        # covers summation-order float noise between the DP's row-order
        # residual and the evaluator's per-component grouping.
        slack = (
            (1.0 - ASIL_SPFM_TARGETS[target_asil]) * evaluator.lambda_total
        )
        for state in states:  # cost-ascending: first feasible is cheapest
            if state.residual > slack * (1.0 + 1e-9) + 1e-12:
                continue
            plan = evaluator.plan(_dp_deployments(state))
            if plan.meets(target_asil):
                sp.set(met=True, cost=plan.cost)
                return plan
        sp.set(met=False)
    return None


def dp_pareto_front(
    fmea: FmeaResult,
    catalogue: SafetyMechanismModel,
    resolution: float = 0.0,
    max_states: int = _MAX_DP_STATES,
) -> List[DeploymentPlan]:
    """The non-dominated (cost, SPFM) plans via the Pareto DP.

    The DP's final frontier *is* the Pareto front — no enumeration, no
    plan-count cap.  Sorted by increasing cost (hence increasing SPFM).
    """
    per_row = _options_per_row(fmea, catalogue)
    evaluator = _SpfmEvaluator(fmea)
    with obs.span("optimizer.dp_pareto", rows=len(per_row)) as sp:
        states, stats = _dp_frontier(
            per_row, evaluator.lambda_total, resolution, max_states
        )
        _publish_dp(sp, stats, len(states))
        plans = [evaluator.plan(_dp_deployments(state)) for state in states]
        plans.sort(key=lambda plan: (plan.cost, -plan.spfm))
        front: List[DeploymentPlan] = []
        best_spfm = -1.0
        for plan in plans:
            if plan.spfm > best_spfm + 1e-12:
                front.append(plan)
                best_spfm = plan.spfm
        sp.set(front=len(front))
    return front


# -- greedy ------------------------------------------------------------------


def greedy_plan(
    fmea: FmeaResult,
    catalogue: SafetyMechanismModel,
    target_asil: str,
) -> Optional[DeploymentPlan]:
    """Deploy best SPFM-gain-per-cost mechanisms until the target is met.

    Returns ``None`` when the catalogue cannot reach the target.
    """
    per_row = _options_per_row(fmea, catalogue)
    evaluator = _SpfmEvaluator(fmea)
    chosen: Dict[Tuple[str, str], Deployment] = {}

    def current_plan() -> DeploymentPlan:
        return evaluator.plan(list(chosen.values()))

    plan = current_plan()
    with obs.span("optimizer.greedy", target=target_asil) as greedy_span:
        plan = _greedy_loop(
            per_row, evaluator, chosen, plan, target_asil, current_plan
        )
        greedy_span.set(deployments=len(chosen), met=plan is not None)
    return plan


def _greedy_loop(
    per_row, evaluator, chosen, plan, target_asil, current_plan
) -> Optional[DeploymentPlan]:
    # Each accepted move strictly raises one slot's coverage, so the loop
    # terminates in at most sum(len(options)) iterations.  The explicit
    # bound is a backstop against a future invariant break turning the
    # optimiser into an infinite loop mid-campaign.
    #
    # Trials are scored through a per-component delta: deploying on one row
    # changes only that component's residual contribution, so the trial
    # SPFM is lambda_SPF minus the component's old contribution plus its
    # re-derived one — O(component rows) per candidate instead of a full
    # deployment-dict rebuild and rescore.
    #
    # Ranking: a move must improve SPFM by > 1e-12.  Paid moves
    # (extra_cost > 0) rank by gain per unit cost; free moves
    # (extra_cost <= 0, e.g. a zero-cost upgrade) always outrank paid ones
    # and rank among themselves by raw gain.  The key is the tuple
    # (1, gain) for free moves and (0, gain / extra_cost) for paid ones —
    # a documented total order (free-move class first, then the scale
    # value) replacing the old `gain * 1e9` magic factor.
    max_iterations = sum(len(options) for _, options in per_row) + 1
    iterations = 0
    coverage: Dict[Tuple[str, str], float] = {}
    contributions: Dict[str, float] = {
        component: evaluator.component_contribution(component, coverage)
        for component in evaluator.components
    }
    lambda_spf = sum(contributions.values())
    lambda_total = evaluator.lambda_total
    while not plan.meets(target_asil):
        iterations += 1
        if iterations > max_iterations:
            if obs.enabled():
                obs.counter("optimizer_greedy_bailouts").inc()
            return None
        best_key: Optional[Tuple[int, float]] = None
        best_deployment: Optional[Deployment] = None
        for row, options in per_row:
            key = (row.component, row.failure_mode)
            incumbent = chosen.get(key)
            base_contribution = contributions[row.component]
            for option in options:
                if option is None:
                    continue
                if incumbent is not None and option.coverage <= incumbent.coverage:
                    continue
                had_previous = key in coverage
                previous = coverage.get(key, 0.0)
                coverage[key] = option.coverage
                try:
                    trial_contribution = evaluator.component_contribution(
                        row.component, coverage
                    )
                except (FmeaError, ArithmeticError):
                    # A single unscorable trial must not abort the search;
                    # skip the candidate and keep looking for a valid move.
                    if obs.enabled():
                        obs.counter("optimizer_trial_failures").inc()
                    continue
                finally:
                    if had_previous:
                        coverage[key] = previous
                    else:
                        del coverage[key]
                if obs.enabled():
                    obs.counter("optimizer_greedy_delta_evals").inc()
                trial_spfm = 1.0 - (
                    lambda_spf - base_contribution + trial_contribution
                ) / lambda_total
                gain = trial_spfm - plan.spfm
                if gain <= 1e-12:
                    continue
                extra_cost = option.cost - (incumbent.cost if incumbent else 0.0)
                rank = (1, gain) if extra_cost <= 0 else (0, gain / extra_cost)
                if best_key is None or rank > best_key:
                    best_key = rank
                    best_deployment = option
        if best_deployment is None:
            return None  # no improving move left
        slot = (best_deployment.component, best_deployment.failure_mode)
        chosen[slot] = best_deployment
        coverage[slot] = best_deployment.coverage
        contributions[best_deployment.component] = (
            evaluator.component_contribution(best_deployment.component, coverage)
        )
        lambda_spf = sum(contributions.values())
        plan = current_plan()
    return plan


# -- dispatchers -------------------------------------------------------------


def _check_strategy(strategy: str, allowed: Tuple[str, ...]) -> None:
    if strategy not in allowed:
        raise ValueError(
            f"unknown search strategy {strategy!r}; "
            f"expected one of {list(allowed)}"
        )


def search_for_target(
    fmea: FmeaResult,
    catalogue: SafetyMechanismModel,
    target_asil: str,
    max_exhaustive: int = 20_000,
    strategy: str = "dp",
    resolution: float = 0.0,
) -> Optional[DeploymentPlan]:
    """Minimal-cost plan meeting ``target_asil``.

    ``strategy`` selects the engine:

    - ``"dp"`` (default): the exact separable Pareto DP — optimal on any
      catalogue size, no enumeration cap;
    - ``"exhaustive"``: bounded enumeration (up to ``max_exhaustive``
      plans), with a greedy fallback beyond the bound — the historical
      behaviour, kept as a reference;
    - ``"greedy"``: the gain-per-cost heuristic directly.

    Returns ``None`` when the target cannot be met with the catalogue.
    """
    _check_strategy(strategy, SEARCH_STRATEGIES)
    with obs.span(
        "optimizer.search", target=target_asil, strategy=strategy
    ) as sp:
        if strategy == "dp":
            return dp_search_for_target(
                fmea, catalogue, target_asil, resolution=resolution
            )
        if strategy == "greedy":
            return greedy_plan(fmea, catalogue, target_asil)
        try:
            plans = enumerate_plans(fmea, catalogue, max_plans=max_exhaustive)
        except ValueError:
            sp.set(fallback="greedy")
            return greedy_plan(fmea, catalogue, target_asil)
        sp.set(plans=len(plans))
        feasible = [plan for plan in plans if plan.meets(target_asil)]
        if not feasible:
            return None
        return min(feasible, key=lambda plan: (plan.cost, -plan.spfm))


def pareto_front(
    fmea: FmeaResult,
    catalogue: SafetyMechanismModel,
    max_plans: int = _MAX_ENUMERATION,
    strategy: str = "dp",
    resolution: float = 0.0,
) -> List[DeploymentPlan]:
    """Non-dominated plans: no other plan has lower cost *and* higher SPFM.

    Sorted by increasing cost (hence increasing SPFM).  With the default
    ``strategy="dp"`` the front comes out of the Pareto DP directly —
    catalogues whose plan space exceeds ``max_plans`` (where
    ``strategy="exhaustive"`` raises) are fine.
    """
    _check_strategy(strategy, PARETO_STRATEGIES)
    if strategy == "dp":
        return dp_pareto_front(fmea, catalogue, resolution=resolution)
    with obs.span("optimizer.pareto") as sp:
        plans = enumerate_plans(fmea, catalogue, max_plans=max_plans)
        plans.sort(key=lambda plan: (plan.cost, -plan.spfm))
        front: List[DeploymentPlan] = []
        best_spfm = -1.0
        for plan in plans:
            if plan.spfm > best_spfm + 1e-12:
                front.append(plan)
                best_spfm = plan.spfm
        sp.set(plans=len(plans), front=len(front))
    return front
