"""Automated safety-mechanism deployment search (DECISIVE Step 4b).

Given an FMEA result and a safety-mechanism catalogue, the optimiser answers
the questions the paper automates: *which mechanisms, on which components,
reach the target ASIL at the lowest cost?* and *what is the Pareto front of
viable (cost, SPFM) trade-offs?*

Strategies:

- :func:`enumerate_plans` — exhaustive enumeration over per-failure-mode
  options (bounded; raises when the space is too large);
- :func:`greedy_plan` — iteratively deploy the mechanism with the best
  SPFM-gain-per-cost until the target is met;
- :func:`search_for_target` — exhaustive when feasible, greedy fallback;
- :func:`pareto_front` — non-dominated (cost, SPFM) plans.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.safety.fmea import FmeaError, FmeaResult, FmeaRow
from repro.safety.mechanisms import Deployment, SafetyMechanismModel
from repro.safety.metrics import _coverage_map, asil_from_spfm, spfm, spfm_meets

#: Exhaustive enumeration cap (number of candidate plans).
_MAX_ENUMERATION = 200_000


class _SpfmEvaluator:
    """Incremental SPFM scoring over a fixed FMEA.

    The search strategies below score thousands of candidate plans against
    the *same* FMEA; calling :func:`repro.safety.metrics.spfm` each time
    re-derives the safety-related component set, re-scans every row and
    re-sums ``component_fit`` per component.  This evaluator precomputes all
    of that once and scores a candidate in O(safety-related rows), memoising
    per-component contributions so that near-identical candidates (greedy
    trials differ in a single failure mode) only recompute the component
    that changed.

    Scores are bit-identical to ``metrics.spfm``: each component's residual
    rate accumulates over its rows in FMEA row order, components sum in
    first-appearance order — the exact float-operation order of
    ``single_point_rates`` + ``sum(rates.values())``.
    """

    def __init__(self, fmea: FmeaResult) -> None:
        self._components: List[str] = []
        self._rows_of: Dict[str, List[Tuple[Tuple[str, str], float]]] = {}
        for row in fmea.rows:
            if not row.safety_related:
                continue
            if row.component not in self._rows_of:
                self._components.append(row.component)
                self._rows_of[row.component] = []
            self._rows_of[row.component].append(
                ((row.component, row.failure_mode), row.mode_rate)
            )
        self._vacuous = not self._components
        self._lambda_total = 0.0
        if not self._vacuous:
            self._lambda_total = sum(
                fmea.component_fit(c) for c in self._components
            )
            if self._lambda_total <= 0:
                raise FmeaError(
                    "total failure rate of safety-related components is "
                    "zero; did the FMEA rows carry FIT data?"
                )
        self._cache: Dict[str, Dict[Tuple[float, ...], float]] = {
            component: {} for component in self._components
        }

    def spfm(self, deployments: Sequence[Deployment]) -> float:
        if obs.enabled():
            obs.counter("optimizer_spfm_evaluations").inc()
        if self._vacuous:
            return 1.0
        coverage = _coverage_map(deployments)
        lambda_spf = 0.0
        for component in self._components:
            rows = self._rows_of[component]
            signature = tuple(coverage.get(key, 0.0) for key, _ in rows)
            contribution = self._cache[component].get(signature)
            if contribution is None:
                contribution = 0.0
                for (_, mode_rate), covered in zip(rows, signature):
                    contribution = contribution + mode_rate * (1.0 - covered)
                self._cache[component][signature] = contribution
            elif obs.enabled():
                obs.counter("optimizer_spfm_cache_hits").inc()
            lambda_spf += contribution
        return 1.0 - lambda_spf / self._lambda_total

    def plan(self, deployments: Sequence[Deployment]) -> DeploymentPlan:
        return DeploymentPlan(
            deployments=tuple(deployments),
            spfm=self.spfm(deployments),
            cost=sum(d.cost for d in deployments),
        )


@dataclass(frozen=True)
class DeploymentPlan:
    """An evaluated set of deployments."""

    deployments: Tuple[Deployment, ...]
    spfm: float
    cost: float

    @property
    def asil(self) -> str:
        return asil_from_spfm(self.spfm)

    def meets(self, target_asil: str) -> bool:
        return spfm_meets(self.spfm, target_asil)


def _options_per_row(
    fmea: FmeaResult, catalogue: SafetyMechanismModel
) -> List[Tuple[FmeaRow, List[Optional[Deployment]]]]:
    """For each safety-related row: [None (no mechanism), option1, ...]."""
    out: List[Tuple[FmeaRow, List[Optional[Deployment]]]] = []
    for row in fmea.safety_related_rows():
        options: List[Optional[Deployment]] = [None]
        for spec in catalogue.options_for(row.component_class, row.failure_mode):
            options.append(
                Deployment(
                    component=row.component,
                    failure_mode=row.failure_mode,
                    mechanism=spec.name,
                    coverage=spec.coverage,
                    cost=spec.cost,
                )
            )
        out.append((row, options))
    return out


def evaluate(fmea: FmeaResult, deployments: Sequence[Deployment]) -> DeploymentPlan:
    """Score one deployment set."""
    return DeploymentPlan(
        deployments=tuple(deployments),
        spfm=spfm(fmea, deployments),
        cost=sum(d.cost for d in deployments),
    )


def enumerate_plans(
    fmea: FmeaResult,
    catalogue: SafetyMechanismModel,
    max_plans: int = _MAX_ENUMERATION,
) -> List[DeploymentPlan]:
    """All plans over the per-failure-mode option sets (bounded)."""
    per_row = _options_per_row(fmea, catalogue)
    space = 1
    for _, options in per_row:
        space *= len(options)
    if space > max_plans:
        raise ValueError(
            f"deployment space has {space} plans (> {max_plans}); "
            f"use greedy_plan or pareto_front instead"
        )
    evaluator = _SpfmEvaluator(fmea)
    plans: List[DeploymentPlan] = []
    skipped = 0
    option_lists = [options for _, options in per_row]
    with obs.span("optimizer.enumerate", space=space) as sp:
        for combo in itertools.product(*option_lists):
            chosen = [d for d in combo if d is not None]
            try:
                plans.append(evaluator.plan(chosen))
            except (FmeaError, ArithmeticError) as exc:
                # One pathological candidate (e.g. degenerate coverage data)
                # must not void the other 199 999 — skip it and count it.
                skipped += 1
                if obs.enabled():
                    obs.counter("optimizer_trial_failures").inc()
                if skipped == 1:
                    sp.set(first_skip=f"{type(exc).__name__}: {exc}")
        sp.set(plans=len(plans), skipped=skipped)
    return plans


def greedy_plan(
    fmea: FmeaResult,
    catalogue: SafetyMechanismModel,
    target_asil: str,
) -> Optional[DeploymentPlan]:
    """Deploy best SPFM-gain-per-cost mechanisms until the target is met.

    Returns ``None`` when the catalogue cannot reach the target.
    """
    per_row = _options_per_row(fmea, catalogue)
    evaluator = _SpfmEvaluator(fmea)
    chosen: Dict[Tuple[str, str], Deployment] = {}

    def current_plan() -> DeploymentPlan:
        return evaluator.plan(list(chosen.values()))

    plan = current_plan()
    with obs.span("optimizer.greedy", target=target_asil) as greedy_span:
        plan = _greedy_loop(
            per_row, evaluator, chosen, plan, target_asil, current_plan
        )
        greedy_span.set(deployments=len(chosen), met=plan is not None)
    return plan


def _greedy_loop(
    per_row, evaluator, chosen, plan, target_asil, current_plan
) -> Optional[DeploymentPlan]:
    # Each accepted move strictly raises one slot's coverage, so the loop
    # terminates in at most sum(len(options)) iterations.  The explicit
    # bound is a backstop against a future invariant break turning the
    # optimiser into an infinite loop mid-campaign.
    max_iterations = sum(len(options) for _, options in per_row) + 1
    iterations = 0
    while not plan.meets(target_asil):
        iterations += 1
        if iterations > max_iterations:
            if obs.enabled():
                obs.counter("optimizer_greedy_bailouts").inc()
            return None
        best_gain_rate = 0.0
        best_deployment: Optional[Deployment] = None
        for row, options in per_row:
            key = (row.component, row.failure_mode)
            incumbent = chosen.get(key)
            for option in options:
                if option is None:
                    continue
                if incumbent is not None and option.coverage <= incumbent.coverage:
                    continue
                trial = dict(chosen)
                trial[key] = option
                try:
                    trial_spfm = evaluator.spfm(list(trial.values()))
                except (FmeaError, ArithmeticError):
                    # A single unscorable trial must not abort the search;
                    # skip the candidate and keep looking for a valid move.
                    if obs.enabled():
                        obs.counter("optimizer_trial_failures").inc()
                    continue
                gain = trial_spfm - plan.spfm
                extra_cost = option.cost - (incumbent.cost if incumbent else 0.0)
                rate = gain / extra_cost if extra_cost > 0 else gain * 1e9
                if gain > 1e-12 and rate > best_gain_rate:
                    best_gain_rate = rate
                    best_deployment = option
        if best_deployment is None:
            return None  # no improving move left
        chosen[(best_deployment.component, best_deployment.failure_mode)] = (
            best_deployment
        )
        plan = current_plan()
    return plan


def search_for_target(
    fmea: FmeaResult,
    catalogue: SafetyMechanismModel,
    target_asil: str,
    max_exhaustive: int = 20_000,
) -> Optional[DeploymentPlan]:
    """Minimal-cost plan meeting ``target_asil``.

    Exhaustive (optimal) when the option space is small; greedy otherwise.
    Returns ``None`` when the target cannot be met with the catalogue.
    """
    with obs.span("optimizer.search", target=target_asil) as sp:
        try:
            plans = enumerate_plans(fmea, catalogue, max_plans=max_exhaustive)
        except ValueError:
            sp.set(strategy="greedy")
            return greedy_plan(fmea, catalogue, target_asil)
        sp.set(strategy="exhaustive", plans=len(plans))
        feasible = [plan for plan in plans if plan.meets(target_asil)]
        if not feasible:
            return None
        return min(feasible, key=lambda plan: (plan.cost, -plan.spfm))


def pareto_front(
    fmea: FmeaResult,
    catalogue: SafetyMechanismModel,
    max_plans: int = _MAX_ENUMERATION,
) -> List[DeploymentPlan]:
    """Non-dominated plans: no other plan has lower cost *and* higher SPFM.

    Sorted by increasing cost (hence increasing SPFM).
    """
    with obs.span("optimizer.pareto") as sp:
        plans = enumerate_plans(fmea, catalogue, max_plans=max_plans)
        plans.sort(key=lambda plan: (plan.cost, -plan.spfm))
        front: List[DeploymentPlan] = []
        best_spfm = -1.0
        for plan in plans:
            if plan.spfm > best_spfm + 1e-12:
                front.append(plan)
                best_spfm = plan.spfm
        sp.set(plans=len(plans), front=len(front))
    return front
