"""Batched fault-injection campaign engine (DECISIVE Step 4a at scale).

:func:`repro.safety.fmea.run_simulink_fmea` used to rebuild and re-solve
the full MNA system from scratch for every (component, failure mode) pair.
This module turns that loop into a campaign:

1. the model is flattened and the healthy baseline solved **once**;
2. every injection is enumerated up front as an :class:`InjectionJob`;
3. jobs execute against a single :class:`~repro.circuit.CompiledSystem`
   (cached LU factorization + Sherman–Morrison–Woodbury low-rank updates,
   with exact full-assembly fallback), either serially or fanned out over a
   process pool with deterministic row ordering;
4. rows are classified in enumeration order, so the resulting
   :class:`~repro.safety.fmea.FmeaResult` is row-for-row identical to the
   historical per-mode re-solve, whatever the execution strategy.

Per-campaign instrumentation (job counts, solve mix, factorization reuses,
wall time) is attached to the result as :class:`CampaignStats` — the raw
material for the paper's Table V/VI efficiency story.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro import obs
from repro.circuit import CircuitError, CompiledSystem, SolveStats
from repro.circuit.netlist import Netlist
from repro.reliability import ReliabilityModel
from repro.safety.fmea import (
    DEFAULT_MIN_ABSOLUTE_DELTA,
    DEFAULT_THRESHOLD,
    FmeaError,
    FmeaResult,
    FmeaRow,
    _apply_behavior,
    _behavior_replacement,
    _relative_delta,
    _select_sensors,
    _solve_readings,
    _solve_readings_transient,
)
from repro.simulink import FailureBehavior, SimulinkModel, to_netlist
from repro.simulink.electrical import ElectricalConversion


@dataclass(frozen=True)
class InjectionJob:
    """One planned fault injection: which element, which failure physics."""

    index: int
    component: str
    failure_mode: str
    element_name: str
    behavior: FailureBehavior
    block_params: Mapping[str, object]


@dataclass
class CampaignStats:
    """Execution instrumentation for one fault-injection campaign."""

    jobs: int = 0  # injection simulations requested
    rows: int = 0  # FMEA rows produced (jobs + uninjectable warnings)
    workers: int = 1
    mode: str = "incremental"  # 'incremental' | 'naive'
    analysis: str = "dc"
    wall_time: float = 0.0  # whole campaign, seconds
    baseline_time: float = 0.0  # healthy solve, seconds
    solves: int = 0
    newton_iterations: int = 0
    factorization_reuses: int = 0
    smw_solves: int = 0
    full_rebuilds: int = 0
    baseline_reuses: int = 0
    parallel_fallback: bool = False  # pool unavailable; ran serially

    #: Counter fields published to the ``repro.obs`` metrics registry.
    _COUNTER_FIELDS = (
        "jobs", "rows", "solves", "newton_iterations",
        "factorization_reuses", "smw_solves", "full_rebuilds",
        "baseline_reuses",
    )

    def absorb(self, solve_stats: SolveStats) -> None:
        self.solves += solve_stats.solves
        self.newton_iterations += solve_stats.newton_iterations
        self.factorization_reuses += solve_stats.factorization_reuses
        self.smw_solves += solve_stats.smw_solves
        self.full_rebuilds += solve_stats.full_rebuilds
        self.baseline_reuses += solve_stats.baseline_reuses

    def as_dict(self) -> Dict[str, object]:
        return asdict(self)

    def to_dict(self) -> Dict[str, object]:
        """Alias of :meth:`as_dict` — the exported-workbook/CLI spelling."""
        return self.as_dict()

    def publish(self) -> None:
        """Mirror the counters into the ``repro.obs`` metrics registry as
        first-class ``campaign_*`` metrics (no-op while obs is disabled).

        The registry values aggregate across campaigns (counters), so one
        traced session sums its campaigns exactly as the per-campaign
        ``CampaignStats`` instances do.
        """
        if not obs.enabled():
            return
        for name in self._COUNTER_FIELDS:
            obs.counter(f"campaign_{name}").inc(getattr(self, name))
        obs.gauge("campaign_wall_seconds").set(self.wall_time)
        obs.gauge("campaign_baseline_seconds").set(self.baseline_time)
        obs.gauge("campaign_workers").set(self.workers)
        if self.parallel_fallback:
            obs.counter("campaign_parallel_fallbacks").inc()


#: Job outcome: ('ok', readings) or ('error', message).
_Outcome = Tuple[str, object]


def _readings_from_solution(
    conversion: ElectricalConversion, solution, removed: Optional[str]
) -> Dict[str, float]:
    """Sensor readings off a DC solution (same semantics as
    :func:`~repro.safety.fmea._solve_readings` for the injected netlist)."""
    readings: Dict[str, float] = {}
    for path, element in conversion.current_sensors.items():
        if element == removed:
            readings[path] = 0.0
        else:
            readings[path] = solution.current(element)
    for path, (npos, nneg) in conversion.voltage_sensors.items():
        try:
            readings[path] = solution.voltage_across(npos, nneg)
        except CircuitError:
            readings[path] = 0.0
    return readings


def _execute_job(
    conversion: ElectricalConversion,
    compiled: Optional[CompiledSystem],
    job: InjectionJob,
    analysis: str,
    t_stop: float,
    dt: float,
) -> _Outcome:
    """Run one injection; never raises for circuit-level failures.

    With observability enabled, each execution is a ``campaign.job`` span
    (created in whichever process runs the job — the parent merges worker
    spans afterwards) and feeds the ``campaign_job_seconds`` histogram.
    """
    if not obs.enabled():
        return _execute_job_impl(conversion, compiled, job, analysis, t_stop, dt)
    with obs.span(
        "campaign.job",
        job=job.index,
        component=job.component,
        failure_mode=job.failure_mode,
    ) as sp:
        started = time.perf_counter()
        outcome = _execute_job_impl(
            conversion, compiled, job, analysis, t_stop, dt
        )
        obs.histogram("campaign_job_seconds").observe(
            time.perf_counter() - started
        )
        sp.set(outcome=outcome[0])
        return outcome


def _execute_job_impl(
    conversion: ElectricalConversion,
    compiled: Optional[CompiledSystem],
    job: InjectionJob,
    analysis: str,
    t_stop: float,
    dt: float,
) -> _Outcome:
    if compiled is not None and analysis == "dc":
        replacement = _behavior_replacement(
            conversion.netlist, job.element_name, job.behavior, job.block_params
        )
        try:
            solution = compiled.solve_replacement(job.element_name, replacement)
            removed = job.element_name if replacement is None else None
            return ("ok", _readings_from_solution(conversion, solution, removed))
        except CircuitError as exc:
            return ("error", str(exc))
    injected = _apply_behavior(
        conversion.netlist, job.element_name, job.behavior, job.block_params
    )
    try:
        if analysis == "transient":
            readings = _solve_readings_transient(conversion, injected, t_stop, dt)
        else:
            readings = _solve_readings(conversion, injected)
        return ("ok", readings)
    except CircuitError as exc:
        return ("error", str(exc))


def _primed_system(netlist: Netlist) -> CompiledSystem:
    """A compiled system with its baseline already solved.

    Priming up front lets every fault solve warm-start its Newton iteration
    from the healthy diode biases and reuse the baseline for no-op faults
    (e.g. a capacitor failing open at DC).
    """
    compiled = CompiledSystem(netlist)
    try:
        compiled.solve()
    except CircuitError:
        pass  # per-fault solves fall back and report their own errors
    return compiled


# -- process-pool plumbing ---------------------------------------------------
# Workers receive the conversion once (initializer) and then process chunks
# of jobs, each against its own CompiledSystem, so factorization reuse
# happens inside every worker too.

_WORKER_STATE: Dict[str, object] = {}


def _campaign_worker_init(
    conversion: ElectricalConversion,
    analysis: str,
    t_stop: float,
    dt: float,
    incremental: bool,
    trace_enabled: bool = False,
) -> None:
    if trace_enabled:
        # Trace in the worker too; start from a clean slate (a fork start
        # method copies the parent's already-recorded spans).
        obs.enable()
        obs.reset()
    _WORKER_STATE["conversion"] = conversion
    _WORKER_STATE["analysis"] = analysis
    _WORKER_STATE["t_stop"] = t_stop
    _WORKER_STATE["dt"] = dt
    compiled = None
    if incremental and analysis == "dc":
        compiled = _primed_system(conversion.netlist)
    _WORKER_STATE["compiled"] = compiled


def _campaign_worker_chunk(
    chunk: Sequence[InjectionJob],
) -> Tuple[List[Tuple[int, _Outcome]], SolveStats, Optional[Dict[str, object]]]:
    conversion: ElectricalConversion = _WORKER_STATE["conversion"]
    compiled: Optional[CompiledSystem] = _WORKER_STATE["compiled"]
    analysis: str = _WORKER_STATE["analysis"]
    t_stop: float = _WORKER_STATE["t_stop"]
    dt: float = _WORKER_STATE["dt"]
    results = [
        (job.index, _execute_job(conversion, compiled, job, analysis, t_stop, dt))
        for job in chunk
    ]
    # Report this chunk's *delta*, not the worker's cumulative counters: a
    # worker serving several chunks would otherwise double-count earlier
    # chunks in the parent's aggregate.
    stats = SolveStats()
    if compiled is not None:
        stats.merge(compiled.stats)
        compiled.stats = SolveStats()
    return results, stats, obs.drain_worker_data()


class FaultInjectionCampaign:
    """A batched automated FMEA by fault injection on a Simulink model.

    Parameters match :func:`~repro.safety.fmea.run_simulink_fmea` plus:

    incremental:
        solve DC injections through a shared compiled system (cached LU +
        low-rank updates) instead of per-mode full re-assembly.  Results
        are identical either way — topology-changing faults transparently
        fall back to full assembly;
    workers:
        number of worker processes.  ``0``/``1`` runs serially; ``N > 1``
        fans jobs out over a process pool.  Row order is deterministic
        (enumeration order) regardless of completion order.  When a pool
        cannot be created (restricted environments) the campaign degrades
        to serial execution and flags ``stats.parallel_fallback``.
    """

    def __init__(
        self,
        model: SimulinkModel,
        reliability: ReliabilityModel,
        sensors: Optional[Sequence[str]] = None,
        threshold: float = DEFAULT_THRESHOLD,
        assume_stable: Sequence[str] = (),
        min_absolute_delta: float = DEFAULT_MIN_ABSOLUTE_DELTA,
        behavior_overrides: Optional[
            Dict[Tuple[str, str], FailureBehavior]
        ] = None,
        analysis: str = "dc",
        t_stop: float = 5e-3,
        dt: float = 5e-5,
        incremental: bool = True,
        workers: int = 1,
    ) -> None:
        if analysis not in ("dc", "transient"):
            raise FmeaError(
                f"analysis must be 'dc' or 'transient', got {analysis!r}"
            )
        self.model = model
        self.reliability = reliability
        self.sensors = sensors
        self.threshold = threshold
        self.assume_stable = assume_stable
        self.min_absolute_delta = min_absolute_delta
        self.behavior_overrides = behavior_overrides
        self.analysis = analysis
        self.t_stop = t_stop
        self.dt = dt
        self.incremental = incremental
        self.workers = max(1, int(workers))

    # -- enumeration ------------------------------------------------------

    def _enumerate(
        self, conversion: ElectricalConversion, result: FmeaResult
    ) -> Tuple[List[Tuple[FmeaRow, Optional[InjectionJob]]], List[InjectionJob]]:
        """All FMEA row slots in output order, plus the runnable jobs."""
        stable: Set[str] = set(self.assume_stable)
        slots: List[Tuple[FmeaRow, Optional[InjectionJob]]] = []
        jobs: List[InjectionJob] = []
        for block in self.model.all_blocks():
            etype = block.effective_type
            info = block.effective_info
            if block.block_type == "Subsystem" and not block.param(
                "annotated_type"
            ):
                continue  # plain subsystems are analysed through their contents
            if info.role in ("sensor", "reference", "support", "structural"):
                continue
            if block.name in stable or block.path() in stable:
                continue
            entry = self.reliability.get(etype)
            if entry is None:
                result.uncovered.append(block.name)
                continue
            try:
                element_name = conversion.element_name(block.path())
            except Exception:
                result.uncovered.append(block.name)
                continue
            for mode in entry.failure_modes:
                behavior = None
                if self.behavior_overrides is not None:
                    behavior = self.behavior_overrides.get((etype, mode.name))
                if behavior is None:
                    behavior = info.failure_behaviors.get(mode.name)
                row = FmeaRow(
                    component=block.name,
                    component_class=entry.component_class,
                    fit=entry.fit,
                    failure_mode=mode.name,
                    nature=mode.nature,
                    distribution=mode.distribution,
                )
                if behavior is None:
                    row.warning = (
                        f"no failure behaviour for {etype}/{mode.name}; "
                        f"not injectable"
                    )
                    slots.append((row, None))
                    continue
                job = InjectionJob(
                    index=len(jobs),
                    component=block.name,
                    failure_mode=mode.name,
                    element_name=element_name,
                    behavior=behavior,
                    block_params=block.parameters,
                )
                jobs.append(job)
                slots.append((row, job))
        return slots, jobs

    # -- execution --------------------------------------------------------

    def _execute_serial(
        self,
        conversion: ElectricalConversion,
        jobs: Sequence[InjectionJob],
        stats: CampaignStats,
    ) -> Dict[int, _Outcome]:
        compiled = None
        if self.incremental and self.analysis == "dc":
            compiled = _primed_system(conversion.netlist)
        outcomes = {
            job.index: _execute_job(
                conversion, compiled, job, self.analysis, self.t_stop, self.dt
            )
            for job in jobs
        }
        if compiled is not None:
            stats.absorb(compiled.stats)
        return outcomes

    def _execute_parallel(
        self,
        conversion: ElectricalConversion,
        jobs: Sequence[InjectionJob],
        stats: CampaignStats,
    ) -> Dict[int, _Outcome]:
        from concurrent.futures import ProcessPoolExecutor

        # Round-robin chunking balances expensive (nonlinear) jobs across
        # workers; outcomes are re-keyed by job index, so ordering is
        # deterministic whatever the completion order.
        chunks = [
            list(jobs[offset :: self.workers]) for offset in range(self.workers)
        ]
        chunks = [chunk for chunk in chunks if chunk]
        with ProcessPoolExecutor(
            max_workers=len(chunks),
            initializer=_campaign_worker_init,
            initargs=(
                conversion,
                self.analysis,
                self.t_stop,
                self.dt,
                self.incremental,
                obs.enabled(),
            ),
        ) as pool:
            # Collect everything before mutating `stats`/the tracer: if the
            # pool dies mid-map and we fall back to serial, partially
            # absorbed worker counters would double-count the serial re-run.
            chunk_results = list(pool.map(_campaign_worker_chunk, chunks))
        outcomes: Dict[int, _Outcome] = {}
        parent_span = obs.current_span_id()
        for results, solve_stats, trace_payload in chunk_results:
            for index, outcome in results:
                outcomes[index] = outcome
            stats.absorb(solve_stats)
            # Merge worker spans in chunk-submission order (pool.map keeps
            # it), so the combined trace is deterministic for a fixed
            # worker count.
            obs.ingest_worker_data(trace_payload, parent_id=parent_span)
        return outcomes

    def _execute(
        self,
        conversion: ElectricalConversion,
        jobs: Sequence[InjectionJob],
        stats: CampaignStats,
    ) -> Dict[int, _Outcome]:
        if not jobs:
            return {}
        if self.workers > 1:
            try:
                return self._execute_parallel(conversion, jobs, stats)
            except (OSError, ImportError, PermissionError, RuntimeError):
                # Restricted environments (no fork/semaphores): degrade to
                # serial — same rows, just without the fan-out.
                stats.parallel_fallback = True
                stats.workers = 1
        return self._execute_serial(conversion, jobs, stats)

    # -- classification ---------------------------------------------------

    def _classify(
        self,
        row: FmeaRow,
        outcome: _Outcome,
        baseline: Dict[str, float],
        monitored: Sequence[str],
    ) -> FmeaRow:
        kind, payload = outcome
        if kind == "error":
            # A non-convergent injected circuit is itself evidence of a
            # violent disturbance; treat as safety-related and record why.
            row.safety_related = True
            row.effect = f"simulation failed under fault: {payload}"
            row.impact = "DVF"
            return row
        readings: Dict[str, float] = payload  # type: ignore[assignment]
        deltas = {
            name: _relative_delta(
                baseline[name], readings[name], self.min_absolute_delta
            )
            for name in monitored
        }
        row.sensor_deltas = deltas
        worst = max(deltas.values()) if deltas else 0.0
        if worst > self.threshold:
            row.safety_related = True
            row.impact = "DVF"
            # Quantize the ranking key: two sensors whose deltas agree to
            # nine decimals are tied (broken by sensor order), so the pick
            # cannot depend on which solver path produced the solution.
            worst_sensor = max(deltas, key=lambda name: round(deltas[name], 9))
            row.effect = (
                f"reading at {worst_sensor.rsplit('/', 1)[-1]} deviates "
                f"by {worst * 100:.1f}%"
            )
        else:
            row.effect = (
                f"max sensor deviation {worst * 100:.1f}% (< threshold)"
            )
        return row

    # -- the campaign -----------------------------------------------------

    def run(self) -> FmeaResult:
        """Execute the campaign and return the component safety analysis
        model, with :class:`CampaignStats` attached as ``result.stats``.

        With observability enabled the campaign is one ``campaign`` span
        over ``campaign.baseline`` / ``campaign.enumerate`` /
        ``campaign.execute`` (parenting one ``campaign.job`` span per
        executed injection, merged back from pool workers) /
        ``campaign.classify`` phases, and the final counters are published
        as ``campaign_*`` metrics.
        """
        started = time.perf_counter()
        stats = CampaignStats(
            workers=self.workers,
            mode="incremental" if self.incremental else "naive",
            analysis=self.analysis,
        )

        with obs.span(
            "campaign",
            system=self.model.name,
            mode=stats.mode,
            workers=self.workers,
            analysis=self.analysis,
        ) as campaign_span:
            conversion = to_netlist(self.model)
            baseline_started = time.perf_counter()
            with obs.span("campaign.baseline", analysis=self.analysis):
                if self.analysis == "transient":
                    baseline = _solve_readings_transient(
                        conversion, conversion.netlist, self.t_stop, self.dt
                    )
                else:
                    baseline = _solve_readings(conversion, conversion.netlist)
            stats.baseline_time = time.perf_counter() - baseline_started
            monitored = _select_sensors(conversion, self.sensors, baseline)

            result = FmeaResult(
                system=self.model.name,
                method="injection",
                baseline_readings={name: baseline[name] for name in monitored},
            )
            with obs.span("campaign.enumerate") as enumerate_span:
                slots, jobs = self._enumerate(conversion, result)
                enumerate_span.set(jobs=len(jobs), rows=len(slots))
            stats.jobs = len(jobs)
            stats.rows = len(slots)

            with obs.span("campaign.execute", jobs=len(jobs)):
                outcomes = self._execute(conversion, jobs, stats)
            with obs.span("campaign.classify", rows=len(slots)):
                for row, job in slots:
                    if job is None:
                        result.rows.append(row)
                        continue
                    result.rows.append(
                        self._classify(
                            row, outcomes[job.index], baseline, monitored
                        )
                    )
            if not result.rows:
                raise FmeaError(
                    "FMEA produced no rows: no component matched the "
                    "reliability model"
                )
            stats.wall_time = time.perf_counter() - started
            campaign_span.set(
                jobs=stats.jobs,
                rows=stats.rows,
                parallel_fallback=stats.parallel_fallback,
            )
        result.stats = stats
        stats.publish()
        return result
