"""Batched fault-injection campaign engine (DECISIVE Step 4a at scale).

:func:`repro.safety.fmea.run_simulink_fmea` used to rebuild and re-solve
the full MNA system from scratch for every (component, failure mode) pair.
This module turns that loop into a campaign:

1. the model is flattened and the healthy baseline solved **once**;
2. every injection is enumerated up front as an :class:`InjectionJob`;
3. jobs execute against a single :class:`~repro.circuit.CompiledSystem`
   (cached LU factorization + Sherman–Morrison–Woodbury low-rank updates,
   with exact full-assembly fallback), either serially or fanned out over a
   process pool with deterministic row ordering;
4. rows are classified in enumeration order, so the resulting
   :class:`~repro.safety.fmea.FmeaResult` is row-for-row identical to the
   historical per-mode re-solve, whatever the execution strategy.

Per-campaign instrumentation (job counts, solve mix, factorization reuses,
wall time) is attached to the result as :class:`CampaignStats` — the raw
material for the paper's Table V/VI efficiency story.

Execution is fault tolerant (see :mod:`repro.safety.resilience`): a job
that raises records a structured :class:`~repro.safety.resilience.JobFailure`
row instead of aborting the campaign, transient failures are retried with
exponential backoff, a dead pool worker costs only its chunk (resubmitted
to a fresh pool, with the offending job bisected out after ``max_retries``),
and a ``checkpoint`` file lets ``resume`` skip already-completed jobs.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple, Union

from repro import obs
from repro.circuit import (
    BACKENDS,
    CircuitError,
    CompiledSystem,
    SolveStats,
    default_backend,
    set_default_backend,
    system_size,
)
from repro.circuit.netlist import Netlist
from repro.safety import pool as _warm_pool
from repro.reliability import ReliabilityModel
from repro.safety.fmea import (
    DEFAULT_MIN_ABSOLUTE_DELTA,
    DEFAULT_THRESHOLD,
    FmeaError,
    FmeaResult,
    FmeaRow,
    _apply_behavior,
    _behavior_replacement,
    _relative_delta,
    _select_sensors,
    _solve_readings,
    _solve_readings_transient,
)
from repro.safety.resilience import (
    TRANSIENT_ERRORS,
    CampaignCheckpoint,
    JobFailure,
    JobTimeoutError,
    RetryPolicy,
    campaign_fingerprint,
    job_deadline,
)
from repro.simulink import FailureBehavior, SimulinkError, SimulinkModel, to_netlist
from repro.simulink.electrical import ElectricalConversion

#: Serial campaigns flush the checkpoint every this many completed jobs.
_CHECKPOINT_EVERY = 25

#: ``strategy="auto"`` fans out only at or above this many pending jobs.
#: Benchmarks (BENCH_injection.json) put parallel execution at 0.39–0.43x
#: of the incremental serial solve for 9–30-job campaigns — pool start-up
#: and conversion pickling dwarf the solves — while 200+-job campaigns see
#: 3–4x.  The break-even sits well above small demo models, so `auto`
#: stays serial until the fan-out can plausibly amortise its fixed cost.
AUTO_PARALLEL_MIN_JOBS = 64

#: ``auto`` also fans out *below* :data:`AUTO_PARALLEL_MIN_JOBS` when the
#: per-job solve itself is heavy.  A factorized solve costs ~O(size²) per
#: RHS, so ``jobs * size**2`` estimates total campaign work; above this
#: budget the solves dominate pool start-up even for a handful of jobs
#: (e.g. a 60-job campaign on a ~2500-unknown grid).  Small demo models
#: (size < ~50) can never reach it with fewer than 64 jobs.
AUTO_PARALLEL_MIN_COST = 1e8

#: Cost-based fan-out still needs enough jobs to share between workers.
_AUTO_COST_MIN_JOBS = 4


@dataclass(frozen=True)
class InjectionJob:
    """One planned fault injection: which element, which failure physics."""

    index: int
    component: str
    failure_mode: str
    element_name: str
    behavior: FailureBehavior
    block_params: Mapping[str, object]


@dataclass
class CampaignStats:
    """Execution instrumentation for one fault-injection campaign."""

    jobs: int = 0  # injection simulations requested
    rows: int = 0  # FMEA rows produced (jobs + uninjectable warnings)
    workers: int = 1  # workers actually used (1 after a parallel fallback)
    requested_workers: int = 1  # workers the caller asked for
    mode: str = "incremental"  # 'incremental' | 'naive'
    strategy: str = "fixed"  # 'fixed' | 'serial' | 'auto'
    analysis: str = "dc"
    solver_backend: str = "auto"  # requested backend spec ('auto' if unset)
    pool_reused: bool = False  # warm worker pool reused from a prior campaign
    wall_time: float = 0.0  # whole campaign, seconds
    baseline_time: float = 0.0  # healthy solve, seconds
    solves: int = 0
    newton_iterations: int = 0
    factorization_reuses: int = 0
    smw_solves: int = 0
    full_rebuilds: int = 0
    baseline_reuses: int = 0
    direct_solves: int = 0  # small-system dense-direct fault solves
    batched_columns: int = 0  # SMW columns solved as multi-RHS blocks
    parallel_fallback: bool = False  # pool unavailable; ran serially
    retries: int = 0  # transient-failure retries (job- and chunk-level)
    timeouts: int = 0  # jobs killed by the per-job wall-clock budget
    job_failures: int = 0  # jobs that ended as structured JobFailure rows
    resumed_jobs: int = 0  # jobs skipped because a checkpoint had them
    # Per-job wall-time distribution (all attempts + backoff, seconds);
    # 0.0 when no job executed this run (e.g. fully resumed).
    job_wall_p50: float = 0.0
    job_wall_p95: float = 0.0
    job_wall_p99: float = 0.0

    #: Counter fields published to the ``repro.obs`` metrics registry.
    _COUNTER_FIELDS = (
        "jobs", "rows", "solves", "newton_iterations",
        "factorization_reuses", "smw_solves", "full_rebuilds",
        "baseline_reuses", "retries", "timeouts", "job_failures",
        "resumed_jobs", "direct_solves", "batched_columns",
    )

    def absorb(self, solve_stats: SolveStats) -> None:
        self.solves += solve_stats.solves
        self.newton_iterations += solve_stats.newton_iterations
        self.factorization_reuses += solve_stats.factorization_reuses
        self.smw_solves += solve_stats.smw_solves
        self.full_rebuilds += solve_stats.full_rebuilds
        self.baseline_reuses += solve_stats.baseline_reuses
        self.direct_solves += solve_stats.direct_solves
        self.batched_columns += solve_stats.batched_columns

    def as_dict(self) -> Dict[str, object]:
        return asdict(self)

    def to_dict(self) -> Dict[str, object]:
        """Alias of :meth:`as_dict` — the exported-workbook/CLI spelling."""
        return self.as_dict()

    def publish(self) -> None:
        """Mirror the counters into the ``repro.obs`` metrics registry as
        first-class ``campaign_*`` metrics (no-op while obs is disabled).

        The registry values aggregate across campaigns (counters), so one
        traced session sums its campaigns exactly as the per-campaign
        ``CampaignStats`` instances do.
        """
        if not obs.enabled():
            return
        for name in self._COUNTER_FIELDS:
            obs.counter(f"campaign_{name}").inc(getattr(self, name))
        obs.gauge("campaign_wall_seconds").set(self.wall_time)
        obs.gauge("campaign_baseline_seconds").set(self.baseline_time)
        obs.gauge("campaign_workers").set(self.workers)
        obs.gauge("campaign_requested_workers").set(self.requested_workers)
        obs.gauge("campaign_pool_reuse").set(1.0 if self.pool_reused else 0.0)
        if self.parallel_fallback:
            obs.counter("campaign_parallel_fallbacks").inc()


#: Job outcome: ('ok', readings), ('error', message) — a circuit-level
#: failure, meaningful safety evidence — or ('failed', JobFailure dict) —
#: a harness-level failure recorded instead of aborting the campaign.
_Outcome = Tuple[str, object]


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolated quantile ``q`` of an ascending sequence."""
    if not sorted_values:
        return 0.0
    position = q * (len(sorted_values) - 1)
    lower = int(position)
    upper = min(lower + 1, len(sorted_values) - 1)
    fraction = position - lower
    return (
        sorted_values[lower] * (1.0 - fraction)
        + sorted_values[upper] * fraction
    )


def _readings_from_solution(
    conversion: ElectricalConversion, solution, removed: Optional[str]
) -> Dict[str, float]:
    """Sensor readings off a DC solution (same semantics as
    :func:`~repro.safety.fmea._solve_readings` for the injected netlist)."""
    readings: Dict[str, float] = {}
    for path, element in conversion.current_sensors.items():
        if element == removed:
            readings[path] = 0.0
        else:
            readings[path] = solution.current(element)
    for path, (npos, nneg) in conversion.voltage_sensors.items():
        try:
            readings[path] = solution.voltage_across(npos, nneg)
        except CircuitError:
            readings[path] = 0.0
    return readings


def _execute_job(
    conversion: ElectricalConversion,
    compiled: Optional[CompiledSystem],
    job: InjectionJob,
    analysis: str,
    t_stop: float,
    dt: float,
) -> _Outcome:
    """Run one injection; never raises for circuit-level failures.

    With observability enabled, each execution is a ``campaign.job`` span
    (created in whichever process runs the job — the parent merges worker
    spans afterwards) and feeds the ``campaign_job_seconds`` histogram.
    """
    if not obs.enabled():
        return _execute_job_impl(conversion, compiled, job, analysis, t_stop, dt)
    with obs.span(
        "campaign.job",
        job=job.index,
        component=job.component,
        failure_mode=job.failure_mode,
    ) as sp:
        started = time.perf_counter()
        outcome = _execute_job_impl(
            conversion, compiled, job, analysis, t_stop, dt
        )
        obs.histogram("campaign_job_seconds").observe(
            time.perf_counter() - started
        )
        sp.set(outcome=outcome[0])
        return outcome


def _execute_job_impl(
    conversion: ElectricalConversion,
    compiled: Optional[CompiledSystem],
    job: InjectionJob,
    analysis: str,
    t_stop: float,
    dt: float,
) -> _Outcome:
    if compiled is not None and analysis == "dc":
        replacement = _behavior_replacement(
            conversion.netlist, job.element_name, job.behavior, job.block_params
        )
        try:
            solution = compiled.solve_replacement(job.element_name, replacement)
            removed = job.element_name if replacement is None else None
            return ("ok", _readings_from_solution(conversion, solution, removed))
        except CircuitError as exc:
            return ("error", str(exc))
    injected = _apply_behavior(
        conversion.netlist, job.element_name, job.behavior, job.block_params
    )
    try:
        if analysis == "transient":
            readings = _solve_readings_transient(conversion, injected, t_stop, dt)
        else:
            readings = _solve_readings(conversion, injected)
        return ("ok", readings)
    except CircuitError as exc:
        return ("error", str(exc))


def _run_job_isolated(
    conversion: ElectricalConversion,
    compiled: Optional[CompiledSystem],
    job: InjectionJob,
    analysis: str,
    t_stop: float,
    dt: float,
    policy: RetryPolicy,
    timeout: Optional[float],
) -> Tuple[_Outcome, int, int, float]:
    """Run one job under the fault-tolerance contract.

    Never raises: circuit-level failures stay ``('error', …)`` outcomes
    (handled inside :func:`_execute_job`), transient failures are retried
    with exponential backoff up to ``policy.max_retries``, runaway solves
    are cut off after ``timeout`` seconds, and anything else becomes a
    ``('failed', JobFailure dict)`` outcome.  Returns ``(outcome,
    retries_used, timeouts, wall_seconds)`` so the caller can aggregate
    counters — and the end-to-end per-job wall time (all attempts plus
    backoff sleeps, feeding ``campaign_job_wall_seconds`` and the
    ``--stats`` percentiles; ``campaign_job_seconds`` stays the
    per-*attempt* execution time) — across process boundaries.
    """
    started = time.perf_counter()
    outcome, retries, timeouts = _attempt_job(
        conversion, compiled, job, analysis, t_stop, dt, policy, timeout
    )
    wall = time.perf_counter() - started
    if obs.enabled():
        obs.histogram("campaign_job_wall_seconds").observe(wall)
    return outcome, retries, timeouts, wall


def _attempt_job(
    conversion: ElectricalConversion,
    compiled: Optional[CompiledSystem],
    job: InjectionJob,
    analysis: str,
    t_stop: float,
    dt: float,
    policy: RetryPolicy,
    timeout: Optional[float],
) -> Tuple[_Outcome, int, int]:
    """The retry loop behind :func:`_run_job_isolated`."""
    attempt = 0
    while True:
        try:
            with job_deadline(timeout):
                outcome = _execute_job(
                    conversion, compiled, job, analysis, t_stop, dt
                )
            return outcome, attempt, 0
        except JobTimeoutError as exc:
            # Deterministic work that ran away once will run away again:
            # record the timeout, don't burn retries on it.
            failure = JobFailure.from_exception(
                job, exc, kind="timeout", retries=attempt
            )
            return ("failed", failure.to_dict()), attempt, 1
        except TRANSIENT_ERRORS as exc:
            attempt += 1
            if attempt > policy.max_retries:
                failure = JobFailure.from_exception(
                    job, exc, retries=attempt - 1
                )
                return ("failed", failure.to_dict()), attempt - 1, 0
            obs.emit_event(
                "job_retried", job=job.index, component=job.component,
                attempt=attempt, error=type(exc).__name__,
            )
            obs.log(
                "warning", "job retried", job=job.index,
                component=job.component, attempt=attempt,
                error=type(exc).__name__,
            )
            with obs.span(
                "campaign.retry", job=job.index, attempt=attempt,
                error=type(exc).__name__,
            ):
                time.sleep(policy.delay(attempt))
        except Exception as exc:  # noqa: BLE001 — per-job isolation
            failure = JobFailure.from_exception(job, exc, retries=attempt)
            return ("failed", failure.to_dict()), attempt, 0


def _primed_system(
    netlist: Netlist, backend: Optional[str] = None
) -> CompiledSystem:
    """A compiled system with its baseline already solved.

    Priming up front lets every fault solve warm-start its Newton iteration
    from the healthy diode biases and reuse the baseline for no-op faults
    (e.g. a capacitor failing open at DC).
    """
    compiled = CompiledSystem(netlist, backend=backend)
    try:
        compiled.solve()
    except CircuitError:
        pass  # per-fault solves fall back and report their own errors
    return compiled


# -- process-pool plumbing ---------------------------------------------------
# Workers receive the conversion once (initializer) and then process chunks
# of jobs, each against its own CompiledSystem, so factorization reuse
# happens inside every worker too.

_WORKER_STATE: Dict[str, object] = {}


def _campaign_worker_init(
    conversion: ElectricalConversion,
    analysis: str,
    t_stop: float,
    dt: float,
    incremental: bool,
    trace_enabled: bool = False,
    policy: RetryPolicy = RetryPolicy(),
    job_timeout: Optional[float] = None,
    solver_backend: Optional[str] = None,
    events_enabled: bool = False,
    logs_enabled: bool = False,
    correlation_id: Optional[str] = None,
) -> None:
    if trace_enabled:
        # Trace in the worker too; start from a clean slate (a fork start
        # method copies the parent's already-recorded spans).
        obs.enable()
    if events_enabled:
        # The event plane switches independently of tracing (a --progress
        # run without --trace still needs worker heartbeats).
        obs.enable_events()
    if logs_enabled:
        obs.enable_logs()
    if trace_enabled or events_enabled or logs_enabled:
        obs.reset()
    # After reset (which clears the correlation context): a worker process
    # serves exactly one campaign configuration, so the job's id is its
    # process-global default — every worker-side event/span/log carries it
    # home through the drain/ingest delta path.
    obs.set_correlation_id(correlation_id)
    if solver_backend is not None:
        # Campaign-wide backend: the naive/transient paths solve through
        # module-level functions that read the process default, and this
        # worker process exists only to serve this campaign configuration
        # (the warm-pool token includes the backend).
        set_default_backend(solver_backend)
    _WORKER_STATE["conversion"] = conversion
    _WORKER_STATE["analysis"] = analysis
    _WORKER_STATE["t_stop"] = t_stop
    _WORKER_STATE["dt"] = dt
    _WORKER_STATE["policy"] = policy
    _WORKER_STATE["job_timeout"] = job_timeout
    compiled = None
    if incremental and analysis == "dc":
        compiled = _primed_system(conversion.netlist, backend=solver_backend)
    _WORKER_STATE["compiled"] = compiled


def _campaign_worker_chunk(
    chunk: Sequence[InjectionJob],
) -> Tuple[
    List[Tuple[int, _Outcome]],
    SolveStats,
    Dict[str, int],
    Optional[Dict[str, object]],
]:
    conversion: ElectricalConversion = _WORKER_STATE["conversion"]
    compiled: Optional[CompiledSystem] = _WORKER_STATE["compiled"]
    analysis: str = _WORKER_STATE["analysis"]
    t_stop: float = _WORKER_STATE["t_stop"]
    dt: float = _WORKER_STATE["dt"]
    policy: RetryPolicy = _WORKER_STATE.get("policy", RetryPolicy())
    job_timeout: Optional[float] = _WORKER_STATE.get("job_timeout")
    results: List[Tuple[int, _Outcome]] = []
    job_wall_times: List[float] = []
    extras: Dict[str, object] = {
        "retries": 0, "timeouts": 0, "job_wall_times": job_wall_times,
    }
    # One heartbeat per chunk: the event's pid identifies this worker, so
    # the parent (and /events subscribers) can see which warm-pool workers
    # are actually serving — it rides home in the drained payload below.
    obs.emit_event("worker_heartbeat", chunk_jobs=len(chunk))
    for job in chunk:
        outcome, retries, timeouts, wall = _run_job_isolated(
            conversion, compiled, job, analysis, t_stop, dt,
            policy, job_timeout,
        )
        extras["retries"] += retries  # type: ignore[operator]
        extras["timeouts"] += timeouts  # type: ignore[operator]
        job_wall_times.append(wall)
        results.append((job.index, outcome))
    # Report this chunk's *delta*, not the worker's cumulative counters: a
    # worker serving several chunks would otherwise double-count earlier
    # chunks in the parent's aggregate.
    stats = SolveStats()
    if compiled is not None:
        stats.merge(compiled.stats)
        compiled.stats = SolveStats()
    return results, stats, extras, obs.drain_worker_data()


class _ParallelUnavailable(RuntimeError):
    """Internal: the pool layer gave up; ``completed`` holds the outcomes
    it did produce (their solver stats and spans are already merged), so
    the serial fallback only needs to run the remainder."""

    def __init__(self, completed: Dict[int, _Outcome], cause: BaseException):
        super().__init__(str(cause))
        self.completed = completed


@dataclass(frozen=True)
class _ChunkTask:
    """One pool submission: ``order`` keeps trace merging deterministic
    across retries and bisections ((2,) splits into (2, 0) and (2, 1))."""

    order: Tuple[int, ...]
    jobs: Tuple[InjectionJob, ...]
    attempt: int = 0


class FaultInjectionCampaign:
    """A batched automated FMEA by fault injection on a Simulink model.

    Parameters match :func:`~repro.safety.fmea.run_simulink_fmea` plus:

    incremental:
        solve DC injections through a shared compiled system (cached LU +
        low-rank updates) instead of per-mode full re-assembly.  Results
        are identical either way — topology-changing faults transparently
        fall back to full assembly;
    workers:
        number of worker processes.  ``0``/``1`` runs serially; ``N > 1``
        fans jobs out over a process pool.  Row order is deterministic
        (enumeration order) regardless of completion order.  When a pool
        cannot be created (restricted environments) the campaign degrades
        to serial execution and flags ``stats.parallel_fallback``;
    strategy:
        how the worker count is chosen.  ``"fixed"`` (default) uses
        ``workers`` exactly as given; ``"serial"`` forces one worker;
        ``"auto"`` runs the incremental serial solver below a measured
        crossover — :data:`AUTO_PARALLEL_MIN_JOBS` pending jobs, *or*
        fewer jobs whose estimated solve work ``jobs * size**2`` exceeds
        :data:`AUTO_PARALLEL_MIN_COST` (large MNA systems amortise pool
        start-up with far fewer jobs than demo-sized ones) — and fans
        out above it (using ``workers`` when > 1, else one worker per
        CPU, capped by the job count).  The decision is recorded in
        ``stats.strategy`` and ``stats.workers``;
    solver_backend:
        linear-solver engine for every MNA solve in the campaign
        (baseline, incremental fault solves, workers): ``"dense"``
        (LAPACK LU), ``"sparse"`` (CSC + SuperLU) or ``"auto"``
        (size-based pick).  ``None`` defers to the process default;
    max_retries:
        bounded retry budget for transient failures — both job-level
        (numerical rejections) and chunk-level (a pool worker dying takes
        only its chunk, which is resubmitted to a fresh pool; after the
        budget is spent the chunk is bisected until the poisoned job is
        isolated and recorded as a :class:`JobFailure`);
    retry_backoff:
        base delay (seconds) of the exponential backoff between retries;
    job_timeout:
        per-job wall-clock budget in seconds (``None``: unlimited).  A
        runaway solve is cut off and recorded as a timeout
        :class:`JobFailure` instead of hanging the campaign;
    checkpoint:
        path of a JSONL file where completed job outcomes are persisted
        (keyed by a content hash of the model + reliability data, so stale
        entries are ignored automatically);
    resume:
        with ``checkpoint``, skip jobs whose outcomes the file already
        holds (``stats.resumed_jobs`` counts them).  Without ``resume``
        the checkpoint file is restarted from scratch.
    """

    def __init__(
        self,
        model: SimulinkModel,
        reliability: ReliabilityModel,
        sensors: Optional[Sequence[str]] = None,
        threshold: float = DEFAULT_THRESHOLD,
        assume_stable: Sequence[str] = (),
        min_absolute_delta: float = DEFAULT_MIN_ABSOLUTE_DELTA,
        behavior_overrides: Optional[
            Dict[Tuple[str, str], FailureBehavior]
        ] = None,
        analysis: str = "dc",
        t_stop: float = 5e-3,
        dt: float = 5e-5,
        incremental: bool = True,
        workers: int = 1,
        strategy: str = "fixed",
        max_retries: int = 2,
        retry_backoff: float = 0.05,
        job_timeout: Optional[float] = None,
        checkpoint: Optional[Union[str, Path]] = None,
        resume: bool = False,
        solver_backend: Optional[str] = None,
        correlation_id: Optional[str] = None,
    ) -> None:
        if analysis not in ("dc", "transient"):
            raise FmeaError(
                f"analysis must be 'dc' or 'transient', got {analysis!r}"
            )
        if strategy not in ("fixed", "serial", "auto"):
            raise FmeaError(
                f"strategy must be 'fixed', 'serial' or 'auto', "
                f"got {strategy!r}"
            )
        if job_timeout is not None and job_timeout <= 0:
            raise FmeaError(
                f"job_timeout must be positive, got {job_timeout!r}"
            )
        if solver_backend is not None and solver_backend not in BACKENDS:
            raise FmeaError(
                f"solver_backend must be one of {BACKENDS}, "
                f"got {solver_backend!r}"
            )
        if resume and checkpoint is None:
            raise FmeaError("resume=True requires a checkpoint path")
        self.model = model
        self.reliability = reliability
        self.sensors = sensors
        self.threshold = threshold
        self.assume_stable = assume_stable
        self.min_absolute_delta = min_absolute_delta
        self.behavior_overrides = behavior_overrides
        self.analysis = analysis
        self.t_stop = t_stop
        self.dt = dt
        self.incremental = incremental
        self.workers = max(1, int(workers))
        self.strategy = strategy
        self.retry_policy = RetryPolicy(
            max_retries=max(0, int(max_retries)), backoff=retry_backoff
        )
        self.job_timeout = job_timeout
        self.checkpoint = checkpoint
        self.resume = resume
        self.solver_backend = solver_backend
        #: Correlation id scoped over the whole run (events, spans, logs,
        #: pool workers).  ``None`` inherits whatever ambient id the caller
        #: installed (the service wraps ``run()`` in its job's id anyway).
        self.correlation_id = correlation_id
        self._pool_reused = False
        self._fingerprint: Optional[str] = None
        self._shared_compiled: Optional[CompiledSystem] = None
        self._job_wall_times: List[float] = []
        self._progress_total = 0
        self._progress_done = 0
        self._progress_resumed = 0
        self._progress_t0 = 0.0

    # -- progress events ---------------------------------------------------

    def _short_fingerprint(self) -> str:
        """The campaign fingerprint truncated for event payloads — enough
        to key `/healthz` per-campaign progress, cheap to repeat."""
        return self._campaign_token()[:16]

    def _emit_progress(self, newly_done: int, chunk: Optional[str] = None) -> None:
        """One ``chunk_completed`` event advancing the done counter.

        The ETA extrapolates the measured per-job wall time of the jobs
        *executed this run* (resumed jobs were free, so they are excluded
        from the rate) over the jobs still pending.  No-op (one flag
        check) while the event plane is disabled."""
        if not obs.events_enabled():
            return
        self._progress_done += newly_done
        executed = self._progress_done - self._progress_resumed
        remaining = self._progress_total - self._progress_done
        eta: Optional[float]
        if remaining <= 0:
            eta = 0.0
        elif executed > 0:
            elapsed = time.perf_counter() - self._progress_t0
            eta = elapsed / executed * remaining
        else:
            eta = None  # nothing executed yet: no rate to extrapolate
        payload: Dict[str, object] = {
            "done": self._progress_done,
            "total": self._progress_total,
            "eta_seconds": eta,
            "fingerprint": self._short_fingerprint(),
        }
        if chunk is not None:
            payload["chunk"] = chunk
        obs.emit_event("chunk_completed", **payload)

    # -- enumeration ------------------------------------------------------

    def _enumerate(
        self, conversion: ElectricalConversion, result: FmeaResult
    ) -> Tuple[List[Tuple[FmeaRow, Optional[InjectionJob]]], List[InjectionJob]]:
        """All FMEA row slots in output order, plus the runnable jobs."""
        stable: Set[str] = set(self.assume_stable)
        slots: List[Tuple[FmeaRow, Optional[InjectionJob]]] = []
        jobs: List[InjectionJob] = []
        for block in self.model.all_blocks():
            etype = block.effective_type
            info = block.effective_info
            if block.block_type == "Subsystem" and not block.param(
                "annotated_type"
            ):
                continue  # plain subsystems are analysed through their contents
            if info.role in ("sensor", "reference", "support", "structural"):
                continue
            if block.name in stable or block.path() in stable:
                continue
            entry = self.reliability.get(etype)
            if entry is None:
                result.uncovered.append(block.name)
                result.uncovered_reasons[block.name] = (
                    f"no reliability data for component class {etype!r}"
                )
                continue
            try:
                element_name = conversion.element_name(block.path())
            except (SimulinkError, CircuitError, KeyError) as exc:
                # Only "this block has no electrical element" counts as
                # uncovered; a programming error must surface, not
                # masquerade as a coverage gap.
                result.uncovered.append(block.name)
                result.uncovered_reasons[block.name] = str(exc)
                continue
            for mode in entry.failure_modes:
                behavior = None
                if self.behavior_overrides is not None:
                    behavior = self.behavior_overrides.get((etype, mode.name))
                if behavior is None:
                    behavior = info.failure_behaviors.get(mode.name)
                row = FmeaRow(
                    component=block.name,
                    component_class=entry.component_class,
                    fit=entry.fit,
                    failure_mode=mode.name,
                    nature=mode.nature,
                    distribution=mode.distribution,
                )
                if behavior is None:
                    row.warning = (
                        f"no failure behaviour for {etype}/{mode.name}; "
                        f"not injectable"
                    )
                    slots.append((row, None))
                    continue
                job = InjectionJob(
                    index=len(jobs),
                    component=block.name,
                    failure_mode=mode.name,
                    element_name=element_name,
                    behavior=behavior,
                    block_params=block.parameters,
                )
                jobs.append(job)
                slots.append((row, job))
        return slots, jobs

    # -- execution --------------------------------------------------------

    def _execute_serial(
        self,
        conversion: ElectricalConversion,
        jobs: Sequence[InjectionJob],
        stats: CampaignStats,
        checkpoint: Optional[CampaignCheckpoint] = None,
    ) -> Dict[int, _Outcome]:
        compiled = None
        if self.incremental and self.analysis == "dc":
            compiled = self._shared_compiled or _primed_system(
                conversion.netlist, backend=self.solver_backend
            )
        outcomes: Dict[int, _Outcome] = {}
        emitted_at = 0
        for position, job in enumerate(jobs, start=1):
            outcome, retries, timeouts, wall = _run_job_isolated(
                conversion, compiled, job, self.analysis,
                self.t_stop, self.dt, self.retry_policy, self.job_timeout,
            )
            stats.retries += retries
            stats.timeouts += timeouts
            self._job_wall_times.append(wall)
            outcomes[job.index] = outcome
            if checkpoint is not None:
                checkpoint.record(job, outcome)
                if position % _CHECKPOINT_EVERY == 0:
                    checkpoint.flush()
            if position % _CHECKPOINT_EVERY == 0 or position == len(jobs):
                # Serial progress ticks at checkpoint granularity — cheap
                # enough to stay in the loop, frequent enough for an ETA.
                self._emit_progress(position - emitted_at)
                emitted_at = position
        if compiled is not None:
            stats.absorb(compiled.stats)
        return outcomes

    def _campaign_token(self) -> str:
        """Content hash identifying this campaign's worker configuration.

        Cached for the duration of ONE run only (:func:`campaign_fingerprint`
        hashes the whole model, so chunk-recovery pool rebuilds must not pay
        it repeatedly) — ``_run_campaign`` invalidates the cache at entry,
        because the iterate-and-rerun workflows (DECISIVE, service tenants)
        mutate the model or config between runs and a stale fingerprint
        would match the warm pool and checkpoint/cache keys of the *old*
        model state.
        """
        if self._fingerprint is None:
            self._fingerprint = campaign_fingerprint(
                self.model,
                self.reliability,
                self.analysis,
                self.t_stop,
                self.dt,
                self.behavior_overrides,
            )
        return self._fingerprint

    def _new_pool(self, conversion: ElectricalConversion, size: int):
        """Acquire the warm worker pool (or a fresh one on token mismatch).

        The token captures everything ``_campaign_worker_init`` bakes into
        the workers; an exact match means the cached pool's workers are
        already initialised identically and can serve this campaign with
        zero start-up cost.
        """
        max_workers = max(1, min(self.workers, size))
        # The ambient correlation id is baked into the worker initargs (so
        # worker-side events/spans/logs carry it) and therefore into the
        # token: a pool initialised for another job's id must not serve
        # this one.  Uncorrelated campaigns (cid None) keep full reuse.
        cid = obs.correlation_id()
        token = (
            self._campaign_token(),
            max_workers,
            self.incremental,
            obs.enabled(),
            obs.events_enabled(),
            obs.logs_enabled(),
            self.retry_policy,
            self.job_timeout,
            self.solver_backend,
            cid,
        )
        executor, reused = _warm_pool.acquire(
            token,
            max_workers,
            _campaign_worker_init,
            (
                conversion,
                self.analysis,
                self.t_stop,
                self.dt,
                self.incremental,
                obs.enabled(),
                self.retry_policy,
                self.job_timeout,
                self.solver_backend,
                obs.events_enabled(),
                obs.logs_enabled(),
                cid,
            ),
        )
        if reused:
            self._pool_reused = True
        return executor

    def _execute_parallel(
        self,
        conversion: ElectricalConversion,
        jobs: Sequence[InjectionJob],
        stats: CampaignStats,
        checkpoint: Optional[CampaignCheckpoint] = None,
    ) -> Dict[int, _Outcome]:
        """Fan jobs out over a process pool, chunk-granularly recoverable.

        A chunk whose worker dies is resubmitted to a fresh pool up to
        ``max_retries`` times, then bisected — so one poisoned job cannot
        take healthy work down with it, and the cost of a crash is one
        chunk, not the campaign.  Completed chunks are kept (outcomes,
        solver stats and spans) even when the pool layer later gives up
        and the campaign degrades to serial for the remainder.
        """
        completed: Dict[int, _Outcome] = {}
        try:
            self._parallel_rounds(
                conversion, jobs, stats, completed, checkpoint
            )
        except Exception as exc:  # noqa: BLE001 — pool layer must not abort
            # Restricted environments (no fork/semaphores) or repeated
            # zero-progress pool deaths: degrade to serial for whatever is
            # left.  Completed outcomes stay valid — their stats/spans are
            # already merged and the serial pass will skip them.
            raise _ParallelUnavailable(completed, exc) from exc
        return completed

    def _parallel_rounds(
        self,
        conversion: ElectricalConversion,
        jobs: Sequence[InjectionJob],
        stats: CampaignStats,
        completed: Dict[int, _Outcome],
        checkpoint: Optional[CampaignCheckpoint],
    ) -> None:
        from concurrent.futures.process import BrokenProcessPool

        # Round-robin chunking balances expensive (nonlinear) jobs across
        # workers; outcomes are re-keyed by job index, so ordering is
        # deterministic whatever the completion order.
        chunks = [
            tuple(jobs[offset :: self.workers])
            for offset in range(self.workers)
        ]
        pending = [
            _ChunkTask(order=(i,), jobs=chunk)
            for i, chunk in enumerate(chunks)
            if chunk
        ]
        parent_span = obs.current_span_id()
        pool = self._new_pool(conversion, len(pending))
        zero_progress_rounds = 0
        try:
            while pending:
                submitted: List[Tuple[_ChunkTask, object]] = []
                lost: List[_ChunkTask] = []
                pool_broken = False
                for task in pending:
                    try:
                        submitted.append(
                            (task, pool.submit(_campaign_worker_chunk, task.jobs))
                        )
                    except BrokenProcessPool:
                        lost.append(task)
                        pool_broken = True
                progressed = 0
                # Process in submission order so the merged trace is
                # deterministic for a fixed worker count and loss pattern.
                for task, future in submitted:
                    try:
                        results, solve_stats, extras, payload = future.result()
                    except BrokenProcessPool:
                        lost.append(task)
                        pool_broken = True
                        continue
                    except Exception:  # noqa: BLE001 — e.g. pickling errors
                        lost.append(task)
                        continue
                    progressed += 1
                    for index, outcome in results:
                        completed[index] = outcome
                    stats.absorb(solve_stats)
                    stats.retries += extras.get("retries", 0)
                    stats.timeouts += extras.get("timeouts", 0)
                    self._job_wall_times.extend(
                        extras.get("job_wall_times", ())
                    )
                    obs.ingest_worker_data(payload, parent_id=parent_span)
                    self._emit_progress(
                        len(results), chunk=".".join(map(str, task.order))
                    )
                    if checkpoint is not None:
                        by_index = {job.index: job for job in task.jobs}
                        for index, outcome in results:
                            checkpoint.record(by_index[index], outcome)
                        checkpoint.flush()
                if lost and not progressed:
                    zero_progress_rounds += 1
                    if zero_progress_rounds >= 2:
                        # Nothing survives this environment's pools; let
                        # the serial fallback take the remainder.
                        raise RuntimeError(
                            "process pool made no progress in "
                            f"{zero_progress_rounds} consecutive rounds"
                        )
                else:
                    zero_progress_rounds = 0
                pending = self._requeue_lost(lost, stats, completed)
                if pool_broken:
                    # A broken executor can never serve again — evict it
                    # from the warm cache even when nothing is pending.
                    _warm_pool.discard(pool)
                    if pending:
                        pool = self._new_pool(conversion, len(pending))
                if pending:
                    time.sleep(self.retry_policy.delay(1))
        finally:
            # Keeps the healthy warm pool alive for the next campaign;
            # shuts down anything else (including already-discarded pools —
            # idempotent).
            _warm_pool.release(pool)

    def _requeue_lost(
        self,
        lost: Sequence[_ChunkTask],
        stats: CampaignStats,
        completed: Dict[int, _Outcome],
    ) -> List[_ChunkTask]:
        """Retry, bisect or fail-out the chunks whose workers died."""
        requeued: List[_ChunkTask] = []
        for task in lost:
            attempt = task.attempt + 1
            obs.emit_event(
                "pool_worker_lost",
                chunk=".".join(map(str, task.order)),
                jobs=len(task.jobs),
                attempt=attempt,
            )
            obs.log(
                "warning", "pool worker lost",
                chunk=".".join(map(str, task.order)),
                jobs=len(task.jobs), attempt=attempt,
            )
            if attempt <= self.retry_policy.max_retries:
                stats.retries += 1
                with obs.span(
                    "campaign.retry",
                    chunk=".".join(map(str, task.order)),
                    attempt=attempt,
                    jobs=len(task.jobs),
                ):
                    pass
                requeued.append(
                    _ChunkTask(task.order, task.jobs, attempt=attempt)
                )
            elif len(task.jobs) > 1:
                # Retry budget spent on the whole chunk: bisect to corner
                # the poisoned job while the healthy half still completes.
                middle = len(task.jobs) // 2
                requeued.append(
                    _ChunkTask(task.order + (0,), task.jobs[:middle])
                )
                requeued.append(
                    _ChunkTask(task.order + (1,), task.jobs[middle:])
                )
            else:
                job = task.jobs[0]
                failure = JobFailure(
                    index=job.index,
                    component=job.component,
                    failure_mode=job.failure_mode,
                    exception="BrokenProcessPool",
                    message=(
                        "worker process died repeatedly while executing "
                        "this job"
                    ),
                    kind="worker_lost",
                    retries=task.attempt,
                )
                completed[job.index] = ("failed", failure.to_dict())
        return requeued

    def _effective_workers(
        self, pending_jobs: int, size: Optional[int] = None
    ) -> int:
        """Worker count for this run, given how many jobs remain.

        ``fixed`` honours the requested count, ``serial`` is always one,
        and ``auto`` fans out only past a measured crossover: at/above
        :data:`AUTO_PARALLEL_MIN_JOBS` pending jobs, or — when ``size``
        (the MNA system dimension) is known — whenever the estimated
        solve work ``jobs * size**2`` reaches
        :data:`AUTO_PARALLEL_MIN_COST`.  Below both bounds, measured pool
        start-up cost exceeds the incremental serial solve (see
        BENCH_injection.json).
        """
        if self.strategy == "serial":
            return 1
        if self.strategy == "auto":
            heavy = (
                size is not None
                and pending_jobs >= _AUTO_COST_MIN_JOBS
                and pending_jobs * float(size) ** 2 >= AUTO_PARALLEL_MIN_COST
            )
            if pending_jobs < AUTO_PARALLEL_MIN_JOBS and not heavy:
                return 1
            if self.workers > 1:
                return self.workers
            import os

            return max(1, min(pending_jobs, os.cpu_count() or 1))
        return self.workers

    def _execute(
        self,
        conversion: ElectricalConversion,
        jobs: Sequence[InjectionJob],
        stats: CampaignStats,
        checkpoint: Optional[CampaignCheckpoint] = None,
    ) -> Dict[int, _Outcome]:
        if not jobs:
            return {}
        outcomes: Dict[int, _Outcome] = {}
        remaining: Sequence[InjectionJob] = jobs
        if self.workers > 1:
            try:
                outcomes = self._execute_parallel(
                    conversion, jobs, stats, checkpoint
                )
                remaining = ()
            except _ParallelUnavailable as exc:
                # Degrade to serial — same rows, just without the fan-out.
                # Chunks that did complete in parallel are kept; only the
                # remainder re-runs, so nothing is double-counted.
                stats.parallel_fallback = True
                stats.workers = 1
                outcomes = exc.completed
                remaining = [
                    job for job in jobs if job.index not in outcomes
                ]
        if remaining:
            outcomes.update(
                self._execute_serial(conversion, remaining, stats, checkpoint)
            )
        return outcomes

    # -- classification ---------------------------------------------------

    def _classify(
        self,
        row: FmeaRow,
        outcome: _Outcome,
        baseline: Dict[str, float],
        monitored: Sequence[str],
    ) -> FmeaRow:
        kind, payload = outcome
        if kind == "failed":
            # The harness could not produce a result for this injection.
            # Conservative call: an unknown effect must be assumed
            # dangerous, and the structured failure keeps it visible
            # (result.failures) instead of silently shrinking the FMEA.
            failure: Mapping[str, object] = payload  # type: ignore[assignment]
            row.safety_related = True
            row.impact = "DVF"
            row.effect = (
                f"injection failed ({failure['exception']}): "
                f"{failure['message']}"
            )
            row.warning = (
                f"harness failure after {failure['retries']} retries "
                f"({failure['kind']}); effect assumed dangerous"
            )
            return row
        if kind == "error":
            # A non-convergent injected circuit is itself evidence of a
            # violent disturbance; treat as safety-related and record why.
            row.safety_related = True
            row.effect = f"simulation failed under fault: {payload}"
            row.impact = "DVF"
            return row
        readings: Dict[str, float] = payload  # type: ignore[assignment]
        deltas = {
            name: _relative_delta(
                baseline[name], readings[name], self.min_absolute_delta
            )
            for name in monitored
        }
        row.sensor_deltas = deltas
        worst = max(deltas.values()) if deltas else 0.0
        if worst > self.threshold:
            row.safety_related = True
            row.impact = "DVF"
            # Quantize the ranking key: two sensors whose deltas agree to
            # nine decimals are tied (broken by sensor order), so the pick
            # cannot depend on which solver path produced the solution.
            worst_sensor = max(deltas, key=lambda name: round(deltas[name], 9))
            row.effect = (
                f"reading at {worst_sensor.rsplit('/', 1)[-1]} deviates "
                f"by {worst * 100:.1f}%"
            )
        else:
            row.effect = (
                f"max sensor deviation {worst * 100:.1f}% (< threshold)"
            )
        return row

    # -- the campaign -----------------------------------------------------

    def run(self) -> FmeaResult:
        """Execute the campaign and return the component safety analysis
        model, with :class:`CampaignStats` attached as ``result.stats``.

        With observability enabled the campaign is one ``campaign`` span
        over ``campaign.baseline`` / ``campaign.enumerate`` /
        ``campaign.execute`` (parenting one ``campaign.job`` span per
        executed injection, merged back from pool workers) /
        ``campaign.classify`` phases, and the final counters are published
        as ``campaign_*`` metrics.

        The whole run executes under this campaign's correlation id (when
        one was given): every event, span, log record and pool-worker
        delta it produces carries the id.
        """
        with obs.correlation(self.correlation_id):
            if self.solver_backend is None:
                return self._run_campaign()
            # Campaign-wide backend: the naive/transient/baseline paths
            # solve through module-level functions that read the process
            # default, so pin it for the duration of the run (workers pin
            # their own copy in the pool initializer).
            previous = default_backend()
            set_default_backend(self.solver_backend)
            try:
                return self._run_campaign()
            finally:
                set_default_backend(previous)

    def _run_campaign(self) -> FmeaResult:
        started = time.perf_counter()
        self._pool_reused = False
        # The model/config may have been mutated since the previous run of
        # this campaign object; recompute the fingerprint per run so warm-
        # pool tokens and checkpoint keys always reflect current content.
        self._fingerprint = None
        stats = CampaignStats(
            workers=self.workers,
            requested_workers=self.workers,
            mode="incremental" if self.incremental else "naive",
            strategy=self.strategy,
            analysis=self.analysis,
            solver_backend=self.solver_backend or "auto",
        )

        with obs.span(
            "campaign",
            system=self.model.name,
            mode=stats.mode,
            workers=self.workers,
            analysis=self.analysis,
        ) as campaign_span:
            conversion = to_netlist(self.model)
            self._shared_compiled = None
            baseline_started = time.perf_counter()
            with obs.span("campaign.baseline", analysis=self.analysis):
                if self.analysis == "transient":
                    baseline = _solve_readings_transient(
                        conversion, conversion.netlist, self.t_stop, self.dt
                    )
                elif self.incremental:
                    # Read the healthy baseline off the shared compiled
                    # system: one Newton solve serves both the baseline
                    # readings and the warm start of every serial fault
                    # solve, instead of paying it twice (which is what
                    # used to put tiny incremental campaigns behind
                    # naive ones).
                    self._shared_compiled = _primed_system(
                        conversion.netlist, backend=self.solver_backend
                    )
                    try:
                        baseline = _readings_from_solution(
                            conversion, self._shared_compiled.solve(), None
                        )
                    except CircuitError:
                        baseline = _solve_readings(
                            conversion, conversion.netlist
                        )
                else:
                    baseline = _solve_readings(conversion, conversion.netlist)
            stats.baseline_time = time.perf_counter() - baseline_started
            monitored = _select_sensors(conversion, self.sensors, baseline)

            result = FmeaResult(
                system=self.model.name,
                method="injection",
                baseline_readings={name: baseline[name] for name in monitored},
            )
            with obs.span("campaign.enumerate") as enumerate_span:
                slots, jobs = self._enumerate(conversion, result)
                enumerate_span.set(jobs=len(jobs), rows=len(slots))
            stats.jobs = len(jobs)
            stats.rows = len(slots)

            checkpoint, preloaded = self._open_checkpoint(jobs, stats)
            pending = [job for job in jobs if job.index not in preloaded]
            # The strategy decision happens here, once the *pending* job
            # count is known — resumed jobs cost nothing, so a mostly
            # checkpointed campaign rightly stays serial under `auto`.
            # The MNA dimension feeds the cost-model crossover: large
            # systems justify fan-out with far fewer jobs.
            self.workers = self._effective_workers(
                len(pending), size=system_size(conversion.netlist)
            )
            stats.workers = self.workers
            campaign_span.set(workers=self.workers)
            self._job_wall_times = []
            self._progress_total = stats.jobs
            self._progress_done = len(preloaded)
            self._progress_resumed = len(preloaded)
            self._progress_t0 = time.perf_counter()
            if obs.events_enabled() or obs.logs_enabled():
                fingerprint = self._short_fingerprint()
                obs.emit_event(
                    "campaign_started",
                    system=self.model.name,
                    analysis=self.analysis,
                    jobs=stats.jobs,
                    rows=stats.rows,
                    workers=self.workers,
                    strategy=self.strategy,
                    mode=stats.mode,
                    resumed=len(preloaded),
                    fingerprint=fingerprint,
                )
                obs.log(
                    "info", "campaign started",
                    system=self.model.name, analysis=self.analysis,
                    jobs=stats.jobs, workers=self.workers,
                    fingerprint=fingerprint,
                )
            with obs.span(
                "campaign.execute", jobs=len(pending), resumed=len(preloaded)
            ):
                outcomes = self._execute(conversion, pending, stats, checkpoint)
            outcomes.update(preloaded)
            if self._progress_done < self._progress_total:
                # Jobs that never produced a chunk_completed tick (e.g.
                # bisected-out worker_lost failures written straight into
                # `completed`): one closing event keeps the sequence's
                # final done count equal to stats.jobs.
                self._emit_progress(
                    self._progress_total - self._progress_done
                )
            if checkpoint is not None:
                # Sweep anything the per-chunk/periodic flushes missed
                # (e.g. outcomes produced by the serial fallback tail).
                for job in jobs:
                    if job.index in outcomes:
                        checkpoint.record(job, outcomes[job.index])
                checkpoint.flush()
            with obs.span("campaign.classify", rows=len(slots)):
                for row, job in slots:
                    if job is None:
                        result.rows.append(row)
                        continue
                    outcome = outcomes.get(job.index)
                    if outcome is None:
                        # Defensive: execution must cover every job; a gap
                        # is a harness bug, reported as a failure row
                        # rather than a crash.
                        outcome = (
                            "failed",
                            JobFailure(
                                index=job.index,
                                component=job.component,
                                failure_mode=job.failure_mode,
                                exception="LostOutcome",
                                message="job produced no outcome",
                            ).to_dict(),
                        )
                    if outcome[0] == "failed":
                        result.failures.append(
                            JobFailure.from_dict(outcome[1])
                        )
                    result.rows.append(
                        self._classify(row, outcome, baseline, monitored)
                    )
            stats.job_failures = len(result.failures)
            stats.pool_reused = self._pool_reused
            if not result.rows:
                raise FmeaError(
                    "FMEA produced no rows: no component matched the "
                    "reliability model"
                )
            if self._job_wall_times:
                walls = sorted(self._job_wall_times)
                stats.job_wall_p50 = _percentile(walls, 0.50)
                stats.job_wall_p95 = _percentile(walls, 0.95)
                stats.job_wall_p99 = _percentile(walls, 0.99)
            stats.wall_time = time.perf_counter() - started
            campaign_span.set(
                jobs=stats.jobs,
                rows=stats.rows,
                parallel_fallback=stats.parallel_fallback,
                retries=stats.retries,
                job_failures=stats.job_failures,
                resumed_jobs=stats.resumed_jobs,
            )
        result.stats = stats
        stats.publish()
        if obs.events_enabled() or obs.logs_enabled():
            fingerprint = self._short_fingerprint()
            obs.emit_event(
                "campaign_finished",
                system=self.model.name,
                jobs=stats.jobs,
                rows=stats.rows,
                wall_seconds=stats.wall_time,
                retries=stats.retries,
                job_failures=stats.job_failures,
                pool_reused=stats.pool_reused,
                parallel_fallback=stats.parallel_fallback,
                fingerprint=fingerprint,
            )
            obs.log(
                "info", "campaign finished",
                system=self.model.name, jobs=stats.jobs, rows=stats.rows,
                wall_seconds=round(stats.wall_time, 4),
                job_failures=stats.job_failures, fingerprint=fingerprint,
            )
        return result

    def _open_checkpoint(
        self, jobs: Sequence[InjectionJob], stats: CampaignStats
    ) -> Tuple[Optional[CampaignCheckpoint], Dict[int, _Outcome]]:
        """Set up checkpointing; with ``resume``, load prior outcomes."""
        if self.checkpoint is None:
            return None, {}
        # Same per-run fingerprint as the warm-pool token — one whole-model
        # hash per run keys both the checkpoint file and the pool.
        fingerprint = self._campaign_token()
        checkpoint = CampaignCheckpoint(
            self.checkpoint, fingerprint, resume=self.resume
        )
        if not self.resume:
            return checkpoint, {}
        with obs.span("campaign.resume", path=str(self.checkpoint)) as sp:
            loaded = checkpoint.load()
            preloaded = {
                job.index: loaded[job.index]
                for job in jobs
                if job.index in loaded and checkpoint.job_matches(job)
            }
            stats.resumed_jobs = len(preloaded)
            sp.set(resumed=len(preloaded), recorded=len(loaded))
        return checkpoint, preloaded
