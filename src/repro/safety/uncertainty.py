"""Uncertainty analysis — how robust is the ASIL verdict to the data?

Reliability handbooks give point estimates; real FIT rates and mode
distributions carry substantial uncertainty.  This module propagates that
uncertainty through the architectural metrics by seeded Monte Carlo:

- FIT rates are perturbed log-normally (multiplicative error, the standard
  model for rate data);
- mode distributions are perturbed with a Dirichlet-like renormalised
  jitter (they must stay a partition of the component's failure rate);
- diagnostic coverages are perturbed on the logit side, keeping them in
  (0, 1) and concentrating error where coverage claims are hardest to
  substantiate (near 100 %).

The result is an SPFM sample with quantiles and the *verdict confidence*:
the fraction of samples still meeting the target ASIL.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.safety.fmea import FmeaResult, FmeaRow
from repro.safety.mechanisms import Deployment
from repro.safety.metrics import spfm, spfm_meets


@dataclass
class UncertaintyResult:
    """Monte Carlo SPFM sample plus summary statistics."""

    samples: np.ndarray
    target_asil: str
    confidence: float  # fraction of samples meeting the target

    @property
    def mean(self) -> float:
        return float(np.mean(self.samples))

    def quantile(self, q: float) -> float:
        return float(np.quantile(self.samples, q))

    def interval(self, level: float = 0.90) -> Tuple[float, float]:
        tail = (1.0 - level) / 2.0
        return self.quantile(tail), self.quantile(1.0 - tail)


def _perturb_rows(
    rows: Sequence[FmeaRow],
    rng: np.random.Generator,
    fit_sigma: float,
    distribution_jitter: float,
) -> List[FmeaRow]:
    """One Monte Carlo draw of the FMEA's reliability data."""
    import copy

    # Group rows per component so FIT and distributions perturb coherently.
    by_component: Dict[str, List[FmeaRow]] = {}
    for row in rows:
        by_component.setdefault(row.component, []).append(row)
    out: List[FmeaRow] = []
    for component_rows in by_component.values():
        fit_factor = float(rng.lognormal(mean=0.0, sigma=fit_sigma))
        weights = np.array(
            [max(row.distribution, 1e-9) for row in component_rows]
        )
        if distribution_jitter > 0 and len(weights) > 1:
            noise = rng.lognormal(0.0, distribution_jitter, len(weights))
            weights = weights * noise
        weights = weights / weights.sum() * sum(
            row.distribution for row in component_rows
        )
        for row, weight in zip(component_rows, weights):
            clone = copy.copy(row)
            clone.fit = row.fit * fit_factor
            clone.distribution = float(weight)
            out.append(clone)
    return out


def _perturb_coverage(
    deployment: Deployment, rng: np.random.Generator, logit_sigma: float
) -> Deployment:
    coverage = min(max(deployment.coverage, 1e-9), 1 - 1e-9)
    logit = math.log(coverage / (1.0 - coverage))
    jittered = logit + float(rng.normal(0.0, logit_sigma))
    new_coverage = 1.0 / (1.0 + math.exp(-jittered))
    return Deployment(
        component=deployment.component,
        failure_mode=deployment.failure_mode,
        mechanism=deployment.mechanism,
        coverage=new_coverage,
        cost=deployment.cost,
    )


@dataclass
class TornadoBar:
    """One component's one-at-a-time SPFM sensitivity."""

    component: str
    low: float  # SPFM with the component's FIT scaled down
    high: float  # SPFM with the component's FIT scaled up
    base: float

    @property
    def swing(self) -> float:
        return abs(self.high - self.low)


def tornado_analysis(
    fmea: FmeaResult,
    deployments: Iterable[Deployment] = (),
    scale: float = 1.5,
) -> List[TornadoBar]:
    """One-at-a-time sensitivity: scale each component's FIT by
    ``1/scale`` and ``scale`` and record the SPFM swing.

    Returns bars sorted by decreasing swing — the classic tornado chart
    ordering, telling the analyst whose reliability data to firm up first.
    """
    import copy

    if scale <= 1.0:
        raise ValueError("scale must be > 1")
    deployments = list(deployments)
    base = spfm(fmea, deployments)
    bars: List[TornadoBar] = []
    for component in fmea.components():
        def scaled(factor: float) -> float:
            draw = FmeaResult(system=fmea.system, method=fmea.method)
            for row in fmea.rows:
                clone = copy.copy(row)
                if clone.component == component:
                    clone.fit = row.fit * factor
                draw.rows.append(clone)
            return spfm(draw, deployments)

        bars.append(
            TornadoBar(
                component=component,
                low=scaled(1.0 / scale),
                high=scaled(scale),
                base=base,
            )
        )
    bars.sort(key=lambda bar: -bar.swing)
    return bars


def spfm_uncertainty(
    fmea: FmeaResult,
    deployments: Iterable[Deployment] = (),
    target_asil: str = "ASIL-B",
    samples: int = 2000,
    fit_sigma: float = 0.3,
    distribution_jitter: float = 0.15,
    coverage_logit_sigma: float = 0.5,
    seed: int = 26262,
) -> UncertaintyResult:
    """Monte Carlo propagation of reliability-data uncertainty into SPFM.

    ``fit_sigma`` is the log-normal sigma on FIT rates (0.3 ≈ ±35 % at one
    sigma); ``coverage_logit_sigma`` perturbs mechanism coverages on the
    logit scale (0.5 turns a 99 % claim into roughly 98.3–99.4 % at one
    sigma).
    """
    if samples < 1:
        raise ValueError("samples must be >= 1")
    rng = np.random.default_rng(seed)
    deployments = list(deployments)
    values = np.empty(samples)
    meets = 0
    for index in range(samples):
        draw_rows = _perturb_rows(
            fmea.rows, rng, fit_sigma, distribution_jitter
        )
        draw = FmeaResult(system=fmea.system, method=fmea.method)
        draw.rows = draw_rows
        draw_deployments = [
            _perturb_coverage(d, rng, coverage_logit_sigma)
            for d in deployments
        ]
        value = spfm(draw, draw_deployments)
        values[index] = value
        if spfm_meets(value, target_asil):
            meets += 1
    return UncertaintyResult(
        samples=values,
        target_asil=target_asil,
        confidence=meets / samples,
    )
