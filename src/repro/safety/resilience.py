"""Fault-tolerance primitives for injection campaigns.

The paper's methodology is *iterative*: FME(D)A campaigns re-run on every
design change, so a single pathological injection (singular matrix,
diverging Newton loop, dying pool worker) must not cost the whole run.
This module provides the building blocks the campaign engine composes:

- :class:`JobFailure` — the structured record a job that raises leaves
  behind instead of aborting the campaign;
- :class:`RetryPolicy` — bounded retry with exponential backoff for
  transient failures (broken process pools, LU numerical rejections);
- :func:`job_deadline` — a per-job wall-clock timeout for runaway solves
  (SIGALRM-based; degrades to a no-op off the main thread or on platforms
  without ``setitimer``);
- :class:`CampaignCheckpoint` — append-only JSONL persistence of completed
  job outcomes keyed by a campaign fingerprint, so ``resume`` skips
  finished jobs after a crash — and lets later DECISIVE iterations reuse
  prior results while the model is unchanged;
- :func:`campaign_fingerprint` — a content hash over everything that
  determines job *outcomes* (model, reliability data, analysis mode,
  behaviour overrides).  Classification knobs (threshold, sensor choice)
  are deliberately excluded: outcomes are raw sensor readings, so a resumed
  campaign may re-classify them under new thresholds for free.
"""

from __future__ import annotations

import hashlib
import json
import signal
import threading
from contextlib import contextmanager
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, Iterator, Mapping, Optional, Tuple, Union

import numpy as np

from repro import obs

#: Exception types worth retrying: they can be caused by transient
#: numerical state (warm-start residue in a shared compiled system) or by
#: infrastructure, not by the injected fault itself.
TRANSIENT_ERRORS: Tuple[type, ...] = (np.linalg.LinAlgError, MemoryError)


class JobTimeoutError(Exception):
    """A job exceeded its wall-clock budget (runaway transient solve)."""


@dataclass(frozen=True)
class JobFailure:
    """Structured record of one injection job that could not produce a
    result — the row-level alternative to aborting the campaign.

    ``kind`` is ``exception`` (the job raised), ``timeout`` (it exceeded
    the per-job wall-clock budget) or ``worker_lost`` (its pool worker
    died repeatedly and the job was bisected out).
    """

    index: int
    component: str
    failure_mode: str
    exception: str  # exception class name
    message: str
    kind: str = "exception"
    retries: int = 0

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "JobFailure":
        return cls(
            index=int(data["index"]),
            component=str(data["component"]),
            failure_mode=str(data["failure_mode"]),
            exception=str(data["exception"]),
            message=str(data["message"]),
            kind=str(data.get("kind", "exception")),
            retries=int(data.get("retries", 0)),
        )

    @classmethod
    def from_exception(
        cls, job, exc: BaseException, kind: str = "exception", retries: int = 0
    ) -> "JobFailure":
        obs.log(
            "error", "injection job failed",
            job=job.index, component=job.component, kind=kind,
            error=type(exc).__name__, retries=retries,
        )
        return cls(
            index=job.index,
            component=job.component,
            failure_mode=job.failure_mode,
            exception=type(exc).__name__,
            message=str(exc),
            kind=kind,
            retries=retries,
        )


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff.

    ``delay(attempt)`` is the sleep before retry ``attempt`` (1-based):
    ``backoff``, ``2*backoff``, ``4*backoff``, … capped at ``max_delay``.
    """

    max_retries: int = 2
    backoff: float = 0.05
    max_delay: float = 2.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff < 0:
            raise ValueError("backoff must be >= 0")

    def delay(self, attempt: int) -> float:
        return min(self.backoff * (2 ** max(0, attempt - 1)), self.max_delay)


@contextmanager
def job_deadline(seconds: Optional[float]) -> Iterator[None]:
    """Raise :class:`JobTimeoutError` if the block runs past ``seconds``.

    Uses ``SIGALRM`` + ``setitimer``, so it is only armed on the main
    thread of a process (true for serial campaigns and for pool workers,
    whose chunks execute on the worker's main thread); anywhere else it is
    a no-op rather than a wrong answer.
    """
    if (
        not seconds
        or seconds <= 0
        or not hasattr(signal, "setitimer")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _expired(signum, frame):
        raise JobTimeoutError(f"job exceeded {seconds:g}s wall clock")

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


# -- checkpoint / resume -----------------------------------------------------


def _canonical(value: object) -> object:
    """JSON-stable view of fingerprint inputs (sorted, primitive types)."""
    if isinstance(value, Mapping):
        return {str(k): _canonical(v) for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def campaign_fingerprint(
    model,
    reliability,
    analysis: str,
    t_stop: float,
    dt: float,
    behavior_overrides: Optional[Mapping] = None,
) -> str:
    """Content hash of everything that determines job *outcomes*.

    Two campaigns with equal fingerprints enumerate the same jobs and
    solve the same circuits, so their checkpointed outcomes are mutually
    valid — whatever the execution strategy, worker count or
    classification thresholds.
    """
    payload = {
        "model": _canonical(model.to_dict()),
        "reliability": [
            {
                "class": entry.component_class,
                "fit": entry.fit,
                "modes": [
                    (m.name, m.distribution, m.nature)
                    for m in entry.failure_modes
                ],
            }
            for entry in sorted(
                reliability.entries(), key=lambda e: e.component_class
            )
        ],
        "analysis": analysis,
        "t_stop": t_stop,
        "dt": dt,
        "overrides": _canonical(behavior_overrides or {}),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


#: Checkpointed job outcome: ('ok', readings) or ('error', message).
#: Harness failures ('failed', …) are deliberately *not* persisted — a
#: resumed campaign retries them, which is the point of resuming.
_PERSISTABLE_KINDS = ("ok", "error")


class CheckpointError(Exception):
    """Raised when a checkpoint file cannot be written."""


class CampaignCheckpoint:
    """Append-only JSONL store of completed job outcomes.

    Each line is ``{"v": 1, "fp": <fingerprint>, "index": i, "component":
    ..., "failure_mode": ..., "outcome": [kind, payload]}``.  Loading
    tolerates corrupt or truncated lines (a crash mid-write must not
    poison the next resume) and ignores lines from other fingerprints, so
    one file can accumulate several campaign generations.
    """

    def __init__(
        self,
        path: Union[str, Path],
        fingerprint: str,
        resume: bool = False,
    ) -> None:
        self.path = Path(path)
        self.fingerprint = fingerprint
        self._pending: list = []
        self._seen: set = set()
        if not resume and self.path.exists():
            self.path.unlink()
        if resume and self.path.exists():
            for index in self._iter_lines():
                self._seen.add(index[0])

    # -- reading ----------------------------------------------------------

    def _iter_lines(self):
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except (ValueError, TypeError):
                    continue  # truncated/corrupt line: skip, don't abort
                if (
                    not isinstance(record, dict)
                    or record.get("fp") != self.fingerprint
                    or record.get("outcome") is None
                ):
                    continue
                try:
                    index = int(record["index"])
                    kind, payload = record["outcome"]
                except (KeyError, TypeError, ValueError):
                    continue
                if kind not in _PERSISTABLE_KINDS:
                    continue
                yield index, kind, payload, record

    def load(self) -> Dict[int, Tuple[str, object]]:
        """Completed outcomes recorded under this campaign's fingerprint.

        Later lines win (a job recorded twice keeps its latest outcome).
        """
        if not self.path.exists():
            return {}
        outcomes: Dict[int, Tuple[str, object]] = {}
        self._meta: Dict[int, Tuple[str, str]] = {}
        for index, kind, payload, record in self._iter_lines():
            if kind == "ok" and isinstance(payload, dict):
                payload = {str(k): float(v) for k, v in payload.items()}
            outcomes[index] = (kind, payload)
            self._meta[index] = (
                str(record.get("component", "")),
                str(record.get("failure_mode", "")),
            )
            self._seen.add(index)
        return outcomes

    def job_matches(self, job) -> bool:
        """Does a loaded outcome's identity match this enumerated job?

        Guards against index reuse across incompatible enumerations (the
        fingerprint already makes this near-impossible; the identity check
        makes it impossible).
        """
        meta = getattr(self, "_meta", {}).get(job.index)
        if meta is None:
            return False
        return meta == (job.component, job.failure_mode)

    # -- writing ----------------------------------------------------------

    def record(self, job, outcome: Tuple[str, object]) -> None:
        """Queue one completed outcome for the next :meth:`flush`."""
        kind = outcome[0]
        if kind not in _PERSISTABLE_KINDS or job.index in self._seen:
            return
        self._seen.add(job.index)
        self._pending.append(
            {
                "v": 1,
                "fp": self.fingerprint,
                "index": job.index,
                "component": job.component,
                "failure_mode": job.failure_mode,
                "outcome": [kind, outcome[1]],
            }
        )

    def flush(self) -> int:
        """Append queued records to disk; returns how many were written."""
        if not self._pending:
            return 0
        lines = [
            json.dumps(record, sort_keys=True) for record in self._pending
        ]
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write("\n".join(lines) + "\n")
        except OSError as exc:
            raise CheckpointError(
                f"cannot write campaign checkpoint {self.path}: {exc}"
            ) from exc
        written = len(self._pending)
        self._pending = []
        obs.emit_event(
            "checkpoint_written",
            path=str(self.path),
            written=written,
            recorded=len(self._seen),
        )
        obs.log(
            "debug", "checkpoint flushed",
            path=str(self.path), written=written, recorded=len(self._seen),
        )
        return written
