"""FMEA / FMEDA table rendering.

SAME "always produces an Excel-based FMEA table"; these functions produce
the offline equivalents: :class:`~repro.drivers.table.Sheet` objects (saved
as CSV workbooks) and aligned text tables in Table IV's column layout.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Union

from repro.drivers.table import Sheet, Workbook
from repro.safety.fmea import FmeaResult
from repro.safety.fmeda import FmedaResult


def fmea_to_sheet(result: FmeaResult, sheet_name: str = "FMEA") -> Sheet:
    sheet = Sheet(sheet_name)
    for row in result.rows:
        sheet.append(
            {
                "Component": row.component,
                "FIT": row.fit,
                "Safety_Related": row.safety_related,
                "Failure_Mode": row.failure_mode,
                "Nature": row.nature,
                "Distribution": f"{row.distribution * 100:g}%",
                "Effect": row.effect,
                "Impact": row.impact,
                "Warning": row.warning,
            }
        )
    return sheet


def fmeda_to_sheet(result: FmedaResult, sheet_name: str = "FMEDA") -> Sheet:
    """Table IV's exact schema, one row per (component, failure mode)."""
    sheet = Sheet(sheet_name)
    seen_components = set()
    for row in result.rows:
        first = row.component not in seen_components
        seen_components.add(row.component)
        sheet.append(
            {
                "Component": row.component if first else "",
                "FIT": row.fit if first else "",
                "Safety_Related": "Yes" if row.safety_related else "No",
                "Failure_Mode": row.failure_mode,
                "Distribution": f"{row.distribution * 100:g}%",
                "Safety_Mechanism": row.safety_mechanism or "No SM",
                "SM_Coverage": (
                    f"{row.sm_coverage * 100:g}%" if row.sm_coverage else ""
                ),
                "Single_Point_Failure_Rate": (
                    f"{row.residual_rate:g} FIT" if row.safety_related else ""
                ),
            }
        )
    return sheet


def campaign_stats_sheet(
    result: FmeaResult, sheet_name: str = "Campaign_Stats"
) -> Optional[Sheet]:
    """The campaign's execution instrumentation as a two-column sheet, or
    ``None`` when the result carries no stats (graph/manual FMEA)."""
    stats = getattr(result, "stats", None)
    if stats is None or not hasattr(stats, "to_dict"):
        return None
    sheet = Sheet(sheet_name)
    for key, value in stats.to_dict().items():
        sheet.append({"Statistic": key, "Value": value})
    return sheet


def campaign_failures_sheet(
    result: FmeaResult, sheet_name: str = "Campaign_Failures"
) -> Optional[Sheet]:
    """One row per structured :class:`JobFailure` the campaign isolated,
    or ``None`` when every job produced a result."""
    failures = getattr(result, "failures", None)
    if not failures:
        return None
    sheet = Sheet(sheet_name)
    for failure in failures:
        sheet.append(
            {
                "Job": failure.index,
                "Component": failure.component,
                "Failure_Mode": failure.failure_mode,
                "Kind": failure.kind,
                "Exception": failure.exception,
                "Message": failure.message,
                "Retries": failure.retries,
            }
        )
    return sheet


def iteration_timeline_sheet(
    entries, sheet_name: str = "Iteration_Timeline"
) -> Optional[Sheet]:
    """One row per analysis-ledger entry: the DECISIVE iteration timeline.

    ``entries`` are :class:`repro.obs.ledger.LedgerEntry` objects (duck
    typed — this module stays importable without the obs layer).  Returns
    ``None`` when there is no history to render.
    """
    entries = list(entries or ())
    if not entries:
        return None
    sheet = Sheet(sheet_name)
    previous_spfm: Optional[float] = None
    for entry in entries:
        spfm = getattr(entry, "spfm", None)
        delta = (
            spfm - previous_spfm
            if spfm is not None and previous_spfm is not None
            else None
        )
        config = getattr(entry, "config", {}) or {}
        metrics = getattr(entry, "metrics", {}) or {}
        sheet.append(
            {
                "Seq": getattr(entry, "seq", ""),
                "Entry": getattr(entry, "entry_id", ""),
                "Kind": getattr(entry, "kind", ""),
                "Iteration": config.get("iteration", ""),
                "SPFM": f"{spfm * 100:.2f}%" if spfm is not None else "",
                "SPFM_Delta": (
                    f"{delta * 100:+.2f}%" if delta is not None else ""
                ),
                "ASIL": getattr(entry, "asil", "") or "",
                "Deployments": len(config.get("deployments", []) or []),
                "Rows": len(getattr(entry, "rows", []) or []),
                "Wall_s": metrics.get("wall_time", ""),
                "Model_Digest": (getattr(entry, "model_digest", "") or "")[:12],
                "Git": getattr(entry, "git", ""),
            }
        )
        if spfm is not None:
            previous_spfm = spfm
    return sheet


def save_decisive_workbook(
    result: FmedaResult, entries, location: Union[str, Path]
) -> Path:
    """Save the final FMEDA plus the iteration timeline as one workbook."""
    sheets = [fmeda_to_sheet(result)]
    summary = Sheet("Summary")
    summary.append(
        {
            "System": result.system,
            "SPFM": f"{result.spfm * 100:.2f}%",
            "ASIL": result.asil,
            "Total_SM_Cost": result.total_cost,
        }
    )
    sheets.append(summary)
    timeline = iteration_timeline_sheet(entries)
    if timeline is not None:
        sheets.append(timeline)
    return Workbook(sheets).save(location)


def render_campaign_stats(result: FmeaResult) -> str:
    """The ``--stats`` CLI view of a campaign's instrumentation."""
    sheet = campaign_stats_sheet(result)
    if sheet is None:
        return "(no campaign statistics recorded)"
    return render_text_table(sheet)


def save_fmea_workbook(
    result: FmeaResult, location: Union[str, Path]
) -> Path:
    """Save the FMEA table; workbook-directory saves also carry the
    campaign's execution statistics as a ``Campaign_Stats`` sheet and any
    isolated job failures as a ``Campaign_Failures`` sheet (a single
    ``.csv`` location keeps the historical one-sheet layout)."""
    sheet = fmea_to_sheet(result)
    path = Path(location)
    if path.suffix == ".csv":
        sheet.write_csv(path)
        return path
    sheets = [sheet]
    stats_sheet = campaign_stats_sheet(result)
    if stats_sheet is not None:
        sheets.append(stats_sheet)
    failures_sheet = campaign_failures_sheet(result)
    if failures_sheet is not None:
        sheets.append(failures_sheet)
    return Workbook(sheets).save(location)


def save_fmeda_workbook(
    result: FmedaResult, location: Union[str, Path]
) -> Path:
    sheet = fmeda_to_sheet(result)
    summary = Sheet("Summary")
    summary.append(
        {
            "System": result.system,
            "SPFM": f"{result.spfm * 100:.2f}%",
            "ASIL": result.asil,
            "Total_SM_Cost": result.total_cost,
        }
    )
    path = Path(location)
    if path.suffix == ".csv":
        sheet.write_csv(path)
        return path
    return Workbook([sheet, summary]).save(location)


def render_text_table(sheet: Sheet) -> str:
    """Align a sheet as a monospaced text table."""
    header = sheet.header
    rows: List[List[str]] = [
        [_cell_text(row.get(col)) for col in header] for row in sheet.rows
    ]
    widths = [
        max(len(header[i]), *(len(r[i]) for r in rows)) if rows else len(header[i])
        for i in range(len(header))
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(header, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _cell_text(value: object) -> str:
    if value is None:
        return ""
    if isinstance(value, bool):
        return "Yes" if value else "No"
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)
