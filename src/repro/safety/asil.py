"""HARA — risk assessment and ASIL determination (ISO 26262 part 3).

The risk graph combines Severity (S0–S3), Exposure (E0–E4) and
Controllability (C0–C3) into an ASIL via the standard's Table 4.  SSAM
hazard elements carry these as optional attributes (the metamodel does not
*require* the ISO scheme, to stay generic), and :func:`determine_asil`
evaluates a ``HazardousSituation`` directly.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.metamodel import ModelObject

#: ISO 26262-3 Table 4: (S, E, C) -> ASIL, for S1..S3, E1..E4, C1..C3.
#: Any class 0 parameter means QM (no ASIL assigned).
_RISK_GRAPH: Dict[Tuple[int, int, int], str] = {}


def _build_risk_graph() -> None:
    # The table is additive: level = S + E + C; thresholds per ISO 26262.
    #   sum 7 -> ASIL-A (lowest assigned), 8 -> B, 9 -> C, 10 -> D;
    #   below 7 -> QM.
    for s in range(1, 4):
        for e in range(1, 5):
            for c in range(1, 4):
                total = s + e + c
                if total <= 6:
                    _RISK_GRAPH[(s, e, c)] = "QM"
                elif total == 7:
                    _RISK_GRAPH[(s, e, c)] = "ASIL-A"
                elif total == 8:
                    _RISK_GRAPH[(s, e, c)] = "ASIL-B"
                elif total == 9:
                    _RISK_GRAPH[(s, e, c)] = "ASIL-C"
                else:
                    _RISK_GRAPH[(s, e, c)] = "ASIL-D"


_build_risk_graph()


def risk_graph(severity: str, exposure: str, controllability: str) -> str:
    """ASIL from S/E/C class labels (e.g. ``risk_graph('S3','E4','C3')``)."""
    try:
        s = int(severity[1:])
        e = int(exposure[1:])
        c = int(controllability[1:])
    except (ValueError, IndexError):
        raise ValueError(
            f"malformed S/E/C classes: {severity!r}, {exposure!r}, "
            f"{controllability!r}"
        ) from None
    if not (0 <= s <= 3 and 0 <= e <= 4 and 0 <= c <= 3):
        raise ValueError(
            f"S/E/C classes out of range: {severity}, {exposure}, "
            f"{controllability}"
        )
    if s == 0 or e == 0 or c == 0:
        return "QM"
    return _RISK_GRAPH[(s, e, c)]


def determine_asil(situation: ModelObject) -> str:
    """ASIL of a SSAM ``HazardousSituation`` from its S/E/C attributes."""
    if not situation.is_kind_of("HazardousSituation"):
        raise ValueError(
            f"expected a HazardousSituation, got {situation.metaclass.name!r}"
        )
    return risk_graph(
        situation.get("severity"),
        situation.get("exposure"),
        situation.get("controllability"),
    )
