"""Safety-mechanism catalogues and deployments (DECISIVE Step 4b inputs).

A *safety mechanism model* (paper Table III) lists, per component class and
failure mode, the applicable mechanisms with their diagnostic coverage and
cost::

    Component,Failure_Mode,Safety_Mechanism,Coverage,Cost(hrs)
    MCU,RAM Failure,ECC,99%,2.0

A :class:`Deployment` instantiates a mechanism on a concrete component of
the analysed system.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from repro.drivers.table import Sheet, TableDriver, Workbook


class MechanismError(Exception):
    """Raised for malformed safety-mechanism data."""


@dataclass(frozen=True)
class MechanismSpec:
    """One catalogue entry: a mechanism applicable to (class, failure mode)."""

    component_class: str
    failure_mode: str
    name: str
    coverage: float
    cost: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.coverage <= 1.0:
            raise MechanismError(
                f"mechanism {self.name!r}: coverage {self.coverage} "
                f"outside [0, 1]"
            )
        if self.cost < 0:
            raise MechanismError(f"mechanism {self.name!r}: negative cost")


@dataclass(frozen=True)
class Deployment:
    """A mechanism deployed on a concrete component's failure mode."""

    component: str
    failure_mode: str
    mechanism: str
    coverage: float
    cost: float = 0.0


class SafetyMechanismModel:
    """Catalogue of :class:`MechanismSpec`, indexed by (class, failure mode).

    Class names are matched case-insensitively with the same ``MC``/``MCU``
    synonymy as the reliability model.
    """

    _SYNONYMS = {"mc": "mcu"}

    def __init__(self, specs: Optional[Iterable[MechanismSpec]] = None) -> None:
        self._specs: List[MechanismSpec] = []
        for spec in specs or []:
            self.add(spec)

    @classmethod
    def _class_key(cls, component_class: str) -> str:
        key = component_class.strip().lower()
        return cls._SYNONYMS.get(key, key)

    def add(self, spec: MechanismSpec) -> MechanismSpec:
        self._specs.append(spec)
        return spec

    def specs(self) -> List[MechanismSpec]:
        return list(self._specs)

    def options_for(
        self, component_class: str, failure_mode: str
    ) -> List[MechanismSpec]:
        """Mechanisms applicable to a (class, failure mode) pair."""
        class_key = self._class_key(component_class)
        mode_key = failure_mode.strip().lower()
        return [
            spec
            for spec in self._specs
            if self._class_key(spec.component_class) == class_key
            and spec.failure_mode.strip().lower() == mode_key
        ]

    def best_for(
        self, component_class: str, failure_mode: str
    ) -> Optional[MechanismSpec]:
        """Highest-coverage option (ties broken by lower cost)."""
        options = self.options_for(component_class, failure_mode)
        if not options:
            return None
        return max(options, key=lambda s: (s.coverage, -s.cost))

    def deploy(
        self, component: str, component_class: str, failure_mode: str,
        mechanism: Optional[str] = None,
    ) -> Deployment:
        """Instantiate a catalogue mechanism on a concrete component."""
        options = self.options_for(component_class, failure_mode)
        if mechanism is not None:
            options = [s for s in options if s.name == mechanism]
        if not options:
            raise MechanismError(
                f"no mechanism for {component_class!r}/{failure_mode!r}"
                + (f" named {mechanism!r}" if mechanism else "")
            )
        spec = max(options, key=lambda s: (s.coverage, -s.cost))
        return Deployment(
            component=component,
            failure_mode=failure_mode,
            mechanism=spec.name,
            coverage=spec.coverage,
            cost=spec.cost,
        )

    def __len__(self) -> int:
        return len(self._specs)


def load_mechanism_table(
    location: Union[str, Path], sheet: str = ""
) -> SafetyMechanismModel:
    """Load a Table III-style workbook."""
    driver = TableDriver(location, metadata=sheet)
    rows = driver.elements(sheet or None)
    model = SafetyMechanismModel()
    for index, row in enumerate(rows):
        try:
            coverage = row.get("Coverage", row.get("Cov."))
            if coverage is None:
                raise KeyError("Coverage")
            coverage = float(coverage)
            if coverage > 1.0:
                coverage /= 100.0
            cost_value = row.get("Cost(hrs)", row.get("Cost", 0.0)) or 0.0
            model.add(
                MechanismSpec(
                    component_class=str(row["Component"]),
                    failure_mode=str(row["Failure_Mode"]),
                    name=str(row["Safety_Mechanism"]),
                    coverage=coverage,
                    cost=float(cost_value),
                )
            )
        except KeyError as exc:
            raise MechanismError(
                f"{location} row {index + 1}: missing column {exc}"
            ) from exc
    if len(model) == 0:
        raise MechanismError(f"{location}: no safety mechanisms found")
    return model


def save_mechanism_table(
    model: SafetyMechanismModel, location: Union[str, Path]
) -> Path:
    """Write a catalogue in Table III format."""
    sheet = Sheet(Path(location).stem or "mechanisms")
    for spec in model.specs():
        sheet.append(
            {
                "Component": spec.component_class,
                "Failure_Mode": spec.failure_mode,
                "Safety_Mechanism": spec.name,
                "Coverage": f"{spec.coverage * 100:g}%",
                "Cost(hrs)": spec.cost,
            }
        )
    return Workbook([sheet]).save(location)
