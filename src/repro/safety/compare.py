"""FMEDA comparison — what changed between two DECISIVE iterations.

The iterative process produces a sequence of FMEDAs; reviewers ask "what
did this iteration actually change?".  :func:`compare_fmeda` answers with a
row-level and metric-level delta: new/removed rows, safety-relation flips,
mechanism changes, residual-rate movement and the SPFM/ASIL delta.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.safety.fmeda import FmedaResult, FmedaRow

_Key = Tuple[str, str]


@dataclass
class RowDelta:
    """One (component, failure mode) row's change."""

    component: str
    failure_mode: str
    changes: List[str] = field(default_factory=list)


@dataclass
class FmedaComparison:
    """The full delta between two FMEDAs."""

    before_spfm: float
    after_spfm: float
    before_asil: str
    after_asil: str
    added_rows: List[_Key] = field(default_factory=list)
    removed_rows: List[_Key] = field(default_factory=list)
    changed_rows: List[RowDelta] = field(default_factory=list)
    cost_delta: float = 0.0

    @property
    def spfm_delta(self) -> float:
        return self.after_spfm - self.before_spfm

    @property
    def improved(self) -> bool:
        return self.spfm_delta > 0

    @property
    def unchanged(self) -> bool:
        return (
            not self.added_rows
            and not self.removed_rows
            and not self.changed_rows
            and abs(self.spfm_delta) < 1e-12
        )

    def summary(self) -> str:
        lines = [
            f"SPFM  : {self.before_spfm:.2%} -> {self.after_spfm:.2%} "
            f"({self.spfm_delta:+.2%})",
            f"ASIL  : {self.before_asil} -> {self.after_asil}",
            f"cost  : {self.cost_delta:+g} h",
        ]
        if self.added_rows:
            lines.append(f"added : {self.added_rows}")
        if self.removed_rows:
            lines.append(f"removed: {self.removed_rows}")
        for delta in self.changed_rows:
            lines.append(
                f"changed {delta.component}/{delta.failure_mode}: "
                f"{'; '.join(delta.changes)}"
            )
        return "\n".join(lines)


def _index(result: FmedaResult) -> Dict[_Key, FmedaRow]:
    return {(row.component, row.failure_mode): row for row in result.rows}


def compare_fmeda(before: FmedaResult, after: FmedaResult) -> FmedaComparison:
    """Row- and metric-level delta from ``before`` to ``after``."""
    a, b = _index(before), _index(after)
    comparison = FmedaComparison(
        before_spfm=before.spfm,
        after_spfm=after.spfm,
        before_asil=before.asil,
        after_asil=after.asil,
        added_rows=sorted(b.keys() - a.keys()),
        removed_rows=sorted(a.keys() - b.keys()),
        cost_delta=after.total_cost - before.total_cost,
    )
    for key in sorted(a.keys() & b.keys()):
        old, new = a[key], b[key]
        changes: List[str] = []
        if old.safety_related != new.safety_related:
            changes.append(
                f"safety-related {old.safety_related} -> {new.safety_related}"
            )
        if old.safety_mechanism != new.safety_mechanism:
            changes.append(
                f"mechanism {old.safety_mechanism or '-'} -> "
                f"{new.safety_mechanism or '-'}"
            )
        if abs(old.sm_coverage - new.sm_coverage) > 1e-12:
            changes.append(
                f"coverage {old.sm_coverage:.0%} -> {new.sm_coverage:.0%}"
            )
        if abs(old.residual_rate - new.residual_rate) > 1e-9:
            changes.append(
                f"residual {old.residual_rate:g} -> {new.residual_rate:g} FIT"
            )
        if abs(old.fit - new.fit) > 1e-9:
            changes.append(f"FIT {old.fit:g} -> {new.fit:g}")
        if changes:
            comparison.changed_rows.append(
                RowDelta(key[0], key[1], changes)
            )
    return comparison
