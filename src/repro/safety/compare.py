"""FME(D)A comparison — what changed between two DECISIVE iterations.

The iterative process produces a sequence of FME(D)As; reviewers ask "what
did this iteration actually change?".  :func:`compare_fmeda` answers with a
row-level and metric-level delta: new/removed rows, safety-relation flips,
mechanism changes, residual-rate movement and the SPFM/ASIL delta.
:func:`compare_fmea` is the Step 4a (pre-mechanism) counterpart used by the
iteration observatory (:mod:`repro.obs.history`) to diff ledger entries.

Numeric comparisons are defensive: reconstructed or hand-built results may
carry ``None`` or ``NaN`` metric fields (an uncomputed FIT, a failed
quantification), and a diff must classify those as data changes, never
crash or — worse — report a NaN-to-NaN transition as a change.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.safety.fmea import FmeaResult, FmeaRow
from repro.safety.fmeda import FmedaResult, FmedaRow

_Key = Tuple[str, str]


def _is_nan(value: object) -> bool:
    return isinstance(value, float) and math.isnan(value)


def numeric_changed(
    old: Optional[float], new: Optional[float], tol: float = 1e-12
) -> bool:
    """Did a numeric field change between two runs?

    ``None``/``None`` and ``NaN``/``NaN`` are *unchanged* (the field was
    equally absent both times); ``None`` or ``NaN`` on exactly one side is
    a change; otherwise the values are compared with tolerance ``tol``.
    """
    old_missing = old is None or _is_nan(old)
    new_missing = new is None or _is_nan(new)
    if old_missing or new_missing:
        return old_missing != new_missing
    return abs(float(old) - float(new)) > tol


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if _is_nan(value):
        return "NaN"
    return f"{value:g}"


@dataclass
class RowDelta:
    """One (component, failure mode) row's change."""

    component: str
    failure_mode: str
    changes: List[str] = field(default_factory=list)


@dataclass
class FmedaComparison:
    """The full delta between two FMEDAs."""

    before_spfm: float
    after_spfm: float
    before_asil: str
    after_asil: str
    added_rows: List[_Key] = field(default_factory=list)
    removed_rows: List[_Key] = field(default_factory=list)
    changed_rows: List[RowDelta] = field(default_factory=list)
    cost_delta: float = 0.0

    @property
    def spfm_delta(self) -> float:
        before = self.before_spfm if self.before_spfm is not None else math.nan
        after = self.after_spfm if self.after_spfm is not None else math.nan
        return after - before

    @property
    def improved(self) -> bool:
        return self.spfm_delta > 0

    @property
    def asil_flipped(self) -> bool:
        return self.before_asil != self.after_asil

    @property
    def unchanged(self) -> bool:
        return (
            not self.added_rows
            and not self.removed_rows
            and not self.changed_rows
            and not numeric_changed(self.before_spfm, self.after_spfm)
        )

    def summary(self) -> str:
        lines = [
            f"SPFM  : {_fmt(self.before_spfm)} -> {_fmt(self.after_spfm)} "
            f"({_fmt(self.spfm_delta)})"
            if None in (self.before_spfm, self.after_spfm)
            or _is_nan(self.before_spfm)
            or _is_nan(self.after_spfm)
            else (
                f"SPFM  : {self.before_spfm:.2%} -> {self.after_spfm:.2%} "
                f"({self.spfm_delta:+.2%})"
            ),
            f"ASIL  : {self.before_asil} -> {self.after_asil}",
            f"cost  : {self.cost_delta:+g} h",
        ]
        if self.added_rows:
            lines.append(f"added : {self.added_rows}")
        if self.removed_rows:
            lines.append(f"removed: {self.removed_rows}")
        for delta in self.changed_rows:
            lines.append(
                f"changed {delta.component}/{delta.failure_mode}: "
                f"{'; '.join(delta.changes)}"
            )
        return "\n".join(lines)


@dataclass
class FmeaComparison:
    """Row-level delta between two FMEAs (DECISIVE Step 4a results).

    Unlike :class:`FmedaComparison` there is no intrinsic SPFM here — an
    FMEA's metric depends on which mechanisms are deployed, which is the
    FMEDA's business; callers that track verdicts per run (the analysis
    ledger) carry them alongside.
    """

    added_rows: List[_Key] = field(default_factory=list)
    removed_rows: List[_Key] = field(default_factory=list)
    changed_rows: List[RowDelta] = field(default_factory=list)
    #: Keys whose ``safety_related`` flag flipped False -> True (new
    #: single-point-fault candidates) and True -> False.
    new_safety_related: List[_Key] = field(default_factory=list)
    cleared_safety_related: List[_Key] = field(default_factory=list)

    @property
    def unchanged(self) -> bool:
        return (
            not self.added_rows
            and not self.removed_rows
            and not self.changed_rows
        )

    def summary(self) -> str:
        if self.unchanged:
            return "no row-level changes"
        lines: List[str] = []
        if self.added_rows:
            lines.append(f"added : {self.added_rows}")
        if self.removed_rows:
            lines.append(f"removed: {self.removed_rows}")
        for delta in self.changed_rows:
            lines.append(
                f"changed {delta.component}/{delta.failure_mode}: "
                f"{'; '.join(delta.changes)}"
            )
        return "\n".join(lines)


def _index_fmeda(result: FmedaResult) -> dict:
    return {(row.component, row.failure_mode): row for row in result.rows}


def _index_fmea(result: FmeaResult) -> dict:
    return {(row.component, row.failure_mode): row for row in result.rows}


def compare_fmeda(before: FmedaResult, after: FmedaResult) -> FmedaComparison:
    """Row- and metric-level delta from ``before`` to ``after``."""
    a, b = _index_fmeda(before), _index_fmeda(after)
    comparison = FmedaComparison(
        before_spfm=before.spfm,
        after_spfm=after.spfm,
        before_asil=before.asil,
        after_asil=after.asil,
        added_rows=sorted(b.keys() - a.keys()),
        removed_rows=sorted(a.keys() - b.keys()),
        cost_delta=(after.total_cost or 0.0) - (before.total_cost or 0.0),
    )
    for key in sorted(a.keys() & b.keys()):
        old, new = a[key], b[key]
        changes: List[str] = []
        if old.safety_related != new.safety_related:
            changes.append(
                f"safety-related {old.safety_related} -> {new.safety_related}"
            )
        if (old.safety_mechanism or "") != (new.safety_mechanism or ""):
            changes.append(
                f"mechanism {old.safety_mechanism or '-'} -> "
                f"{new.safety_mechanism or '-'}"
            )
        if numeric_changed(old.sm_coverage, new.sm_coverage):
            changes.append(
                f"coverage {_fmt(old.sm_coverage)} -> {_fmt(new.sm_coverage)}"
            )
        if numeric_changed(old.residual_rate, new.residual_rate, 1e-9):
            changes.append(
                f"residual {_fmt(old.residual_rate)} -> "
                f"{_fmt(new.residual_rate)} FIT"
            )
        if numeric_changed(old.fit, new.fit, 1e-9):
            changes.append(f"FIT {_fmt(old.fit)} -> {_fmt(new.fit)}")
        if changes:
            comparison.changed_rows.append(
                RowDelta(key[0], key[1], changes)
            )
    return comparison


def compare_fmea(before: FmeaResult, after: FmeaResult) -> FmeaComparison:
    """Row-level delta between two FMEA results (Step 4a)."""
    a, b = _index_fmea(before), _index_fmea(after)
    comparison = FmeaComparison(
        added_rows=sorted(b.keys() - a.keys()),
        removed_rows=sorted(a.keys() - b.keys()),
    )
    for key in sorted(a.keys() & b.keys()):
        old, new = a[key], b[key]
        changes: List[str] = []
        if old.safety_related != new.safety_related:
            changes.append(
                f"safety-related {old.safety_related} -> {new.safety_related}"
            )
            if new.safety_related:
                comparison.new_safety_related.append(key)
            else:
                comparison.cleared_safety_related.append(key)
        if (old.impact or "none") != (new.impact or "none"):
            changes.append(f"impact {old.impact} -> {new.impact}")
        if numeric_changed(old.fit, new.fit, 1e-9):
            changes.append(f"FIT {_fmt(old.fit)} -> {_fmt(new.fit)}")
        if numeric_changed(old.distribution, new.distribution, 1e-9):
            changes.append(
                f"distribution {_fmt(old.distribution)} -> "
                f"{_fmt(new.distribution)}"
            )
        if (old.effect or "") != (new.effect or ""):
            changes.append(
                f"effect {old.effect or '-'!r} -> {new.effect or '-'!r}"
            )
        if changes:
            comparison.changed_rows.append(RowDelta(key[0], key[1], changes))
    # Rows appearing/disappearing also move the single-point picture.
    comparison.new_safety_related.extend(
        key for key in comparison.added_rows if b[key].safety_related
    )
    comparison.cleared_safety_related.extend(
        key for key in comparison.removed_rows if a[key].safety_related
    )
    comparison.new_safety_related.sort()
    comparison.cleared_safety_related.sort()
    return comparison


__all__ = [
    "FmeaComparison",
    "FmedaComparison",
    "RowDelta",
    "compare_fmea",
    "compare_fmeda",
    "numeric_changed",
]


def rows_from_payload_fmea(rows) -> List[FmeaRow]:
    """Rebuild :class:`FmeaRow` objects from ledger row payloads."""
    return [
        FmeaRow(
            component=str(row.get("component", "")),
            component_class=str(row.get("component_class", "")),
            fit=row.get("fit"),  # type: ignore[arg-type]
            failure_mode=str(row.get("failure_mode", "")),
            nature=str(row.get("nature", "")),
            distribution=row.get("distribution"),  # type: ignore[arg-type]
            safety_related=bool(row.get("safety_related", False)),
            impact=str(row.get("impact", "none")),
            effect=str(row.get("effect", "")),
            warning=str(row.get("warning", "")),
        )
        for row in rows
    ]


def rows_from_payload_fmeda(rows) -> List[FmedaRow]:
    """Rebuild :class:`FmedaRow` objects from ledger row payloads."""
    return [
        FmedaRow(
            component=str(row.get("component", "")),
            fit=row.get("fit"),  # type: ignore[arg-type]
            safety_related=bool(row.get("safety_related", False)),
            failure_mode=str(row.get("failure_mode", "")),
            distribution=row.get("distribution"),  # type: ignore[arg-type]
            safety_mechanism=str(row.get("safety_mechanism", "") or ""),
            sm_coverage=row.get("sm_coverage", 0.0),  # type: ignore[arg-type]
            residual_rate=row.get("residual_rate", 0.0),  # type: ignore[arg-type]
        )
        for row in rows
    ]
