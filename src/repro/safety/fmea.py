"""FMEA data model and the injection-based analyzer for Simulink models.

The automated FME(D)A on Simulink models follows the paper's Section IV-D1:

1. **Initialise** — simulate the healthy model and record sensor readings;
2. **Iterate components / failure modes** — for every component with
   reliability data, inject each failure mode (via the block library's
   failure behaviours applied to the flattened netlist) and re-simulate;
3. **Compare results** — if any monitored sensor reading deviates from its
   healthy value by more than a threshold, the failure mode is marked
   *safety-related*;
4. **Output** — an :class:`FmeaResult` (the component safety analysis
   model), from which architectural metrics and the Excel-style FMEA table
   are derived.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.circuit import CircuitError, Netlist, Resistor, dc_operating_point
from repro.reliability import ReliabilityModel
from repro.simulink import (
    FailureBehavior,
    SimulinkModel,
    to_netlist,
)
from repro.simulink.electrical import ElectricalConversion

#: Default relative-deviation threshold for "the value differs" (Step 2b).
DEFAULT_THRESHOLD = 0.2

#: Absolute change (in sensor units) below which a reading is considered
#: unchanged, regardless of the relative figure.  Near-zero baselines (e.g.
#: nano-amp leakage through an off switch) would otherwise turn noise-level
#: absolute changes into huge relative deviations.
DEFAULT_MIN_ABSOLUTE_DELTA = 1e-6

_EPSILON = 1e-12


class FmeaError(Exception):
    """Raised for analysis-level failures (no sensors, no reliability data)."""


@dataclass
class FmeaRow:
    """One (component, failure mode) line of an FMEA."""

    component: str
    component_class: str
    fit: float
    failure_mode: str
    nature: str
    distribution: float
    safety_related: bool = False
    effect: str = ""
    impact: str = "none"  # none | DVF | IVF
    sensor_deltas: Dict[str, float] = field(default_factory=dict)
    warning: str = ""

    @property
    def mode_rate(self) -> float:
        """Failure rate of this mode in FIT."""
        return self.fit * self.distribution


@dataclass
class FmeaResult:
    """A component safety analysis model: the output of DECISIVE Step 4a."""

    system: str
    method: str  # 'injection' | 'graph' | 'manual'
    rows: List[FmeaRow] = field(default_factory=list)
    baseline_readings: Dict[str, float] = field(default_factory=dict)
    uncovered: List[str] = field(default_factory=list)
    #: Why each uncovered component could not be analysed (component name
    #: -> reason).  Diagnostic only, excluded from equality.
    uncovered_reasons: Dict[str, str] = field(
        default_factory=dict, compare=False, repr=False
    )
    #: Structured :class:`repro.safety.resilience.JobFailure` records for
    #: injection jobs that could not produce a result (the campaign keeps
    #: running; the corresponding rows are conservatively classified).
    #: Execution diagnostics, excluded from equality like ``stats``.
    failures: List[object] = field(
        default_factory=list, compare=False, repr=False
    )
    #: Execution instrumentation (a :class:`repro.safety.campaign.CampaignStats`
    #: for injection campaigns); excluded from equality — two analyses that
    #: agree row-for-row are the same result however they were computed.
    stats: Optional[object] = field(default=None, compare=False, repr=False)

    def components(self) -> List[str]:
        seen: Dict[str, None] = {}
        for row in self.rows:
            seen.setdefault(row.component)
        return list(seen)

    def safety_related_components(self) -> List[str]:
        seen: Dict[str, None] = {}
        for row in self.rows:
            if row.safety_related:
                seen.setdefault(row.component)
        return list(seen)

    def safety_related_rows(self) -> List[FmeaRow]:
        return [row for row in self.rows if row.safety_related]

    def rows_for(self, component: str) -> List[FmeaRow]:
        return [row for row in self.rows if row.component == component]

    def row(self, component: str, failure_mode: str) -> FmeaRow:
        for candidate in self.rows:
            if (
                candidate.component == component
                and candidate.failure_mode == failure_mode
            ):
                return candidate
        raise FmeaError(
            f"no FMEA row for {component!r} / {failure_mode!r}"
        )

    def component_fit(self, component: str) -> float:
        rows = self.rows_for(component)
        if not rows:
            raise FmeaError(f"no FMEA rows for component {component!r}")
        return rows[0].fit

    def coverage_ratio(self) -> float:
        """Fraction of analysed components among analysed + uncovered (RQ2)."""
        analysed = len(self.components())
        total = analysed + len(self.uncovered)
        return 1.0 if total == 0 else analysed / total

    def failed_rows(self) -> List[FmeaRow]:
        """Rows whose injection job ended as a harness failure."""
        failed = {(f.component, f.failure_mode) for f in self.failures}
        return [
            row
            for row in self.rows
            if (row.component, row.failure_mode) in failed
        ]


def _relative_delta(
    baseline: float,
    observed: float,
    min_absolute: float = DEFAULT_MIN_ABSOLUTE_DELTA,
) -> float:
    difference = abs(observed - baseline)
    if difference < min_absolute:
        return 0.0
    if abs(baseline) < _EPSILON:
        return float("inf")
    return difference / abs(baseline)


def _behavior_replacement(
    netlist: Netlist,
    element_name: str,
    behavior: FailureBehavior,
    block_params: Dict[str, object],
):
    """The replacement element one failure behaviour maps to.

    Returns ``None`` for an *open* failure (the element is removed).  This
    is the single source of the failure physics — both the netlist-copy
    path (:func:`_apply_behavior`) and the incremental campaign path
    (:meth:`repro.circuit.CompiledSystem.solve_replacement`) consume it.
    """
    if behavior.kind == "open":
        netlist.element(element_name)  # raise early if missing
        return None
    if behavior.kind == "short":
        resistance = behavior.resistance or 1e-3
        original = netlist.element(element_name)
        return Resistor(
            element_name, original.node_pos, original.node_neg, resistance
        )
    if behavior.kind == "resistive":
        resistance = behavior.resistance
        if resistance is None:
            resistance = float(block_params.get("standby_resistance", 1e4))
        original = netlist.element(element_name)
        return Resistor(
            element_name, original.node_pos, original.node_neg, resistance
        )
    if behavior.kind == "param":
        original = netlist.element(element_name)
        parameter = behavior.parameter or "resistance"
        current = getattr(original, parameter, None)
        if current is None:
            raise FmeaError(
                f"element {element_name!r} has no parameter {parameter!r}"
            )
        value = behavior.value if behavior.value is not None else current * 2.0
        return replace(original, **{parameter: value})
    raise FmeaError(f"unknown failure behaviour kind {behavior.kind!r}")


def _apply_behavior(
    netlist: Netlist,
    element_name: str,
    behavior: FailureBehavior,
    block_params: Dict[str, object],
) -> Netlist:
    """Apply one failure behaviour to a copy of the netlist."""
    replacement = _behavior_replacement(
        netlist, element_name, behavior, block_params
    )
    if replacement is None:
        return netlist.without(element_name)
    return netlist.with_replacement(element_name, replacement)


def run_simulink_fmea(
    model: SimulinkModel,
    reliability: ReliabilityModel,
    sensors: Optional[Sequence[str]] = None,
    threshold: float = DEFAULT_THRESHOLD,
    assume_stable: Iterable[str] = (),
    min_absolute_delta: float = DEFAULT_MIN_ABSOLUTE_DELTA,
    behavior_overrides: Optional[
        Dict[Tuple[str, str], FailureBehavior]
    ] = None,
    analysis: str = "dc",
    t_stop: float = 5e-3,
    dt: float = 5e-5,
    incremental: bool = True,
    workers: int = 1,
    strategy: str = "fixed",
    max_retries: int = 2,
    retry_backoff: float = 0.05,
    job_timeout: Optional[float] = None,
    checkpoint: Optional[object] = None,
    resume: bool = False,
    solver_backend: Optional[str] = None,
) -> FmeaResult:
    """Automated FMEA by fault injection on a Simulink model.

    Parameters
    ----------
    model:
        the system design (DECISIVE Step 2 artefact);
    reliability:
        the component reliability model (Step 3 artefact);
    sensors:
        sensor block names whose readings define the safety goal; all
        current/voltage sensors are monitored when omitted;
    threshold:
        relative deviation above which a reading "differs" (Step 2b);
    assume_stable:
        block names excluded from injection (the case study assumes DC1
        stable, excluding over/under-voltage from scope);
    behavior_overrides:
        ``(component class, failure mode) -> FailureBehavior`` replacing
        the block library's failure physics — used by what-if and ablation
        studies (e.g. hard vs leaky capacitor shorts);
    analysis:
        ``"dc"`` (operating point, the default) or ``"transient"``
        (backward-Euler run over ``t_stop``/``dt``, comparing the settled
        sensor values — the right mode when reactive elements shape the
        healthy reading);
    incremental:
        solve DC injections through a shared compiled MNA system (cached LU
        factorization + low-rank updates) instead of per-mode full
        re-assembly; rows are identical either way;
    workers:
        worker processes for the injection campaign (``1``: serial);
    strategy:
        ``"fixed"`` (use ``workers`` as given), ``"serial"``, or
        ``"auto"`` — pick serial incremental execution below the measured
        parallel break-even job count, fan out above it;
    max_retries / retry_backoff / job_timeout / checkpoint / resume:
        fault-tolerance controls — bounded retry with exponential backoff,
        per-job wall-clock budgets, and checkpoint–resume of completed job
        outcomes; see :class:`repro.safety.campaign.FaultInjectionCampaign`;
    solver_backend:
        linear-solver engine for every MNA solve — ``"dense"``,
        ``"sparse"`` or ``"auto"`` (``None``: process default).

    The function delegates to
    :class:`repro.safety.campaign.FaultInjectionCampaign`; campaign timing
    and solve statistics are attached to the result as ``result.stats``,
    and harness-level job failures (if any) as ``result.failures``.
    """
    from repro.safety.campaign import FaultInjectionCampaign

    return FaultInjectionCampaign(
        model,
        reliability,
        sensors=sensors,
        threshold=threshold,
        assume_stable=assume_stable,
        min_absolute_delta=min_absolute_delta,
        behavior_overrides=behavior_overrides,
        analysis=analysis,
        t_stop=t_stop,
        dt=dt,
        incremental=incremental,
        workers=workers,
        strategy=strategy,
        max_retries=max_retries,
        retry_backoff=retry_backoff,
        job_timeout=job_timeout,
        checkpoint=checkpoint,
        resume=resume,
        solver_backend=solver_backend,
    ).run()


def _select_sensors(
    conversion: ElectricalConversion,
    sensors: Optional[Sequence[str]],
    baseline: Dict[str, float],
) -> List[str]:
    all_sensors = list(conversion.current_sensors) + list(
        conversion.voltage_sensors
    )
    if not all_sensors:
        raise FmeaError(
            "model has no current or voltage sensors to compare readings at"
        )
    if sensors is None:
        return all_sensors
    chosen: List[str] = []
    for requested in sensors:
        matches = [
            path
            for path in all_sensors
            if path == requested or path.rsplit("/", 1)[-1] == requested
        ]
        if not matches:
            raise FmeaError(f"no sensor named {requested!r}")
        chosen.extend(matches)
    return chosen


def _solve_readings(
    conversion: ElectricalConversion, netlist: Netlist
) -> Dict[str, float]:
    solution = dc_operating_point(netlist)
    readings: Dict[str, float] = {}
    for path, element in conversion.current_sensors.items():
        if element in netlist:
            readings[path] = solution.current(element)
        else:
            readings[path] = 0.0
    for path, (npos, nneg) in conversion.voltage_sensors.items():
        try:
            readings[path] = solution.voltage_across(npos, nneg)
        except CircuitError:
            readings[path] = 0.0
    return readings


def _settled_mean(series, tail_fraction: float = 0.2) -> float:
    if len(series) < 2:
        raise FmeaError(
            f"transient run produced {len(series)} sample(s); cannot take a "
            f"settled mean — check t_stop/dt"
        )
    tail = series[max(1, int(len(series) * (1 - tail_fraction))) - 1 :]
    return sum(tail) / len(tail)


def _solve_readings_transient(
    conversion: ElectricalConversion,
    netlist: Netlist,
    t_stop: float,
    dt: float,
) -> Dict[str, float]:
    """Sensor readings from a transient run (mean of the settled tail).

    The paper's ``simulate()`` on a dynamic circuit is a transient
    simulation; the comparison quantity is the settled sensor value, which
    the backward-Euler run approaches from zero state.
    """
    from repro.circuit import transient

    result = transient(netlist, t_stop, dt)
    readings: Dict[str, float] = {}
    for path, element in conversion.current_sensors.items():
        if element in netlist:
            readings[path] = _settled_mean(result.current(element))
        else:
            readings[path] = 0.0
    for path, (npos, nneg) in conversion.voltage_sensors.items():
        try:
            pos = result.voltage(npos)
            neg = result.voltage(nneg)
            readings[path] = _settled_mean(
                [a - b for a, b in zip(pos, neg)]
            )
        except CircuitError:
            readings[path] = 0.0
    return readings
