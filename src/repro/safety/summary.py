"""The safety summary report — one markdown document per DECISIVE campaign.

Certification packages want one narrative artefact tying everything
together; :func:`write_safety_report` renders it from the campaign's
objects: the hazard/requirement context, the FMEDA table, the
architectural metrics against their targets, the deployed mechanisms with
costs, and (optionally) the Monte-Carlo robustness of the verdict.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from repro.safety.fmeda import FmedaResult
from repro.safety.metrics import ASIL_PMHF_TARGETS, ASIL_SPFM_TARGETS
from repro.safety.uncertainty import UncertaintyResult


def _fmeda_markdown_table(fmeda: FmedaResult) -> str:
    header = (
        "| Component | FIT | SR | Failure mode | Dist | Mechanism | "
        "Coverage | Residual |\n"
        "|---|---|---|---|---|---|---|---|"
    )
    lines = [header]
    seen = set()
    for row in fmeda.rows:
        first = row.component not in seen
        seen.add(row.component)
        lines.append(
            "| {component} | {fit} | {sr} | {mode} | {dist:.0%} | "
            "{mechanism} | {coverage} | {residual} |".format(
                component=row.component if first else "",
                fit=f"{row.fit:g}" if first else "",
                sr="yes" if row.safety_related else "no",
                mode=row.failure_mode,
                dist=row.distribution,
                mechanism=row.safety_mechanism or "-",
                coverage=f"{row.sm_coverage:.0%}" if row.sm_coverage else "-",
                residual=(
                    f"{row.residual_rate:g} FIT" if row.safety_related else "-"
                ),
            )
        )
    return "\n".join(lines)


def render_safety_report(
    fmeda: FmedaResult,
    target_asil: str = "ASIL-B",
    hazards: Optional[list] = None,
    requirements: Optional[list] = None,
    uncertainty: Optional[UncertaintyResult] = None,
) -> str:
    """The report as markdown text."""
    spfm_target = ASIL_SPFM_TARGETS.get(target_asil, 0.0)
    meets_spfm = fmeda.spfm >= spfm_target
    lines = [
        f"# Safety summary — {fmeda.system}",
        "",
        f"Target integrity level: **{target_asil}**",
        "",
        "## Context",
        "",
        f"- hazards under consideration: "
        f"{', '.join(hazards) if hazards else '-'}",
        f"- top-level safety requirements: "
        f"{', '.join(requirements) if requirements else '-'}",
        "",
        "## Architectural metrics",
        "",
        f"| Metric | Value | Target ({target_asil}) | Verdict |",
        "|---|---|---|---|",
        f"| SPFM | {fmeda.spfm:.2%} | >= {spfm_target:.0%} | "
        f"{'PASS' if meets_spfm else 'FAIL'} |",
    ]
    pmhf_target = ASIL_PMHF_TARGETS.get(target_asil)
    if fmeda.rows:
        # PMHF from the FMEDA's own rows (residuals already folded in).
        residual = sum(
            row.residual_rate for row in fmeda.rows if row.safety_related
        )
        pmhf_value = residual * 1e-9
        verdict = (
            "PASS"
            if (pmhf_target is None or pmhf_value <= pmhf_target)
            else "FAIL"
        )
        target_text = (
            f"<= {pmhf_target:.0e}/h" if pmhf_target is not None else "n/a"
        )
        lines.append(
            f"| PMHF | {pmhf_value:.2e}/h | {target_text} | {verdict} |"
        )
    lines += [
        "",
        f"Achieved integrity level: **{fmeda.asil}**",
        "",
        "## Deployed safety mechanisms",
        "",
    ]
    if fmeda.deployments:
        lines.append("| Component | Failure mode | Mechanism | Coverage | Cost |")
        lines.append("|---|---|---|---|---|")
        for deployment in fmeda.deployments:
            lines.append(
                f"| {deployment.component} | {deployment.failure_mode} | "
                f"{deployment.mechanism} | {deployment.coverage:.0%} | "
                f"{deployment.cost:g} h |"
            )
        lines.append("")
        lines.append(f"Total mechanism cost: **{fmeda.total_cost:g} h**")
    else:
        lines.append("None deployed.")
    lines += ["", "## FMEDA", "", _fmeda_markdown_table(fmeda)]
    if uncertainty is not None:
        low, high = uncertainty.interval(0.90)
        lines += [
            "",
            "## Verdict robustness (Monte Carlo)",
            "",
            f"- SPFM mean {uncertainty.mean:.2%}, "
            f"90 % interval [{low:.2%}, {high:.2%}]",
            f"- probability the {uncertainty.target_asil} verdict holds "
            f"under data uncertainty: **{uncertainty.confidence:.0%}**",
        ]
    lines.append("")
    return "\n".join(lines)


def write_safety_report(
    location: Union[str, Path],
    fmeda: FmedaResult,
    target_asil: str = "ASIL-B",
    hazards: Optional[list] = None,
    requirements: Optional[list] = None,
    uncertainty: Optional[UncertaintyResult] = None,
) -> Path:
    """Render and write the report; returns the path."""
    path = Path(location)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        render_safety_report(
            fmeda, target_asil, hazards, requirements, uncertainty
        ),
        encoding="utf-8",
    )
    return path
