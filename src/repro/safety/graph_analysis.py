"""Algorithm 1 — graph-based single-point-failure determination for SSAM.

The paper's Algorithm 1, for a composite ``Component`` under analysis:

1. collect all possible paths between the input and the output boundary of
   the composite (we build a digraph whose nodes are the subcomponents;
   relationships whose source is the composite itself anchor the virtual
   input, relationships whose target is the composite anchor the output);
2. for each subcomponent and each of its failure modes: if the mode's
   nature is *loss of function or similar* (``PATH_BREAKING_NATURES``) and
   the subcomponent lies on **all** input→output paths, the mode is a
   single-point failure and is marked safety-related;
3. failure modes of other natures receive a warning (line 11 of the
   algorithm) — the static path argument cannot classify them;
4. the algorithm recurses into composite subcomponents (line 14).

Two refinements from the paper's tool description are honoured:

- a failure mode's ``affectedComponents`` citations widen the check: the
  mode is a single point failure if *any* affected component (or the owner)
  blocks every path;
- a redundant ``Function`` tolerance (1oo2/1oo3/2oo3) on a subcomponent
  exempts it: a replicated function is by definition not single-point.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

import networkx as nx

from repro import obs
from repro.metamodel import ModelObject
from repro.reliability import ReliabilityModel
from repro.ssam.architecture import PATH_BREAKING_NATURES
from repro.ssam.base import text_of
from repro.safety.fmea import FmeaError, FmeaResult, FmeaRow

#: Path-enumeration cap for the *legacy* intersection
#: (:func:`_path_intersection`).  The analysis itself runs on dominator
#: trees (:func:`_dominator_intersection`) — exact and near-linear, so no
#: cap is ever hit; the enumeration survives only as the independent
#: cross-check used by the equivalence tests.
_MAX_PATHS = 10000


def _component_graph(composite: ModelObject) -> nx.DiGraph:
    graph = nx.DiGraph()
    graph.add_node("__IN__")
    graph.add_node("__OUT__")
    for sub in composite.get("subcomponents"):
        graph.add_node(sub.uid)
    for rel in composite.get("relationships"):
        source = rel.get("source")
        target = rel.get("target")
        src_key = "__IN__" if source is composite else source.uid
        dst_key = "__OUT__" if target is composite else target.uid
        if src_key == "__IN__" and dst_key == "__OUT__":
            continue
        graph.add_edge(src_key, dst_key)
    return graph


def _on_all_paths(graph: nx.DiGraph, candidates: Set[str]) -> bool:
    """True if removing ``candidates`` disconnects __IN__ from __OUT__.

    For a singleton candidate this is exactly "c exists in all paths"; for a
    candidate *set* (the owner plus its cited ``affectedComponents``, which
    the failure takes down together) it is the joint-cut criterion — the
    physically correct reading: the mode is single-point when the combined
    outage breaks every path.

    One DFS over the non-candidate nodes — no per-check ``graph.copy()``,
    so a joint-candidate check costs O(V + E) allocation-free traversal.
    """
    if obs.enabled():
        obs.counter("graph_joint_cut_checks").inc()
    if not nx.has_path(graph, "__IN__", "__OUT__"):
        return False
    blocked = set(candidates) - {"__IN__", "__OUT__"}
    seen = {"__IN__"}
    stack = ["__IN__"]
    while stack:
        node = stack.pop()
        for successor in graph.successors(node):
            if successor == "__OUT__":
                return False  # a candidate-free path survives
            if successor in blocked or successor in seen:
                continue
            seen.add(successor)
            stack.append(successor)
    return True


def _dominator_intersection(graph: nx.DiGraph) -> Set[str]:
    """Nodes common to *all* __IN__ → __OUT__ paths, via dominator trees.

    A node lies on every path from the input to the output boundary iff it
    dominates ``__OUT__`` in the flow graph rooted at ``__IN__`` — walking
    the immediate-dominator chain up from ``__OUT__`` yields exactly the
    path intersection, in near-linear time and with no enumeration cap.
    The reverse-graph dominators of ``__IN__`` (rooted at ``__OUT__``)
    characterise the same set; intersecting the two chains costs nothing
    and guards the classification against either traversal's edge cases.
    """
    if not graph.has_node("__OUT__") or not nx.has_path(
        graph, "__IN__", "__OUT__"
    ):
        return set()
    idom = nx.immediate_dominators(graph, "__IN__")
    forward: Set[str] = set()
    node = "__OUT__"
    while node != "__IN__":
        node = idom[node]
        if node != "__IN__":
            forward.add(node)
    reverse_idom = nx.immediate_dominators(
        graph.reverse(copy=False), "__OUT__"
    )
    backward: Set[str] = set()
    node = "__IN__"
    while node != "__OUT__":
        node = reverse_idom[node]
        if node != "__OUT__":
            backward.add(node)
    return forward & backward


def _path_intersection(graph: nx.DiGraph) -> Optional[Set[str]]:
    """Nodes common to *all* __IN__→__OUT__ paths, or ``None`` when path
    enumeration exceeds the cap (callers then fall back to cut checks).

    Computed once per composite, this makes the dominant singleton-candidate
    case O(1) per failure mode instead of one graph copy each.
    """
    intersection: Optional[Set[str]] = None
    for index, path in enumerate(nx.all_simple_paths(graph, "__IN__", "__OUT__")):
        if index >= _MAX_PATHS:
            return None
        nodes = set(path) - {"__IN__", "__OUT__"}
        intersection = nodes if intersection is None else intersection & nodes
        if not intersection:
            return set()
    return intersection if intersection is not None else set()


def _has_redundant_function(component: ModelObject) -> bool:
    return any(
        func.get("tolerance") != "1oo1" for func in component.get("functions")
    )


def _component_fit(component: ModelObject, reliability: Optional[ReliabilityModel]) -> float:
    fit = component.get("fit") or 0.0
    if fit == 0.0 and reliability is not None:
        entry = reliability.get(component.get("componentClass") or text_of(component))
        if entry is not None:
            fit = entry.fit
    return float(fit)


def _analyze_level(
    composite: ModelObject,
    reliability: Optional[ReliabilityModel],
    result: FmeaResult,
    mark_model: bool,
) -> None:
    subcomponents = composite.get("subcomponents")
    if not subcomponents:
        return
    graph = _component_graph(composite)
    has_boundary = graph.out_degree("__IN__") > 0 and graph.in_degree("__OUT__") > 0
    intersection = _dominator_intersection(graph) if has_boundary else set()

    for sub in subcomponents:
        name = text_of(sub) or sub.get("id")
        fit = _component_fit(sub, reliability)
        modes = list(sub.get("failureModes"))
        if not modes and reliability is not None:
            entry = reliability.get(sub.get("componentClass") or name)
            if entry is None and not sub.get("subcomponents"):
                result.uncovered.append(name)
        redundant = _has_redundant_function(sub)
        for mode in modes:
            row = FmeaRow(
                component=name,
                component_class=sub.get("componentClass") or name,
                fit=fit,
                failure_mode=text_of(mode) or mode.get("id"),
                nature=mode.get("nature"),
                distribution=float(mode.get("distribution") or 0.0),
            )
            if mode.get("nature") in PATH_BREAKING_NATURES:
                if not has_boundary:
                    row.warning = (
                        "composite has no input/output boundary relationships; "
                        "path analysis skipped"
                    )
                elif redundant:
                    row.effect = "function is redundant (tolerance != 1oo1)"
                else:
                    candidates = {sub.uid}
                    for affected in mode.get("affectedComponents"):
                        candidates.add(affected.uid)
                    if len(candidates) == 1:
                        single_point = sub.uid in intersection
                    else:
                        single_point = _on_all_paths(graph, candidates)
                    if single_point:
                        row.safety_related = True
                        row.impact = "DVF"
                        row.effect = (
                            "component lies on all input-output paths; "
                            "loss of function breaks every path"
                        )
                        if mark_model:
                            mode.set("safetyRelated", True)
                            sub.set("safetyRelated", True)
                    else:
                        row.effect = "alternative paths exist"
            else:
                row.warning = (
                    f"nature {mode.get('nature')!r} is not loss-of-function-"
                    f"like; static path analysis cannot classify it"
                )
            result.rows.append(row)
        # Line 14: repeat this algorithm for c.
        _analyze_level(sub, reliability, result, mark_model)


def run_ssam_fmea(
    composite: ModelObject,
    reliability: Optional[ReliabilityModel] = None,
    mark_model: bool = True,
) -> FmeaResult:
    """Run Algorithm 1 on a composite SSAM ``Component``.

    When ``mark_model`` is set, safety-related flags are written back into
    the SSAM model (``FailureMode.safetyRelated`` / ``Component.safetyRelated``),
    which is what SAME's context-menu FMEA does.
    """
    if not composite.is_kind_of("Component"):
        raise FmeaError(
            f"expected a Component, got {composite.metaclass.name!r}"
        )
    result = FmeaResult(
        system=text_of(composite) or composite.get("id"),
        method="graph",
    )
    _analyze_level(composite, reliability, result, mark_model)
    if not result.rows:
        raise FmeaError(
            f"component {result.system!r} has no subcomponent failure modes "
            f"to analyse"
        )
    return result
