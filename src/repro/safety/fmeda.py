"""FMEDA — Failure Modes, Effects and Diagnostic Analysis (Step 5 of FMEA).

Takes an FMEA result plus deployed safety mechanisms and produces the
Table IV-style FMEDA: per (component, failure mode) the safety relation,
distribution, deployed mechanism, its coverage, and per component the
residual single-point failure rate; plus the architecture metrics (SPFM)
and the achieved ASIL.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.safety.fmea import FmeaResult
from repro.safety.mechanisms import Deployment
from repro.safety.metrics import asil_from_spfm, single_point_rates, spfm


@dataclass
class FmedaRow:
    """One FMEDA line (Table IV schema)."""

    component: str
    fit: float
    safety_related: bool
    failure_mode: str
    distribution: float
    safety_mechanism: str = ""
    sm_coverage: float = 0.0
    residual_rate: float = 0.0  # FIT contributed to single point faults

    @property
    def mode_rate(self) -> float:
        return self.fit * self.distribution


@dataclass
class FmedaResult:
    """Complete FMEDA: rows, metrics and achieved integrity level."""

    system: str
    rows: List[FmedaRow] = field(default_factory=list)
    deployments: List[Deployment] = field(default_factory=list)
    spfm: float = 0.0
    asil: str = "QM"
    total_cost: float = 0.0

    def rows_for(self, component: str) -> List[FmedaRow]:
        return [row for row in self.rows if row.component == component]

    def safety_related_components(self) -> List[str]:
        seen: Dict[str, None] = {}
        for row in self.rows:
            if row.safety_related:
                seen.setdefault(row.component)
        return list(seen)

    def single_point_rate(self, component: str) -> float:
        """Residual single-point failure rate of one component, in FIT."""
        return sum(
            row.residual_rate for row in self.rows_for(component)
        )

    @property
    def diagnostic_coverage(self) -> float:
        """Fraction of the safety-related failure rate that deployed
        mechanisms diagnose: ``1 - residual / safety-related rate``.  A
        design with no safety-related modes is fully covered by vacuity."""
        dangerous = sum(
            row.mode_rate for row in self.rows if row.safety_related
        )
        if dangerous <= 0.0:
            return 1.0
        residual = sum(
            row.residual_rate for row in self.rows if row.safety_related
        )
        return 1.0 - residual / dangerous

    def meets(self, asil: str) -> bool:
        from repro.safety.metrics import spfm_meets

        return spfm_meets(self.spfm, asil)


def run_fmeda(
    fmea: FmeaResult,
    deployments: Iterable[Deployment] = (),
) -> FmedaResult:
    """Derive the FMEDA from an FMEA result and a set of deployments.

    Deployments that reference (component, failure mode) pairs absent from
    the FMEA are ignored — enumerating hypothetical mechanisms over a
    catalogue is exactly how Step 4b explores designs, so unused catalogue
    entries are not an error.
    """
    deployments = list(deployments)
    names_by_key: Dict[Tuple[str, str], List[str]] = {}
    residual_by_key: Dict[Tuple[str, str], float] = {}
    applied: List[Deployment] = []
    fmea_keys = {(row.component, row.failure_mode) for row in fmea.rows}
    for deployment in deployments:
        key = (deployment.component, deployment.failure_mode)
        if key not in fmea_keys:
            continue
        applied.append(deployment)
        names_by_key.setdefault(key, []).append(deployment.mechanism)
        residual_by_key[key] = residual_by_key.get(key, 1.0) * (
            1.0 - deployment.coverage
        )

    result = FmedaResult(system=fmea.system, deployments=applied)
    residuals = single_point_rates(fmea, applied)
    # Track how much of each component's residual is attributed per row.
    for row in fmea.rows:
        key = (row.component, row.failure_mode)
        coverage = 1.0 - residual_by_key.get(key, 1.0)
        residual = row.mode_rate * (1.0 - coverage) if row.safety_related else 0.0
        result.rows.append(
            FmedaRow(
                component=row.component,
                fit=row.fit,
                safety_related=row.safety_related,
                failure_mode=row.failure_mode,
                distribution=row.distribution,
                safety_mechanism="+".join(names_by_key.get(key, [])),
                sm_coverage=coverage,
                residual_rate=residual,
            )
        )
    result.spfm = spfm(fmea, applied)
    result.asil = asil_from_spfm(result.spfm)
    result.total_cost = sum(d.cost for d in applied)
    # Consistency: per-row residuals must reproduce the metric's rates.
    for component, expected in residuals.items():
        actual = result.single_point_rate(component)
        assert abs(actual - expected) < 1e-9, (
            f"residual bookkeeping diverged for {component}: "
            f"{actual} != {expected}"
        )
    return result
