"""Automated safety analysis — the paper's primary contribution.

- :mod:`repro.safety.fmea` — FMEA data model and the injection-based
  analyzer for Simulink models (DECISIVE Step 4a, Section IV-D1);
- :mod:`repro.safety.campaign` — the batched fault-injection campaign
  engine behind :func:`run_simulink_fmea`: baseline solved once, jobs
  enumerated up front, incremental (factorization-reusing) solves, optional
  process-pool fan-out, per-campaign timing statistics;
- :mod:`repro.safety.resilience` — fault-tolerance primitives for the
  campaign engine: structured job failures, bounded retry with backoff,
  per-job deadlines, checkpoint–resume keyed by a campaign fingerprint;
- :mod:`repro.safety.graph_analysis` — Algorithm 1: graph-based single-point
  failure determination for SSAM models (Section IV-D2);
- :mod:`repro.safety.fmeda` — FMEDA: safety-mechanism-aware diagnostic
  analysis producing Table IV-style results;
- :mod:`repro.safety.metrics` — architectural metrics (SPFM, Eq. 1; LFM) and
  ISO 26262 ASIL targets;
- :mod:`repro.safety.asil` — HARA: S/E/C → ASIL determination;
- :mod:`repro.safety.mechanisms` — safety-mechanism catalogues (Table III)
  and deployments;
- :mod:`repro.safety.optimizer` — automated safety-mechanism deployment
  search (target ASIL at minimal cost; Pareto front over safety vs cost);
- :mod:`repro.safety.report` — FMEA/FMEDA table rendering (the "Excel-based
  FMEA table" SAME always produces).
"""

from repro.safety.fmea import (
    FmeaError,
    FmeaResult,
    FmeaRow,
    run_simulink_fmea,
)
from repro.safety.campaign import (
    CampaignStats,
    FaultInjectionCampaign,
    InjectionJob,
)
from repro.safety.resilience import (
    CampaignCheckpoint,
    CheckpointError,
    JobFailure,
    JobTimeoutError,
    RetryPolicy,
    campaign_fingerprint,
)
from repro.safety.graph_analysis import run_ssam_fmea
from repro.safety.fmeda import FmedaResult, FmedaRow, run_fmeda
from repro.safety.metrics import (
    ASIL_PMHF_TARGETS,
    ASIL_SPFM_TARGETS,
    asil_from_spfm,
    latent_fault_metric,
    pmhf,
    pmhf_meets,
    spfm,
    spfm_meets,
)
from repro.safety.derivation import (
    allocate_requirements_to_components,
    derive_safety_requirements,
)
from repro.safety.uncertainty import (
    TornadoBar,
    UncertaintyResult,
    spfm_uncertainty,
    tornado_analysis,
)
from repro.safety.summary import render_safety_report, write_safety_report
from repro.safety.compare import FmedaComparison, compare_fmeda
from repro.safety.asil import determine_asil, risk_graph
from repro.safety.mechanisms import (
    Deployment,
    MechanismSpec,
    SafetyMechanismModel,
    load_mechanism_table,
    save_mechanism_table,
)
from repro.safety.optimizer import (
    DeploymentPlan,
    dp_pareto_front,
    dp_search_for_target,
    enumerate_plans,
    greedy_plan,
    pareto_front,
    search_for_target,
)
from repro.safety.report import (
    campaign_failures_sheet,
    campaign_stats_sheet,
    render_campaign_stats,
    fmea_to_sheet,
    fmeda_to_sheet,
    render_text_table,
    save_fmea_workbook,
    save_fmeda_workbook,
)

__all__ = [
    "FmeaRow",
    "FmeaResult",
    "FmeaError",
    "run_simulink_fmea",
    "run_ssam_fmea",
    "FaultInjectionCampaign",
    "InjectionJob",
    "CampaignStats",
    "JobFailure",
    "JobTimeoutError",
    "RetryPolicy",
    "CampaignCheckpoint",
    "CheckpointError",
    "campaign_fingerprint",
    "FmedaRow",
    "FmedaResult",
    "run_fmeda",
    "spfm",
    "spfm_meets",
    "asil_from_spfm",
    "latent_fault_metric",
    "pmhf",
    "pmhf_meets",
    "ASIL_SPFM_TARGETS",
    "ASIL_PMHF_TARGETS",
    "derive_safety_requirements",
    "allocate_requirements_to_components",
    "UncertaintyResult",
    "spfm_uncertainty",
    "render_safety_report",
    "write_safety_report",
    "TornadoBar",
    "tornado_analysis",
    "FmedaComparison",
    "compare_fmeda",
    "determine_asil",
    "risk_graph",
    "MechanismSpec",
    "SafetyMechanismModel",
    "Deployment",
    "load_mechanism_table",
    "save_mechanism_table",
    "DeploymentPlan",
    "dp_pareto_front",
    "dp_search_for_target",
    "enumerate_plans",
    "greedy_plan",
    "pareto_front",
    "search_for_target",
    "fmea_to_sheet",
    "fmeda_to_sheet",
    "save_fmea_workbook",
    "save_fmeda_workbook",
    "render_text_table",
    "campaign_stats_sheet",
    "campaign_failures_sheet",
    "render_campaign_stats",
]
