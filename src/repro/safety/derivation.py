"""Requirement derivation from analysis results.

The paper (Section II-A): "safety requirements may be broken down into
specific requirements based on the analysis results".  This module performs
that breakdown automatically: every safety-related failure mode found by an
FMEA yields a derived safety requirement — either *prevent/detect the
failure mode* (when no mechanism covers it yet) or *implement the deployed
mechanism with its claimed coverage* — linked to its parent requirement via
a ``derives`` relationship and cited back to the component.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.metamodel import ModelObject
from repro.safety.fmea import FmeaResult
from repro.safety.mechanisms import Deployment
from repro.ssam import SSAMModel
from repro.ssam.base import text_of
from repro.ssam.requirements import (
    relate,
    requirement_package,
    safety_requirement,
)


def derive_safety_requirements(
    model: SSAMModel,
    fmea: FmeaResult,
    deployments: Iterable[Deployment] = (),
    parent: Optional[ModelObject] = None,
    integrity_level: str = "ASIL-B",
    package_name: str = "DerivedSafetyRequirements",
) -> List[ModelObject]:
    """Derive one safety requirement per safety-related failure mode.

    The derived requirements are added to a new requirement package on
    ``model``; when ``parent`` (a higher-level safety requirement) is given,
    each derived requirement is linked to it with a ``derives``
    relationship.  Returns the derived requirement elements.
    """
    coverage_by_key: Dict[tuple, Deployment] = {
        (d.component, d.failure_mode): d for d in deployments
    }
    package = requirement_package(package_name)
    components_by_name = {
        (text_of(c) or c.get("id")): c
        for c in model.elements_of_kind("Component")
    }
    derived: List[ModelObject] = []
    for index, row in enumerate(fmea.safety_related_rows(), start=1):
        deployment = coverage_by_key.get((row.component, row.failure_mode))
        identifier = f"DSR-{index}"
        if deployment is None:
            text = (
                f"The design shall prevent or detect the failure mode "
                f"'{row.failure_mode}' of component '{row.component}' "
                f"({row.mode_rate:g} FIT), which is a single point of "
                f"failure."
            )
        else:
            text = (
                f"Component '{row.component}' shall implement "
                f"'{deployment.mechanism}' with at least "
                f"{deployment.coverage:.0%} diagnostic coverage of the "
                f"failure mode '{row.failure_mode}'."
            )
        requirement = safety_requirement(
            identifier, text, integrity_level=integrity_level
        )
        component = components_by_name.get(row.component)
        if component is not None:
            requirement.add("cites", component)
        package.add("elements", requirement)
        if parent is not None:
            package.add("elements", relate(requirement, parent, "derives"))
        derived.append(requirement)
    model.add_requirement_package(package)
    return derived


def allocate_requirements_to_components(model: SSAMModel) -> Dict[str, List[str]]:
    """Allocation view: component name -> requirements citing it.

    This is the "allocation to functions and components" a safety concept
    must contain (Section II-A).
    """
    allocation: Dict[str, List[str]] = {}
    for requirement in model.elements_of_kind("Requirement"):
        for cited in requirement.get("cites"):
            if not cited.is_kind_of("Component"):
                continue
            name = text_of(cited) or cited.get("id")
            allocation.setdefault(name, []).append(
                text_of(requirement) or requirement.get("id")
            )
    return allocation
