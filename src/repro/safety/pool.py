"""Persistent warm process pool for fault-injection campaigns.

Spinning up a ``ProcessPoolExecutor`` costs fork + interpreter warm-up +
pickling the conversion into every worker — BENCH_injection.json measured
that fixed cost at more than the entire solve time of the small case
studies, which is how ``parallel_s`` lost to serial on every case.  This
module keeps ONE pool alive across campaigns within the process:

- :func:`acquire` returns the cached executor when the request *token*
  matches the cached one exactly (same campaign fingerprint, worker count,
  solver backend, tracing mode, retry policy, …) — the workers are already
  initialised with identical ``initargs``, so re-running the initializer
  would be a no-op;
- any token mismatch discards the cached pool and starts a fresh one (the
  initializer protocol is unchanged — workers are configured once, at pool
  construction);
- :func:`discard` is for broken pools (a ``BrokenProcessPool`` poisons the
  executor permanently); :func:`release` keeps a healthy cached pool warm
  and shuts down anything else.

Reuse is visible as the ``campaign_pool_reuses`` counter / the
``campaign_pool_reuse`` gauge (see ``repro.obs``) and as
``CampaignStats.pool_reused``.
"""

from __future__ import annotations

import atexit
import threading
from typing import Dict, Optional, Tuple

from repro import obs

__all__ = ["acquire", "release", "discard", "shutdown_all", "status"]

#: The single cached warm pool: ``(token, executor)`` or ``None``.
_CACHED: Optional[Tuple[object, object]] = None

#: Guards every read-modify-write of :data:`_CACHED`.  Campaigns used to be
#: strictly sequential within a process, but the analysis service runs them
#: from concurrent server threads — two unsynchronised ``acquire`` calls
#: could both read the same cached pool, or ``shutdown_all``/``status``
#: could observe a half-swapped cache.
_LOCK = threading.Lock()


def _shutdown(executor) -> None:
    try:
        executor.shutdown(wait=False, cancel_futures=True)
    except Exception:  # noqa: BLE001 — teardown must never propagate
        pass


def _broken(executor) -> bool:
    """Whether the executor has latched its broken state."""
    return bool(getattr(executor, "_broken", False))


def acquire(token, max_workers: int, initializer, initargs):
    """``(executor, reused)`` — the warm pool on an exact token match,
    else a fresh ``ProcessPoolExecutor`` (the old one is discarded).

    ``token`` must capture everything that shapes worker behaviour: the
    campaign fingerprint, worker count, analysis parameters, solver
    backend, tracing mode and retry policy all belong in it, because a
    reused pool never re-runs its initializer.
    """
    global _CACHED
    from concurrent.futures import ProcessPoolExecutor

    with _LOCK:
        if _CACHED is not None:
            cached_token, executor = _CACHED
            if cached_token == token and not _broken(executor):
                # The counter increments unconditionally, like the event
                # emit below (which self-gates on the event plane): reuse
                # accounting must not depend on which observability plane
                # happens to be switched on — the live `/metrics` scrape
                # of the analysis service reads the registry directly.
                obs.counter("campaign_pool_reuses").inc()
                obs.emit_event(
                    "pool_acquired", reused=True, workers=max_workers
                )
                obs.log("debug", "warm pool reused", workers=max_workers)
                return executor, True
            _CACHED = None
            _shutdown(executor)
            obs.log(
                "info", "warm pool discarded (token mismatch)",
                workers=max_workers,
            )
        executor = ProcessPoolExecutor(
            max_workers=max_workers,
            initializer=initializer,
            initargs=initargs,
        )
        _CACHED = (token, executor)
    obs.emit_event("pool_acquired", reused=False, workers=max_workers)
    obs.log("info", "warm pool started", workers=max_workers)
    return executor, False


def release(executor) -> None:
    """End-of-campaign hand-back: the cached warm pool stays alive for the
    next campaign; anything else is shut down."""
    with _LOCK:
        if _CACHED is not None and _CACHED[1] is executor:
            return
    _shutdown(executor)


def discard(executor) -> None:
    """Shut ``executor`` down and forget it if it was the cached pool —
    for broken executors, which can never be reused."""
    global _CACHED
    with _LOCK:
        if _CACHED is not None and _CACHED[1] is executor:
            _CACHED = None
    _shutdown(executor)
    obs.log("warning", "broken pool discarded")


def status() -> Dict[str, object]:
    """Warm-pool liveness for the `/healthz` endpoint (read-only)."""
    with _LOCK:
        cached = _CACHED
    if cached is None:
        return {"warm": False}
    _, executor = cached
    return {
        "warm": True,
        "broken": _broken(executor),
        "max_workers": getattr(executor, "_max_workers", None),
    }


def shutdown_all() -> None:
    """Drop and shut down the cached warm pool (atexit hook; also used by
    tests that need a cold-pool baseline)."""
    global _CACHED
    with _LOCK:
        if _CACHED is None:
            return
        _, executor = _CACHED
        _CACHED = None
    _shutdown(executor)


atexit.register(shutdown_all)
