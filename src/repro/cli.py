"""``same`` — the command-line interface to the SAME tool.

Subcommands::

    same fmea      --model m.slx.json --reliability rel.csv [--sensor CS1 ...]
    same fmeda     ... --mechanisms sm.csv --target ASIL-B
    same transform --model m.slx.json --out m.ssam.json
    same validate  --ssam m.ssam.json
    same demo      [--out DIR]      # the paper's power-supply case study
    same monitor   --ssam m.ssam.json --out monitor.py
    same serve-analysis --ledger ledger.jsonl [--bind HOST:PORT]

Observatory verbs over the analysis ledger (``--ledger ledger.jsonl`` on
any analysis command records provenance entries)::

    same history           --ledger ledger.jsonl [--kind fmeda] [--model m]
    same diff              --ledger ledger.jsonl @0 @-1 [--json]
    same watch-regressions --ledger ledger.jsonl [--baseline REF] [--json]
    same slo               --url http://HOST:PORT [--ledger ledger.jsonl]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.safety.report import (
    fmea_to_sheet,
    fmeda_to_sheet,
    render_campaign_stats,
    render_text_table,
)


def _parse_serve(spec: str) -> tuple:
    """``HOST:PORT`` → ``(host, port)``; bare ``PORT`` binds localhost."""
    host, _, port_text = str(spec).rpartition(":")
    try:
        port = int(port_text)
    except ValueError:
        raise SystemExit(
            f"--serve expects HOST:PORT (or just PORT), got {spec!r}"
        )
    return (host or "127.0.0.1", port)


def _obs_begin(args: argparse.Namespace) -> dict:
    """Arm the observability planes the flags ask for.

    Returns a session dict carrying everything :func:`_obs_end` must tear
    down: the live HTTP server (``--serve``), the console renderer
    (``--progress``), the JSONL event sink (``--events``), the structured
    log plane (``--logs``) and the sampling profiler (``--profile``).
    ``--serve`` turns on both tracing (so ``/metrics`` has live content)
    and the event bus (so ``/events`` streams); ``--progress``/``--events``
    need only the event bus.

    Whenever any plane is armed, the invocation also mints a correlation
    id and installs it process-wide, so every span, event and log record
    the run produces — pool workers included — carries the same id.
    """
    session: dict = {}
    serve = getattr(args, "serve", None)
    progress = bool(getattr(args, "progress", False))
    events_path = getattr(args, "events", None)
    logs_path = getattr(args, "logs", None)
    profile_path = getattr(args, "profile", None)
    wants_trace = bool(
        getattr(args, "trace", None) or getattr(args, "metrics", None) or serve
    )
    wants_events = bool(serve or progress or events_path)
    if not (wants_trace or wants_events or logs_path or profile_path):
        return session
    from repro import obs

    session["cid"] = obs.mint_correlation_id()
    obs.set_correlation_id(session["cid"])
    if wants_trace and not obs.enabled():
        obs.enable()
        session["disable_tracing"] = True
    if wants_events and not obs.events_enabled():
        obs.enable_events()
        session["disable_events"] = True
    if logs_path and not obs.logs_enabled():
        obs.enable_logs()
        session["disable_logs"] = True
    if logs_path:
        session["logs_path"] = logs_path
    if events_path:
        session["events_path"] = obs.event_bus().attach_jsonl(events_path)
    if progress:
        renderer = obs.ConsoleProgress()
        obs.event_bus().add_callback(renderer)
        session["renderer"] = renderer
    if serve:
        host, port = _parse_serve(serve)
        server = obs.serve_live(host, port)
        session["server"] = server
        print(
            f"live telemetry at {server.url}  "
            f"(GET /metrics /healthz /events)",
            file=sys.stderr,
        )
    if profile_path:
        from repro.obs.profile import SamplingProfiler

        profiler = SamplingProfiler()
        if profiler.start():
            session["profiler"] = profiler
            session["profile_path"] = profile_path
        else:
            print(
                "profiling unavailable (not the main thread?); "
                "--profile ignored",
                file=sys.stderr,
            )
    return session


def _obs_end(
    args: argparse.Namespace, session: Optional[dict] = None, same=None
) -> None:
    """Export trace/metrics, stop the live plane, and link every artifact
    written here to the run's latest ledger entry (when one exists) so
    provenance covers the live telemetry too."""
    session = session or {}
    artifacts: List[tuple] = []  # (kind, path)
    profiler = session.get("profiler")
    if profiler is not None:
        profiler.stop()
        path = profiler.write_folded(session["profile_path"])
        print(
            f"profile written to {path} "
            f"({profiler.samples} samples, collapsed stacks)"
        )
        artifacts.append(("profile", path))
    if getattr(args, "trace", None):
        from repro import obs

        if str(args.trace).endswith(".json"):
            path = obs.export_chrome_trace(args.trace)
            print(f"Chrome trace written to {path} (open in chrome://tracing)")
        else:
            path = obs.export_jsonl(args.trace)
            print(f"JSONL trace written to {path}")
        artifacts.append(("trace", path))
    if getattr(args, "metrics", None):
        from repro import obs

        path = obs.export_prometheus(args.metrics)
        print(f"Prometheus metrics written to {path}")
        artifacts.append(("metrics", path))
    if session.get("events_path") is not None:
        from repro import obs

        obs.event_bus().detach_jsonl()
        path = session["events_path"]
        print(f"event log written to {path}")
        artifacts.append(("events", path))
    if session.get("logs_path") is not None:
        from repro import obs

        path = obs.log_plane().write_jsonl(session["logs_path"])
        print(f"structured log written to {path}")
        artifacts.append(("log", path))
    if session.get("renderer") is not None:
        from repro import obs

        obs.event_bus().remove_callback(session["renderer"])
    if session.get("server") is not None:
        session["server"].stop()
    if (
        session.get("disable_events")
        or session.get("disable_tracing")
        or session.get("disable_logs")
        or session.get("cid")
    ):
        from repro import obs

        if session.get("disable_events"):
            obs.disable_events()
        if session.get("disable_tracing"):
            obs.disable()
        if session.get("disable_logs"):
            obs.disable_logs()
        if session.get("cid"):
            obs.set_correlation_id(None)
    ledger = getattr(same, "ledger", None) if same is not None else None
    if ledger is not None and artifacts:
        try:
            entry = ledger.latest()
            if entry is not None:
                for kind, path in artifacts:
                    ledger.attach_artifact(entry, path, kind=f"obs-{kind}")
        except Exception:  # noqa: BLE001 — provenance must not fail the run
            pass


def _print_stats(result) -> None:
    print("\n== campaign statistics ==")
    print(render_campaign_stats(result))


def _maybe_ledger(same, args: argparse.Namespace) -> None:
    """Attach an analysis ledger to the facade when ``--ledger`` was given."""
    if getattr(args, "ledger", None):
        same.set_ledger(args.ledger)


def _open_ledger(args: argparse.Namespace):
    from repro.obs.ledger import AnalysisLedger

    return AnalysisLedger(args.ledger)


def _cmd_fmea(args: argparse.Namespace) -> int:
    from repro.same import SAME

    session = _obs_begin(args)
    same = SAME()
    _maybe_ledger(same, args)
    same.open_simulink(args.model)
    same.load_reliability(args.reliability)
    result = same.run_fmea_simulink(
        sensors=args.sensor or None,
        threshold=args.threshold,
        assume_stable=args.assume_stable or (),
        **_campaign_kwargs(args),
    )
    print(render_text_table(fmea_to_sheet(result)))
    value, asil = same.calculate_spfm()
    print(f"\nSPFM = {value * 100:.2f}%  (achieves {asil})")
    if args.stats:
        _print_stats(result)
    if args.out:
        path = same.export_fmea(args.out)
        print(f"FMEA workbook written to {path}")
    _obs_end(args, session, same)
    return 0


def _cmd_fmeda(args: argparse.Namespace) -> int:
    from repro.same import SAME

    session = _obs_begin(args)
    same = SAME()
    _maybe_ledger(same, args)
    same.open_simulink(args.model)
    same.load_reliability(args.reliability)
    same.load_mechanisms(args.mechanisms)
    same.run_fmea_simulink(
        sensors=args.sensor or None,
        threshold=args.threshold,
        assume_stable=args.assume_stable or (),
        **_campaign_kwargs(args),
    )
    plan = same.search_deployment(args.target, strategy=args.search_strategy)
    if plan is None:
        print(f"no deployment in the catalogue reaches {args.target}")
        _obs_end(args, session, same)
        return 1
    result = same.run_fmeda()
    print(render_text_table(fmeda_to_sheet(result)))
    print(
        f"\nSPFM = {result.spfm * 100:.2f}%  achieves {result.asil}  "
        f"(target {args.target}, SM cost {result.total_cost:g})"
    )
    if args.stats:
        _print_stats(same.last_fmea)
    if args.out:
        path = same.export_fmeda(args.out)
        print(f"FMEDA workbook written to {path}")
    _obs_end(args, session, same)
    return 0


def _cmd_transform(args: argparse.Namespace) -> int:
    from repro.same import SAME

    same = SAME()
    same.open_simulink(args.model)
    if args.reliability:
        same.load_reliability(args.reliability)
    ssam = same.import_simulink(anchor_boundaries=args.anchor)
    ssam.save(args.out)
    print(
        f"transformed {args.model} -> {args.out} "
        f"({ssam.element_count()} SSAM elements)"
    )
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.ssam import SSAMModel, validate_ssam

    model = SSAMModel.load(args.ssam)
    report = validate_ssam(model)
    for diagnostic in report.diagnostics:
        print(diagnostic)
    print(
        f"{len(report)} finding(s); "
        f"{'OK' if report.ok else 'ERRORS present'}"
    )
    return 0 if report.ok else 1


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.casestudies.power_supply import (
        ASSUMED_STABLE,
        build_power_supply_simulink,
        power_supply_mechanisms,
        power_supply_reliability,
    )
    from repro.same import SAME

    session = _obs_begin(args)
    same = SAME()
    _maybe_ledger(same, args)
    same.open_simulink(build_power_supply_simulink())
    same.load_reliability(power_supply_reliability())
    same.load_mechanisms(power_supply_mechanisms())
    fmea = same.run_fmea_simulink(
        sensors=["CS1"],
        assume_stable=ASSUMED_STABLE,
        **_campaign_kwargs(args),
    )
    value, asil = same.calculate_spfm()
    print("== DECISIVE Step 4a: automated FMEA (injection) ==")
    print(render_text_table(fmea_to_sheet(fmea)))
    print(f"\nSPFM = {value * 100:.2f}%  ({asil}); target is ASIL-B (>= 90%)")
    print("\n== DECISIVE Step 4b: deploy ECC on MC1 ==")
    same.deploy("MC1", "RAM Failure", "ECC")
    result = same.run_fmeda()
    print(render_text_table(fmeda_to_sheet(result)))
    print(
        f"\nSPFM = {result.spfm * 100:.2f}%  achieves {result.asil} "
        f"(Table IV reproduced)"
    )
    if args.stats:
        _print_stats(fmea)
    if args.out:
        out = Path(args.out)
        out.mkdir(parents=True, exist_ok=True)
        same.export_fmea(out / "fmea")
        same.export_fmeda(out / "fmeda")
        print(f"workbooks written under {out}")
    _obs_end(args, session, same)
    return 0


def _cmd_fta(args: argparse.Namespace) -> int:
    from repro.fta import federate_fta_fmea
    from repro.reliability import load_reliability_table
    from repro.safety import run_ssam_fmea
    from repro.ssam import SSAMModel

    model = SSAMModel.load(args.ssam)
    tops = model.top_components()
    if not tops:
        print("SSAM model has no top-level component")
        return 1
    reliability = (
        load_reliability_table(args.reliability) if args.reliability else None
    )
    fmea = run_ssam_fmea(tops[0], reliability)
    federated = federate_fta_fmea(
        tops[0], fmea, mission_hours=args.mission_hours
    )
    print(federated.tree.render())
    print(f"\nminimal cut sets ({len(federated.cut_sets)}):")
    for cutset in federated.cut_sets:
        print(f"  {{{', '.join(sorted(cutset))}}}")
    print(f"P(top, {args.mission_hours:g} h) = {federated.top_probability:.3e}")
    print(
        f"FTA single points : {federated.fta_single_points}\n"
        f"FMEA single points: {federated.fmea_single_points}\n"
        f"consistent        : {federated.consistent}"
    )
    return 0 if federated.consistent else 1


def _cmd_decisive(args: argparse.Namespace) -> int:
    from repro.same import SAME

    session = _obs_begin(args)
    same = SAME()
    _maybe_ledger(same, args)
    same.open_ssam(args.ssam)
    same.load_reliability(args.reliability)
    same.load_mechanisms(args.mechanisms)
    log = same.run_decisive(
        args.target, args.max_iterations, search_strategy=args.search_strategy
    )
    for record in log.iterations:
        deployed = ", ".join(
            f"{d.mechanism} on {d.component}" for d in record.deployments
        )
        print(
            f"iter {record.index}: SPFM {record.spfm * 100:6.2f}% "
            f"({record.asil})" + (f"  + {deployed}" if deployed else "")
        )
        if record.ledger_entry:
            print(f"  ledger: {record.ledger_entry}")
        if record.diff_summary:
            for line in record.diff_summary.splitlines():
                print(f"  | {line}")
    concept = log.concept
    print(
        f"\n{'TARGET MET' if log.met_target else 'TARGET NOT MET'}: "
        f"{concept.achieved_asil} (SPFM {concept.spfm * 100:.2f}%), "
        f"SM cost {concept.fmeda.total_cost:g}"
    )
    if args.out:
        from repro.safety.report import save_decisive_workbook

        entries = []
        if same.ledger is not None:
            recorded = {r.ledger_entry for r in log.iterations if r.ledger_entry}
            entries = [
                entry
                for entry in same.ledger.entries(kind="decisive-iteration")
                if entry.entry_id in recorded
            ]
        path = save_decisive_workbook(concept.fmeda, entries, args.out)
        print(f"DECISIVE workbook written to {path}")
    _obs_end(args, session, same)
    return 0 if log.met_target else 1


def _cmd_history(args: argparse.Namespace) -> int:
    import json as _json

    from repro.obs.history import history_rows, render_history, stale_entries

    ledger = _open_ledger(args)
    entries = ledger.entries(
        kind=args.kind or None, system=args.system or None
    )
    stale_seqs: set = set()
    if args.model:
        from repro.obs.ledger import model_digest
        from repro.simulink import SimulinkModel

        current = model_digest(SimulinkModel.load(args.model))
        stale_seqs = {
            entry.seq for entry in stale_entries(ledger, current)
        }
    if args.json:
        rows = history_rows(entries)
        for row, entry in zip(rows, entries):
            row["Stale"] = entry.seq in stale_seqs if args.model else None
        print(_json.dumps(rows, indent=2))
        return 0
    if args.model:
        rows = history_rows(entries)
        for row, entry in zip(rows, entries):
            row["Stale"] = "STALE" if entry.seq in stale_seqs else "fresh"
        from repro.drivers.table import Sheet

        print(render_text_table(Sheet("History", rows)))
        flagged = sum(1 for entry in entries if entry.seq in stale_seqs)
        if flagged:
            print(
                f"\n{flagged} entr{'y' if flagged == 1 else 'ies'} stale "
                f"against the current model; re-run the analysis to refresh"
            )
        return 0
    print(render_history(entries))
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    import json as _json

    from repro.obs.history import diff_entries

    ledger = _open_ledger(args)
    diff = diff_entries(ledger.resolve(args.a), ledger.resolve(args.b))
    if args.json:
        print(_json.dumps(diff.to_dict(), indent=2))
    else:
        print(diff.summary())
    return 0


def _cmd_watch_regressions(args: argparse.Namespace) -> int:
    import json as _json

    from repro.obs.history import baseline_for, diff_entries, watch_regressions

    ledger = _open_ledger(args)
    candidate = ledger.resolve(args.entry)
    if args.baseline:
        baseline = ledger.resolve(args.baseline)
    else:
        baseline = baseline_for(ledger, candidate)
    if baseline is None:
        # First recorded run of this (kind, system): nothing to regress
        # against — the gate passes so a fresh trajectory can bootstrap.
        print(
            f"no baseline for {candidate.entry_id} "
            f"({candidate.kind}/{candidate.system}); gate passes"
        )
        return 0
    diff = diff_entries(baseline, candidate)
    regressions = watch_regressions(
        diff,
        max_spfm_drop=args.max_spfm_drop,
        max_walltime_pct=args.max_walltime_pct,
    )
    if args.json:
        print(
            _json.dumps(
                {
                    "baseline": baseline.entry_id,
                    "candidate": candidate.entry_id,
                    "regressions": [
                        {"kind": r.kind, "message": r.message}
                        for r in regressions
                    ],
                    "diff": diff.to_dict(),
                },
                indent=2,
            )
        )
    else:
        print(f"baseline : {baseline.entry_id}")
        print(f"candidate: {candidate.entry_id}")
        if not regressions:
            print("no regressions")
        for regression in regressions:
            print(f"REGRESSION [{regression.kind}] {regression.message}")
    return 1 if regressions else 0


def _cmd_ledger_index(args: argparse.Namespace) -> int:
    """``same ledger-index`` — inspect or rebuild the ledger's sidecar
    byte-offset index (``<ledger>.idx``)."""
    import json as _json

    ledger = _open_ledger(args)
    if args.rebuild:
        status = ledger.rebuild_index()
    else:
        status = ledger.index_status()
    if args.json:
        print(_json.dumps(status, indent=2, sort_keys=True))
        return 0 if status.get("enabled") else 1
    if not status.get("enabled"):
        print(f"{status['path']}: sidecar index disabled (scan fallback)")
        return 1
    print(f"sidecar      : {status['sidecar']}")
    print(f"lines indexed: {status['lines']}")
    print(f"entries      : {status['entries']}")
    print(f"artifacts    : {status['artifacts']}")
    print(f"cache keys   : {status['cache_keys']}")
    print(f"bytes covered: {status['bytes_covered']}")
    if status.get("tail_open"):
        print("tail         : unterminated (healed on next append)")
    return 0


def _cmd_slo(args: argparse.Namespace) -> int:
    """``same slo`` — the SLO gate: live burn rates from a running
    service and/or the SLO verdict stamped on a recorded ledger entry.
    Exits non-zero when anything is breached."""
    import json as _json

    from repro.obs.slo import render_report

    if not args.url and not args.ledger:
        raise SystemExit("same slo needs --url and/or --ledger")
    rank = {"ok": 0, "warning": 1, "breached": 2}
    worst = "ok"
    if args.url:
        from urllib.request import urlopen

        url = args.url.rstrip("/") + "/healthz"
        with urlopen(url, timeout=10.0) as response:
            health = _json.loads(response.read().decode("utf-8"))
        report = health.get("slo")
        if not isinstance(report, dict):
            raise SystemExit(f"{url} exposes no slo section")
        if args.json:
            print(_json.dumps(report, indent=2, sort_keys=True))
        else:
            print(render_report(report))
        status = str(report.get("status", "ok"))
        worst = max(worst, status, key=lambda s: rank.get(s, 0))
    if args.ledger:
        ledger = _open_ledger(args)
        entry = ledger.resolve(args.entry)
        slo = entry.meta.get("slo")
        if not isinstance(slo, dict):
            print(f"{entry.entry_id}: no SLO verdict recorded")
        else:
            status = str(slo.get("status", "ok"))
            line = f"{entry.entry_id}: slo {status}"
            breached = [str(name) for name in slo.get("breached", [])]
            warning = [str(name) for name in slo.get("warning", [])]
            if breached:
                line += f" (breached: {', '.join(breached)})"
            if warning:
                line += f" (warning: {', '.join(warning)})"
            print(line)
            worst = max(worst, status, key=lambda s: rank.get(s, 0))
    return 1 if worst == "breached" else 0


def _cmd_serve_analysis(args: argparse.Namespace) -> int:
    import time

    from repro import obs
    from repro.obs.ledger import AnalysisLedger
    from repro.service import AnalysisService, AnalysisServiceServer

    # The service plane wants metrics (/metrics has live content), the
    # event bus (/events streams job lifecycle, /healthz aggregates it)
    # and the log plane (per-job structured logs become ledger artifacts).
    if not obs.enabled():
        obs.enable()
    if not obs.events_enabled():
        obs.enable_events()
    if not obs.logs_enabled():
        obs.enable_logs()

    slo_objectives = None
    if args.slo:
        import json as _json

        from repro.obs.slo import objectives_from_config

        slo_objectives = objectives_from_config(
            _json.loads(Path(args.slo).read_text(encoding="utf-8"))
        )

    host, port = _parse_serve(args.bind)
    ledger = AnalysisLedger(args.ledger)
    service = AnalysisService(
        ledger,
        workers=args.service_workers,
        checkpoint_dir=args.checkpoint_dir,
        slo_objectives=slo_objectives,
    )
    server = AnalysisServiceServer(service, host, port).start()
    print(
        f"analysis service at {server.url}  "
        f"(POST /jobs; GET /jobs /jobs/<id> /jobs/<id>/events "
        f"/metrics /healthz /events)",
        flush=True,
    )
    deadline = (
        time.monotonic() + args.max_seconds if args.max_seconds else None
    )
    try:
        while deadline is None or time.monotonic() < deadline:
            time.sleep(0.2)
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    print("analysis service stopped", flush=True)
    return 0


def _cmd_render(args: argparse.Namespace) -> int:
    from repro.same import (
        render_architecture,
        render_architecture_mermaid,
        render_hazard_log,
        render_requirements,
    )
    from repro.ssam import SSAMModel

    model = SSAMModel.load(args.ssam)
    views = {
        "architecture": render_architecture,
        "mermaid": render_architecture_mermaid,
        "hazards": render_hazard_log,
        "requirements": render_requirements,
    }
    print(views[args.view](model))
    return 0


def _cmd_monitor(args: argparse.Namespace) -> int:
    from repro.monitor import generate_monitor_source
    from repro.ssam import SSAMModel

    model = SSAMModel.load(args.ssam)
    source = generate_monitor_source(model, debounce=args.debounce)
    Path(args.out).write_text(source, encoding="utf-8")
    print(f"monitor module written to {args.out}")
    return 0


def _add_search_strategy_argument(parser: argparse.ArgumentParser) -> None:
    """Optimizer-backend flag for the mechanism-search verbs.

    Named ``--search-strategy`` because ``--strategy`` already selects the
    injection-campaign execution mode on the same commands.
    """
    parser.add_argument(
        "--search-strategy",
        dest="search_strategy",
        choices=["dp", "greedy", "exhaustive"],
        default="dp",
        help="mechanism-search backend: 'dp' (exact separable Pareto "
        "dynamic program, default), 'greedy' heuristic, or the legacy "
        "bounded 'exhaustive' enumeration",
    )


def _add_campaign_arguments(parser: argparse.ArgumentParser) -> None:
    """Fault-tolerance / execution flags shared by the campaign commands."""
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process-pool workers for the injection campaign (default 1)",
    )
    parser.add_argument(
        "--strategy",
        choices=["fixed", "serial", "auto"],
        default="fixed",
        help="execution strategy: 'fixed' uses --workers as given, "
        "'serial' forces one worker, 'auto' picks serial incremental "
        "execution below the measured parallel break-even job count "
        "and fans out above it",
    )
    parser.add_argument(
        "--solver-backend",
        choices=["auto", "dense", "sparse"],
        default=None,
        help="MNA linear-solver backend for the campaign: 'dense' LAPACK "
        "LU, 'sparse' CSC/SuperLU, or 'auto' to pick by system size "
        "(default: the process-wide default backend)",
    )
    parser.add_argument(
        "--checkpoint",
        metavar="PATH",
        help="persist completed job outcomes to this JSONL file",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="skip jobs already recorded in --checkpoint for this model",
    )
    parser.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-job wall-clock budget; a job over budget is recorded as "
        "a failure instead of hanging the campaign",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=2,
        help="retry budget for transient job/worker failures (default 2)",
    )


def _campaign_kwargs(args: argparse.Namespace) -> dict:
    return {
        "workers": getattr(args, "workers", 1),
        "strategy": getattr(args, "strategy", "fixed"),
        "solver_backend": getattr(args, "solver_backend", None),
        "max_retries": getattr(args, "max_retries", 2),
        "job_timeout": getattr(args, "job_timeout", None),
        "checkpoint": getattr(args, "checkpoint", None),
        "resume": getattr(args, "resume", False),
    }


def _add_obs_arguments(parser: argparse.ArgumentParser) -> None:
    """Observability flags shared by the analysis subcommands."""
    parser.add_argument(
        "--trace",
        metavar="PATH",
        help="write a span trace: JSONL event log, or Chrome "
        "chrome://tracing JSON when PATH ends in .json",
    )
    parser.add_argument(
        "--metrics",
        metavar="PATH",
        help="write collected metrics in Prometheus text format",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print campaign execution statistics (CampaignStats)",
    )
    parser.add_argument(
        "--ledger",
        metavar="PATH",
        help="record a provenance entry for each analysis into this "
        "append-only JSONL ledger (see `same history` / `same diff`)",
    )
    parser.add_argument(
        "--serve",
        metavar="HOST:PORT",
        help="serve live telemetry over HTTP while the analysis runs: "
        "GET /metrics (Prometheus), /healthz (JSON liveness), "
        "/events (SSE progress stream); port 0 picks a free port",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="render live progress events (chunk completions, retries, "
        "ETA) on stderr",
    )
    parser.add_argument(
        "--events",
        metavar="PATH",
        help="append every progress event to this JSONL file",
    )
    parser.add_argument(
        "--logs",
        metavar="PATH",
        help="write structured JSONL logs (leveled records carrying the "
        "invocation's correlation id) to PATH",
    )
    parser.add_argument(
        "--profile",
        metavar="PATH",
        help="sample the analysis with a SIGPROF profiler and write "
        "collapsed stacks (flamegraph.pl / speedscope format) to PATH",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="same",
        description="SAME - Safety Analysis Management Environment (DECISIVE)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fmea = sub.add_parser("fmea", help="automated FMEA on a Simulink model")
    fmea.add_argument("--model", required=True)
    fmea.add_argument("--reliability", required=True)
    fmea.add_argument("--sensor", action="append")
    fmea.add_argument("--threshold", type=float, default=0.2)
    fmea.add_argument("--assume-stable", action="append", dest="assume_stable")
    fmea.add_argument("--out")
    _add_campaign_arguments(fmea)
    _add_obs_arguments(fmea)
    fmea.set_defaults(func=_cmd_fmea)

    fmeda = sub.add_parser("fmeda", help="FMEDA with mechanism search")
    fmeda.add_argument("--model", required=True)
    fmeda.add_argument("--reliability", required=True)
    fmeda.add_argument("--mechanisms", required=True)
    fmeda.add_argument("--target", default="ASIL-B")
    _add_search_strategy_argument(fmeda)
    fmeda.add_argument("--sensor", action="append")
    fmeda.add_argument("--threshold", type=float, default=0.2)
    fmeda.add_argument("--assume-stable", action="append", dest="assume_stable")
    fmeda.add_argument("--out")
    _add_campaign_arguments(fmeda)
    _add_obs_arguments(fmeda)
    fmeda.set_defaults(func=_cmd_fmeda)

    transform = sub.add_parser("transform", help="Simulink -> SSAM")
    transform.add_argument("--model", required=True)
    transform.add_argument("--out", required=True)
    transform.add_argument("--reliability")
    transform.add_argument("--anchor", action="store_true")
    transform.set_defaults(func=_cmd_transform)

    validate_cmd = sub.add_parser("validate", help="validate a SSAM model")
    validate_cmd.add_argument("--ssam", required=True)
    validate_cmd.set_defaults(func=_cmd_validate)

    demo = sub.add_parser("demo", help="run the paper's case study")
    demo.add_argument("--out")
    _add_campaign_arguments(demo)
    _add_obs_arguments(demo)
    demo.set_defaults(func=_cmd_demo)

    fta = sub.add_parser("fta", help="fault-tree analysis federated with FMEA")
    fta.add_argument("--ssam", required=True)
    fta.add_argument("--reliability")
    fta.add_argument("--mission-hours", type=float, default=8760.0)
    fta.set_defaults(func=_cmd_fta)

    decisive = sub.add_parser("decisive", help="run the full DECISIVE loop")
    decisive.add_argument("--ssam", required=True)
    decisive.add_argument("--reliability", required=True)
    decisive.add_argument("--mechanisms", required=True)
    decisive.add_argument("--target", default="ASIL-B")
    _add_search_strategy_argument(decisive)
    decisive.add_argument("--max-iterations", type=int, default=10)
    decisive.add_argument(
        "--out",
        help="save the final FMEDA plus the iteration-timeline sheet as a "
        "workbook",
    )
    _add_obs_arguments(decisive)
    decisive.set_defaults(func=_cmd_decisive)

    history = sub.add_parser(
        "history", help="list recorded analysis-ledger runs"
    )
    history.add_argument("--ledger", required=True)
    history.add_argument("--kind", help="filter by entry kind (e.g. fmeda)")
    history.add_argument("--system", help="filter by system name")
    history.add_argument(
        "--model",
        help="flag entries whose recorded model digest no longer matches "
        "this Simulink model (stale evidence)",
    )
    history.add_argument("--json", action="store_true")
    history.set_defaults(func=_cmd_history)

    diff = sub.add_parser(
        "diff", help="diff two analysis-ledger entries"
    )
    diff.add_argument("--ledger", required=True)
    diff.add_argument(
        "a", help="baseline entry: @N, negative index, id prefix, 'latest'"
    )
    diff.add_argument("b", help="candidate entry (same reference forms)")
    diff.add_argument("--json", action="store_true")
    diff.set_defaults(func=_cmd_diff)

    watch = sub.add_parser(
        "watch-regressions",
        help="exit non-zero on SPFM drops, new single-point faults, ASIL "
        "downgrades or wall-time regressions vs a baseline entry",
    )
    watch.add_argument("--ledger", required=True)
    watch.add_argument(
        "--entry",
        default="latest",
        help="candidate entry to check (default: latest)",
    )
    watch.add_argument(
        "--baseline",
        help="baseline entry reference (default: previous entry of the "
        "same kind and system)",
    )
    watch.add_argument(
        "--max-spfm-drop",
        type=float,
        default=0.0,
        help="tolerated absolute SPFM drop (default 0: any drop fails)",
    )
    watch.add_argument(
        "--max-walltime-pct",
        type=float,
        default=25.0,
        help="tolerated wall-time regression in percent (default 25)",
    )
    watch.add_argument("--json", action="store_true")
    watch.set_defaults(func=_cmd_watch_regressions)

    ledger_index = sub.add_parser(
        "ledger-index",
        help="inspect or rebuild the ledger's sidecar byte-offset index",
    )
    ledger_index.add_argument("--ledger", required=True)
    ledger_index.add_argument(
        "--rebuild",
        action="store_true",
        help="force a full rebuild of the sidecar index",
    )
    ledger_index.add_argument("--json", action="store_true")
    ledger_index.set_defaults(func=_cmd_ledger_index)

    slo = sub.add_parser(
        "slo",
        help="inspect service-level objectives: live burn rates from a "
        "running analysis service and/or the SLO verdict recorded on a "
        "ledger entry; exits non-zero when breached",
    )
    slo.add_argument(
        "--url",
        help="base URL of a running analysis service (reads /healthz)",
    )
    slo.add_argument(
        "--ledger",
        help="analysis ledger JSONL to check a recorded entry's verdict",
    )
    slo.add_argument(
        "--entry",
        default="latest",
        help="ledger entry reference (default: latest)",
    )
    slo.add_argument("--json", action="store_true")
    slo.set_defaults(func=_cmd_slo)

    render = sub.add_parser("render", help="render SSAM model views")
    render.add_argument("--ssam", required=True)
    render.add_argument(
        "--view",
        choices=["architecture", "mermaid", "hazards", "requirements"],
        default="architecture",
    )
    render.set_defaults(func=_cmd_render)

    monitor = sub.add_parser("monitor", help="generate a runtime monitor")
    monitor.add_argument("--ssam", required=True)
    monitor.add_argument("--out", required=True)
    monitor.add_argument("--debounce", type=int, default=1)
    monitor.set_defaults(func=_cmd_monitor)

    serve = sub.add_parser(
        "serve-analysis",
        help="run the always-on analysis service (async jobs + result cache)",
    )
    serve.add_argument(
        "--bind",
        default="127.0.0.1:0",
        help="HOST:PORT to listen on (port 0 picks a free port)",
    )
    serve.add_argument(
        "--ledger",
        required=True,
        help="analysis ledger JSONL backing the result cache",
    )
    serve.add_argument(
        "--service-workers",
        type=int,
        default=2,
        help="analysis worker threads draining the job queue",
    )
    serve.add_argument(
        "--checkpoint-dir",
        default=None,
        help="directory for per-fingerprint campaign checkpoints",
    )
    serve.add_argument(
        "--slo",
        metavar="CONFIG.json",
        default=None,
        help="JSON list of SLO objective dicts replacing the default "
        "objectives (fields as in repro.obs.slo.Objective)",
    )
    serve.add_argument(
        "--max-seconds",
        type=float,
        default=0.0,
        help="stop after this many seconds (0: run until interrupted)",
    )
    serve.set_defaults(func=_cmd_serve_analysis)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
