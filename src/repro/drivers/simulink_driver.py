"""Simulink driver — opens a block-diagram model file as an external model.

Collections are ``Block``, ``Line`` and ``Subsystem``; block elements expose
``name``, ``block_type``, ``path`` and their parameters.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.drivers.base import DriverError, ModelDriver, driver_registry


class SimulinkDriver(ModelDriver):
    type_name = "simulink"

    def __init__(self, location: Union[str, Path], metadata: str = "") -> None:
        super().__init__(location, metadata)
        from repro.simulink import SimulinkModel  # deferred: avoids import cycle

        path = Path(location)
        if not path.is_file():
            raise DriverError(f"no such Simulink model: {path}")
        self.model = SimulinkModel.load(path)

    @classmethod
    def from_model(cls, model: Any) -> "SimulinkDriver":
        """Wrap an in-memory :class:`SimulinkModel` without touching disk."""
        driver = cls.__new__(cls)
        ModelDriver.__init__(driver, "<in-memory>", "")
        driver.model = model
        return driver

    def collections(self) -> List[str]:
        return ["Block", "Line", "Subsystem"]

    def elements(self, collection: Optional[str] = None) -> List[Dict[str, Any]]:
        name = collection or "Block"
        if name == "Block":
            return [self._block_record(b) for b in self.model.all_blocks()]
        if name == "Subsystem":
            return [
                self._block_record(b)
                for b in self.model.all_blocks()
                if b.block_type == "Subsystem"
            ]
        if name == "Line":
            return [
                {
                    "source": line.source_path(),
                    "target": line.target_path(),
                }
                for line in self.model.all_lines()
            ]
        raise DriverError(f"Simulink model has no collection {name!r}")

    @staticmethod
    def _block_record(block: Any) -> Dict[str, Any]:
        record: Dict[str, Any] = dict(block.parameters)
        record.update(
            {
                "name": block.name,
                "block_type": block.block_type,
                "path": block.path(),
            }
        )
        return record


driver_registry().register("simulink", SimulinkDriver)
