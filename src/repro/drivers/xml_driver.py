"""XML driver — treats an XML document as an external model.

Collections are element tag names; an element's "properties" are its XML
attributes plus a ``text`` entry with its (stripped) text content.
``metadata`` may name the tag used as the default collection.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.drivers.base import DriverError, ModelDriver, driver_registry
from repro.drivers.table import parse_cell


def _element_record(element: ET.Element) -> Dict[str, Any]:
    record: Dict[str, Any] = {
        key: parse_cell(value) for key, value in element.attrib.items()
    }
    text = (element.text or "").strip()
    if text:
        record["text"] = parse_cell(text)
    record["tag"] = element.tag
    return record


class XmlDriver(ModelDriver):
    type_name = "xml"

    def __init__(self, location: Union[str, Path], metadata: str = "") -> None:
        super().__init__(location, metadata)
        path = Path(location)
        if not path.is_file():
            raise DriverError(f"no such XML model: {path}")
        try:
            self.tree = ET.parse(path)
        except ET.ParseError as exc:
            raise DriverError(f"malformed XML model {path}: {exc}") from exc
        self.root = self.tree.getroot()

    def collections(self) -> List[str]:
        tags: Dict[str, None] = {}
        for element in self.root.iter():
            if element is not self.root:
                tags.setdefault(element.tag)
        names = list(tags)
        if self.metadata and self.metadata in names:
            names = [self.metadata] + [n for n in names if n != self.metadata]
        return names

    def elements(self, collection: Optional[str] = None) -> List[Dict[str, Any]]:
        tag = collection or self.default_collection()
        return [
            _element_record(element)
            for element in self.root.iter(tag)
        ]


driver_registry().register("xml", XmlDriver)
