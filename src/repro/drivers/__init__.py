"""Model drivers — uniform access to heterogeneous models (Epsilon EMC substitute).

The paper federates information across models defined in different
technologies (Excel, CSV, JSON, XML, Simulink, EMF) through Epsilon's
extensible model connectivity layer and EOL scripts.  This package supplies
the equivalent:

- :class:`ModelDriver` — the uniform interface (named element collections,
  property access);
- concrete drivers: :class:`TableDriver` (CSV/"Excel" workbooks),
  :class:`JsonDriver`, :class:`XmlDriver`, :class:`SsamDriver`,
  :class:`SimulinkDriver`;
- :func:`open_model` — resolves an ``ExternalReference``-style
  (location, type, metadata) triple to a driver via the driver registry;
- :mod:`repro.drivers.query` — RQL, a small, safe expression language used
  as the machine-executable constraint / extraction-rule language.
"""

from repro.drivers.base import (
    DriverError,
    DriverRegistry,
    ModelDriver,
    driver_registry,
    open_model,
)
from repro.drivers.table import TableDriver, Workbook, Sheet
from repro.drivers.json_driver import JsonDriver
from repro.drivers.xml_driver import XmlDriver
from repro.drivers.ssam_driver import SsamDriver
from repro.drivers.simulink_driver import SimulinkDriver
from repro.drivers.query import QueryError, evaluate_query

__all__ = [
    "ModelDriver",
    "DriverError",
    "DriverRegistry",
    "driver_registry",
    "open_model",
    "TableDriver",
    "Workbook",
    "Sheet",
    "JsonDriver",
    "XmlDriver",
    "SsamDriver",
    "SimulinkDriver",
    "QueryError",
    "evaluate_query",
]
