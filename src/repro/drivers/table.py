"""Table driver — CSV files and CSV-backed "Excel" workbooks.

The paper stores reliability models (Table II) and safety-mechanism models
(Table III) in Excel spreadsheets.  Offline, we represent a *workbook* as
either a single ``.csv`` file (one sheet) or a directory of ``.csv`` files
(one sheet per file).  Cell values are typed on read: integers, floats,
percentages (``"30%"`` → ``0.3``) and booleans are recognised; everything
else stays a string.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.drivers.base import DriverError, ModelDriver, driver_registry


def parse_cell(text: str) -> Any:
    """Convert a raw CSV cell to a typed Python value."""
    value = text.strip()
    if value == "":
        return None
    lowered = value.lower()
    if lowered in ("true", "yes"):
        return True
    if lowered in ("false", "no"):
        return False
    if value.endswith("%"):
        try:
            return float(value[:-1]) / 100.0
        except ValueError:
            return value
    try:
        return int(value)
    except ValueError:
        pass
    try:
        return float(value)
    except ValueError:
        pass
    return value


def format_cell(value: Any) -> str:
    """Inverse of :func:`parse_cell` for writing."""
    if value is None:
        return ""
    if isinstance(value, bool):
        return "Yes" if value else "No"
    return str(value)


class Sheet:
    """One named sheet: a list of dict rows sharing a header."""

    def __init__(self, name: str, rows: Optional[List[Dict[str, Any]]] = None) -> None:
        self.name = name
        self.rows: List[Dict[str, Any]] = list(rows or [])

    @property
    def header(self) -> List[str]:
        seen: Dict[str, None] = {}
        for row in self.rows:
            for key in row:
                seen.setdefault(key)
        return list(seen)

    def append(self, row: Dict[str, Any]) -> None:
        self.rows.append(dict(row))

    def column(self, name: str) -> List[Any]:
        return [row.get(name) for row in self.rows]

    def where(self, **criteria: Any) -> List[Dict[str, Any]]:
        return [
            row
            for row in self.rows
            if all(row.get(k) == v for k, v in criteria.items())
        ]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    @classmethod
    def read_csv(cls, path: Union[str, Path]) -> "Sheet":
        path = Path(path)
        with open(path, newline="", encoding="utf-8") as handle:
            reader = csv.DictReader(handle)
            rows = [
                {key: parse_cell(value or "") for key, value in raw.items()}
                for raw in reader
            ]
        return cls(path.stem, rows)

    def write_csv(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        header = self.header
        with open(path, "w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle)
            writer.writerow(header)
            for row in self.rows:
                writer.writerow([format_cell(row.get(col)) for col in header])
        return path


class Workbook:
    """A named collection of sheets, persisted as a CSV file or directory."""

    def __init__(self, sheets: Optional[List[Sheet]] = None) -> None:
        self._sheets: Dict[str, Sheet] = {}
        for sheet in sheets or []:
            self.add(sheet)

    def add(self, sheet: Sheet) -> Sheet:
        self._sheets[sheet.name] = sheet
        return sheet

    def sheet(self, name: str) -> Sheet:
        try:
            return self._sheets[name]
        except KeyError:
            raise DriverError(
                f"workbook has no sheet {name!r}; sheets: {sorted(self._sheets)}"
            ) from None

    def sheet_names(self) -> List[str]:
        return list(self._sheets)

    @classmethod
    def load(cls, location: Union[str, Path]) -> "Workbook":
        path = Path(location)
        if path.is_dir():
            sheets = [Sheet.read_csv(p) for p in sorted(path.glob("*.csv"))]
            if not sheets:
                raise DriverError(f"workbook directory {path} has no .csv sheets")
            return cls(sheets)
        if path.is_file():
            return cls([Sheet.read_csv(path)])
        raise DriverError(f"no such table model: {path}")

    def save(self, location: Union[str, Path]) -> Path:
        path = Path(location)
        if len(self._sheets) == 1 and path.suffix == ".csv":
            next(iter(self._sheets.values())).write_csv(path)
            return path
        path.mkdir(parents=True, exist_ok=True)
        for sheet in self._sheets.values():
            sheet.write_csv(path / f"{sheet.name}.csv")
        return path


class TableDriver(ModelDriver):
    """Driver over a CSV file or CSV-directory workbook.

    ``metadata`` may name the sheet to treat as the default collection.
    """

    type_name = "table"

    def __init__(self, location: Union[str, Path], metadata: str = "") -> None:
        super().__init__(location, metadata)
        self.workbook = Workbook.load(location)

    def collections(self) -> List[str]:
        names = self.workbook.sheet_names()
        if self.metadata and self.metadata in names:
            names = [self.metadata] + [n for n in names if n != self.metadata]
        return names

    def elements(self, collection: Optional[str] = None) -> List[Dict[str, Any]]:
        name = collection or self.default_collection()
        return list(self.workbook.sheet(name).rows)


driver_registry().register("table", TableDriver)
driver_registry().register("csv", TableDriver)
driver_registry().register("excel", TableDriver)
