"""Driver interface and registry.

A :class:`ModelDriver` exposes a model as named collections of *elements*
(dict-like records or model objects), which is the minimum contract RQL
queries need.  Drivers register themselves under a type name (``csv``,
``table``, ``json``, ``xml``, ``ssam``, ``simulink``); ``ExternalReference``
resolution calls :func:`open_model` with the reference's location / type /
metadata.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional, Union


class DriverError(Exception):
    """Raised for unknown driver types or malformed external models."""


class ModelDriver:
    """Uniform access to one external model.

    Subclasses implement :meth:`collections` and :meth:`elements`; everything
    else (property access, filtering) is uniform.
    """

    #: Registry key; subclasses override.
    type_name = "abstract"

    def __init__(self, location: Union[str, Path], metadata: str = "") -> None:
        self.location = str(location)
        self.metadata = metadata

    # -- contract ------------------------------------------------------------

    def collections(self) -> List[str]:
        """Names of the element collections this model offers."""
        raise NotImplementedError

    def elements(self, collection: Optional[str] = None) -> List[Any]:
        """The elements of ``collection`` (or of the default collection)."""
        raise NotImplementedError

    # -- uniform helpers -------------------------------------------------------

    def default_collection(self) -> str:
        names = self.collections()
        if not names:
            raise DriverError(f"model {self.location!r} has no collections")
        return names[0]

    @staticmethod
    def property_of(element: Any, name: str, default: Any = None) -> Any:
        """Read a named property from an element of any supported shape."""
        if isinstance(element, dict):
            return element.get(name, default)
        getter = getattr(element, "get", None)
        if callable(getter):
            try:
                return getter(name)
            except Exception:
                return default
        return getattr(element, name, default)

    def find(
        self,
        predicate: Callable[[Any], bool],
        collection: Optional[str] = None,
    ) -> List[Any]:
        return [e for e in self.elements(collection) if predicate(e)]

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<{type(self).__name__} {self.location!r}>"


class DriverRegistry:
    """Maps driver type names to driver factories."""

    def __init__(self) -> None:
        self._factories: Dict[str, Callable[..., ModelDriver]] = {}

    def register(
        self, type_name: str, factory: Callable[..., ModelDriver]
    ) -> None:
        self._factories[type_name] = factory

    def registered_types(self) -> Iterable[str]:
        return self._factories.keys()

    def open(
        self, location: Union[str, Path], type_name: str, metadata: str = ""
    ) -> ModelDriver:
        factory = self._factories.get(type_name)
        if factory is None:
            known = sorted(self._factories)
            raise DriverError(
                f"unknown driver type {type_name!r}; registered: {known}"
            )
        return factory(location, metadata)


_REGISTRY = DriverRegistry()


def driver_registry() -> DriverRegistry:
    """The process-wide driver registry."""
    return _REGISTRY


def open_model(
    location: Union[str, Path], type_name: str, metadata: str = ""
) -> ModelDriver:
    """Open an external model — the resolution step of an ``ExternalReference``."""
    return _REGISTRY.open(location, type_name, metadata)
