"""RQL — a small, safe query/expression language over model drivers.

RQL plays the role EOL plays in the paper: the machine-executable language of
``ImplementationConstraint`` bodies and ``ExternalReference`` extraction
rules.  Syntactically RQL is a restricted Python *expression*: the text is
parsed with :mod:`ast` and evaluated over a whitelisted node set, so no
statements, imports, dunder access or unvetted builtins can run.

Supported constructs: literals, arithmetic / boolean / comparison operators,
conditional expressions, list / tuple / set / dict displays, comprehensions,
lambdas, attribute access (non-underscore names), subscripting, and calls.

The evaluation environment provides:

``model``
    the :class:`~repro.drivers.base.ModelDriver` under query (when given);
``rows(collection=None)``
    elements of a driver collection;
``prop(element, name, default=None)``
    uniform property access across dict records and model objects;
plus a safe subset of builtins (``len``, ``sum``, ``min``, ``max``, ``abs``,
``round``, ``sorted``, ``any``, ``all``, ``filter``, ``map``, ``list``,
``set``, ``str``, ``float``, ``int``, ``bool``, ``zip``, ``enumerate``,
``range``).

Example extraction rule (pull a component's FIT from a reliability table)::

    [r['FIT'] for r in rows() if r['Component'] == 'Diode'][0]
"""

from __future__ import annotations

import ast
from typing import Any, Callable, Dict, List, Optional

from repro.drivers.base import ModelDriver


class QueryError(Exception):
    """Raised for parse errors, disallowed constructs or evaluation failures."""


_SAFE_BUILTINS: Dict[str, Any] = {
    "len": len,
    "sum": sum,
    "min": min,
    "max": max,
    "abs": abs,
    "round": round,
    "sorted": sorted,
    "any": any,
    "all": all,
    "filter": filter,
    "map": map,
    "list": list,
    "set": set,
    "tuple": tuple,
    "dict": dict,
    "str": str,
    "float": float,
    "int": int,
    "bool": bool,
    "zip": zip,
    "enumerate": enumerate,
    "range": range,
    "True": True,
    "False": False,
    "None": None,
}

_ALLOWED_NODES = (
    ast.Expression,
    ast.Constant,
    ast.Name,
    ast.Load,
    ast.Store,  # only reachable via comprehension targets / lambda args
    ast.Attribute,
    ast.Subscript,
    ast.Slice,
    ast.Index if hasattr(ast, "Index") else ast.Slice,  # py<3.9 compat shim
    ast.Call,
    ast.keyword,
    ast.BinOp,
    ast.UnaryOp,
    ast.BoolOp,
    ast.Compare,
    ast.IfExp,
    ast.List,
    ast.Tuple,
    ast.Set,
    ast.Dict,
    ast.ListComp,
    ast.SetComp,
    ast.DictComp,
    ast.GeneratorExp,
    ast.comprehension,
    ast.Lambda,
    ast.arguments,
    ast.arg,
    ast.Starred,
    # operators
    ast.Add,
    ast.Sub,
    ast.Mult,
    ast.Div,
    ast.FloorDiv,
    ast.Mod,
    ast.Pow,
    ast.USub,
    ast.UAdd,
    ast.Not,
    ast.And,
    ast.Or,
    ast.Eq,
    ast.NotEq,
    ast.Lt,
    ast.LtE,
    ast.Gt,
    ast.GtE,
    ast.In,
    ast.NotIn,
    ast.Is,
    ast.IsNot,
)


def _check_node(node: ast.AST) -> None:
    for child in ast.walk(node):
        if not isinstance(child, _ALLOWED_NODES):
            raise QueryError(
                f"disallowed construct in query: {type(child).__name__}"
            )
        if isinstance(child, ast.Attribute) and child.attr.startswith("_"):
            raise QueryError(
                f"access to underscore attribute {child.attr!r} is not allowed"
            )
        if isinstance(child, ast.Name) and child.id.startswith("__"):
            raise QueryError(
                f"access to dunder name {child.id!r} is not allowed"
            )


def _prop(element: Any, name: str, default: Any = None) -> Any:
    return ModelDriver.property_of(element, name, default)


def build_environment(
    driver: Optional[ModelDriver] = None,
    variables: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """The evaluation environment for a query."""
    env: Dict[str, Any] = dict(_SAFE_BUILTINS)
    env["prop"] = _prop
    if driver is not None:
        env["model"] = driver
        env["rows"] = lambda collection=None: driver.elements(collection)
        env["collections"] = driver.collections
    if variables:
        for key in variables:
            if key.startswith("_"):
                raise QueryError(f"variable name {key!r} must not start with '_'")
        env.update(variables)
    return env


def compile_query(expression: str) -> Callable[[Dict[str, Any]], Any]:
    """Parse and vet ``expression``; return an evaluator over an environment."""
    if not isinstance(expression, str) or not expression.strip():
        raise QueryError("empty query expression")
    try:
        tree = ast.parse(expression.strip(), mode="eval")
    except SyntaxError as exc:
        raise QueryError(f"syntax error in query: {exc}") from exc
    _check_node(tree)
    code = compile(tree, "<rql>", "eval")

    def run(environment: Dict[str, Any]) -> Any:
        # The environment must be the *globals* mapping: comprehensions and
        # lambdas execute in a nested scope that resolves free names against
        # globals, not the caller's locals.
        namespace = {"__builtins__": {}}
        namespace.update(environment)
        try:
            return eval(code, namespace)  # noqa: S307
        except QueryError:
            raise
        except Exception as exc:
            raise QueryError(
                f"query evaluation failed: {type(exc).__name__}: {exc}"
            ) from exc

    return run


def evaluate_query(
    expression: str,
    driver: Optional[ModelDriver] = None,
    variables: Optional[Dict[str, Any]] = None,
) -> Any:
    """Parse, vet and evaluate an RQL expression."""
    evaluator = compile_query(expression)
    return evaluator(build_environment(driver, variables))
