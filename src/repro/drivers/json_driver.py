"""JSON driver — treats a JSON document as an external model.

Collections are the top-level keys whose values are lists (of objects); a
top-level list becomes the single collection ``items``.  ``metadata`` may
name a dotted path to descend to before collecting (e.g. ``"payload.rows"``).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.drivers.base import DriverError, ModelDriver, driver_registry


class JsonDriver(ModelDriver):
    type_name = "json"

    def __init__(self, location: Union[str, Path], metadata: str = "") -> None:
        super().__init__(location, metadata)
        path = Path(location)
        if not path.is_file():
            raise DriverError(f"no such JSON model: {path}")
        with open(path, encoding="utf-8") as handle:
            self.document: Any = json.load(handle)
        if metadata:
            self.document = self._descend(self.document, metadata)

    @staticmethod
    def _descend(document: Any, dotted: str) -> Any:
        node = document
        for part in dotted.split("."):
            if isinstance(node, dict) and part in node:
                node = node[part]
            else:
                raise DriverError(
                    f"JSON path {dotted!r} not found (missing {part!r})"
                )
        return node

    def collections(self) -> List[str]:
        if isinstance(self.document, list):
            return ["items"]
        if isinstance(self.document, dict):
            lists = [k for k, v in self.document.items() if isinstance(v, list)]
            return lists or list(self.document.keys())
        return []

    def elements(self, collection: Optional[str] = None) -> List[Any]:
        if isinstance(self.document, list):
            return list(self.document)
        name = collection or self.default_collection()
        value = self.document.get(name)
        if isinstance(value, list):
            return list(value)
        if value is None:
            raise DriverError(f"JSON model has no collection {name!r}")
        return [value]

    def value(self, dotted: str) -> Any:
        """Read a scalar at a dotted path from the document root."""
        return self._descend(self.document, dotted)


driver_registry().register("json", JsonDriver)
