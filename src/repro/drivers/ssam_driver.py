"""SSAM driver — opens a persisted SSAM model as an external model.

Collections are metaclass names (``Component``, ``FailureMode``,
``Hazard``, …); elements are the live :class:`ModelObject` instances, so RQL
queries can navigate references.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.drivers.base import DriverError, ModelDriver, driver_registry
from repro.metamodel import ModelObject


class SsamDriver(ModelDriver):
    type_name = "ssam"

    def __init__(self, location: Union[str, Path], metadata: str = "") -> None:
        super().__init__(location, metadata)
        from repro.ssam.model import SSAMModel  # deferred: avoids import cycle

        path = Path(location)
        if not path.is_file():
            raise DriverError(f"no such SSAM model: {path}")
        self.model = SSAMModel.load(path)

    @classmethod
    def from_model(cls, model: Any) -> "SsamDriver":
        """Wrap an in-memory :class:`SSAMModel` without touching disk."""
        driver = cls.__new__(cls)
        ModelDriver.__init__(driver, "<in-memory>", "")
        driver.model = model
        return driver

    def collections(self) -> List[str]:
        names: Dict[str, None] = {}
        for obj in self.model.all_elements():
            names.setdefault(obj.metaclass.name)
        return list(names)

    def elements(self, collection: Optional[str] = None) -> List[ModelObject]:
        name = collection or self.metadata or "Component"
        return self.model.elements_of_kind(name)


driver_registry().register("ssam", SsamDriver)
