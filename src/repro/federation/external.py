"""Resolution of ``ExternalReference`` utilities.

An ``ExternalReference`` names an external model (location + driver type +
metadata) and optionally carries an ``ImplementationConstraint`` whose body
is an RQL query; resolving the reference opens the model through the driver
registry and evaluates the query against it.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Optional

from repro.drivers import DriverError, QueryError, evaluate_query, open_model
from repro.metamodel import ModelObject


class FederationError(Exception):
    """Raised when an external reference cannot be resolved."""


def resolve_external_reference(
    reference: ModelObject,
    variables: Optional[Dict[str, Any]] = None,
    base_dir: Optional[Path] = None,
) -> Any:
    """Open the referenced model and evaluate its extraction query.

    Without a query, the reference resolves to the opened driver itself
    (callers can then query it however they like).  ``variables`` are made
    available to the query (e.g. ``component_class``); relative locations
    resolve against ``base_dir``.
    """
    if not reference.is_kind_of("ExternalReference"):
        raise FederationError(
            f"expected an ExternalReference, got {reference.metaclass.name!r}"
        )
    location = reference.get("location") or ""
    driver_type = reference.get("type") or ""
    if not location or not driver_type:
        raise FederationError(
            "external reference needs both a location and a driver type"
        )
    path = Path(location)
    if base_dir is not None and not path.is_absolute():
        path = Path(base_dir) / path
    try:
        driver = open_model(path, driver_type, reference.get("metadata") or "")
    except DriverError as exc:
        raise FederationError(str(exc)) from exc

    constraint = reference.get("implementationConstraint")
    if constraint is None or not (constraint.get("body") or "").strip():
        return driver
    try:
        return evaluate_query(constraint.get("body"), driver, variables)
    except QueryError as exc:
        raise FederationError(
            f"extraction query failed for {location!r}: {exc}"
        ) from exc
