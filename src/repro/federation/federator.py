"""Federating reliability data into SSAM models (DECISIVE Step 3).

Two pathways, matching the paper's two usages:

- **by reference** (:func:`federate_reliability`): components carry
  ``ExternalReference`` utilities with key ``reliability``; resolution opens
  the referenced workbook/JSON/XML model and pulls FIT and failure modes —
  either through the reference's own RQL query (which must return a dict of
  the shape ``{"fit": ..., "failure_modes": [...]}``) or, when no query is
  given and the target is a Table II-style workbook, through the standard
  reliability loader;
- **in memory** (:func:`aggregate_reliability`): a loaded
  :class:`~repro.reliability.ReliabilityModel` is applied directly by
  component class.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.drivers.base import ModelDriver
from repro.federation.external import FederationError, resolve_external_reference
from repro.metamodel import ModelObject
from repro.reliability import ReliabilityModel
from repro.reliability.model import nature_for_mode_name
from repro.reliability.sources import reliability_from_rows
from repro.ssam import SSAMModel
from repro.ssam.architecture import failure_mode
from repro.ssam.base import external_reference, text_of

#: Utility key marking a reliability reference on a component.
RELIABILITY_KEY = "reliability"

#: Utility key marking a safety-mechanism-catalogue reference.
MECHANISMS_KEY = "safety_mechanisms"


@dataclass
class FederationReport:
    """What a federation pass did."""

    populated: List[str] = field(default_factory=list)
    skipped: List[str] = field(default_factory=list)
    errors: Dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.errors


def attach_reliability_reference(
    component: ModelObject,
    location: str,
    driver_type: str = "table",
    query: str = "",
    metadata: str = "",
) -> ModelObject:
    """Declare where a component's reliability data lives."""
    reference = external_reference(location, driver_type, query, metadata)
    reference.set("key", RELIABILITY_KEY)
    component.add("utilities", reference)
    return reference


def _reliability_reference(component: ModelObject) -> Optional[ModelObject]:
    for utility in component.get("utilities"):
        if (
            utility.is_kind_of("ExternalReference")
            and utility.get("key") == RELIABILITY_KEY
        ):
            return utility
    return None


def _apply_entry_dict(component: ModelObject, data: Dict[str, Any]) -> None:
    if "fit" in data:
        component.set("fit", float(data["fit"]))
    component.set("failureModes", [])
    for mode in data.get("failure_modes", []):
        name = str(mode["name"])
        distribution = float(mode.get("distribution", 0.0))
        if distribution > 1.0:
            distribution /= 100.0
        nature = str(mode.get("nature") or nature_for_mode_name(name))
        component.add(
            "failureModes", failure_mode(name, nature, distribution)
        )


def federate_reliability(
    model: SSAMModel,
    base_dir: Optional[Path] = None,
) -> FederationReport:
    """Resolve every component's reliability reference and populate the model."""
    report = FederationReport()
    for component in model.elements_of_kind("Component"):
        name = text_of(component) or component.get("id")
        reference = _reliability_reference(component)
        if reference is None:
            report.skipped.append(name)
            continue
        component_class = component.get("componentClass") or name
        try:
            resolved = resolve_external_reference(
                reference,
                variables={
                    "component_class": component_class,
                    "component_name": name,
                },
                base_dir=base_dir,
            )
        except FederationError as exc:
            report.errors[name] = str(exc)
            continue
        try:
            _populate_from_resolved(component, component_class, resolved)
        except Exception as exc:  # malformed query results are user errors
            report.errors[name] = f"{type(exc).__name__}: {exc}"
            continue
        report.populated.append(name)
    return report


def _populate_from_resolved(
    component: ModelObject, component_class: str, resolved: Any
) -> None:
    if isinstance(resolved, ModelDriver):
        # No query: interpret the target as a Table II workbook.
        catalogue = reliability_from_rows(
            resolved.elements(), check_distributions=False
        )
        entry = catalogue.lookup(component_class)
        _apply_entry_dict(
            component,
            {
                "fit": entry.fit,
                "failure_modes": [
                    {
                        "name": mode.name,
                        "distribution": mode.distribution,
                        "nature": mode.nature,
                    }
                    for mode in entry.failure_modes
                ],
            },
        )
        return
    if isinstance(resolved, dict):
        _apply_entry_dict(component, resolved)
        return
    if isinstance(resolved, (int, float)):
        component.set("fit", float(resolved))
        return
    raise FederationError(
        f"extraction query returned unsupported shape "
        f"{type(resolved).__name__}; expected driver, dict or number"
    )


def attach_mechanism_reference(
    model_root: ModelObject,
    location: str,
    driver_type: str = "table",
    metadata: str = "",
) -> ModelObject:
    """Declare where the model's safety-mechanism catalogue lives (attached
    to the model root; Step 4b pulls it from there)."""
    reference = external_reference(location, driver_type, "", metadata)
    reference.set("key", MECHANISMS_KEY)
    model_root.add("utilities", reference)
    return reference


def federate_mechanisms(model: SSAMModel, base_dir: Optional[Path] = None):
    """Resolve the model's safety-mechanism reference into a catalogue.

    Returns a :class:`~repro.safety.mechanisms.SafetyMechanismModel`, or
    ``None`` when the model declares no catalogue reference.
    """
    from repro.safety.mechanisms import (
        MechanismError,
        MechanismSpec,
        SafetyMechanismModel,
    )

    reference = None
    for utility in model.root.get("utilities"):
        if (
            utility.is_kind_of("ExternalReference")
            and utility.get("key") == MECHANISMS_KEY
        ):
            reference = utility
            break
    if reference is None:
        return None
    resolved = resolve_external_reference(reference, base_dir=base_dir)
    if not isinstance(resolved, ModelDriver):
        raise FederationError(
            "mechanism references must resolve to a driver (no query)"
        )
    catalogue = SafetyMechanismModel()
    for index, row in enumerate(resolved.elements()):
        try:
            coverage = float(row.get("Coverage", row.get("Cov.", 0.0)) or 0.0)
            if coverage > 1.0:
                coverage /= 100.0
            catalogue.add(
                MechanismSpec(
                    component_class=str(row["Component"]),
                    failure_mode=str(row["Failure_Mode"]),
                    name=str(row["Safety_Mechanism"]),
                    coverage=coverage,
                    cost=float(row.get("Cost(hrs)", row.get("Cost", 0.0)) or 0.0),
                )
            )
        except (KeyError, MechanismError) as exc:
            raise FederationError(
                f"malformed mechanism row {index + 1}: {exc}"
            ) from exc
    return catalogue


def aggregate_reliability(
    model: SSAMModel,
    reliability: ReliabilityModel,
    overwrite: bool = False,
) -> FederationReport:
    """Apply an in-memory reliability model by component class.

    Components that already carry failure modes are left alone unless
    ``overwrite`` is set (hand-modelled data wins over catalogue data).
    """
    report = FederationReport()
    for component in model.elements_of_kind("Component"):
        name = text_of(component) or component.get("id")
        if component.get("failureModes") and not overwrite:
            report.skipped.append(name)
            continue
        entry = reliability.get(component.get("componentClass") or name)
        if entry is None:
            report.skipped.append(name)
            continue
        _apply_entry_dict(
            component,
            {
                "fit": entry.fit,
                "failure_modes": [
                    {
                        "name": mode.name,
                        "distribution": mode.distribution,
                        "nature": mode.nature,
                    }
                    for mode in entry.failure_modes
                ],
            },
        )
        report.populated.append(name)
    return report
