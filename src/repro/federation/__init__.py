"""Model federation — pulling data from heterogeneous external models.

SSAM's ``ExternalReference`` utility carries a location, a driver type,
metadata and a machine-executable extraction query; this package executes
them:

- :func:`resolve_external_reference` — open the referenced model through
  the driver registry and run the RQL query against it;
- :func:`attach_reliability_reference` — declare where a component's
  reliability data lives;
- :func:`federate_reliability` — DECISIVE Step 3 for SSAM models: resolve
  every reliability reference and populate FIT / failure modes;
- :func:`aggregate_reliability` — the driverless variant: apply an
  in-memory :class:`~repro.reliability.ReliabilityModel` by component class.
"""

from repro.federation.external import (
    FederationError,
    resolve_external_reference,
)
from repro.federation.federator import (
    FederationReport,
    aggregate_reliability,
    attach_mechanism_reference,
    attach_reliability_reference,
    federate_mechanisms,
    federate_reliability,
)

__all__ = [
    "FederationError",
    "resolve_external_reference",
    "attach_reliability_reference",
    "federate_reliability",
    "attach_mechanism_reference",
    "federate_mechanisms",
    "aggregate_reliability",
    "FederationReport",
]
