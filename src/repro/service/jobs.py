"""The always-on analysis engine: async job queue + fingerprint cache.

Every analysis used to be a cold CLI run: load the whole model, compute,
exit.  :class:`AnalysisService` is the long-lived shape (ROADMAP item 1):

- **submit** an :class:`AnalysisRequest` (fmea / fmeda / search) and get an
  :class:`AnalysisJob` back immediately; a pool of worker *threads* drains
  the queue, dispatching into :class:`FaultInjectionCampaign` with the
  full retry/checkpoint machinery and the process-wide warm worker pool;
- results are **cached against the analysis ledger**, keyed by the
  campaign fingerprint (content hash of model + reliability + solver
  config) combined with the classification/deployment config — an
  identical submission is served straight from the ledger, bit-identical
  to the computed rows, without constructing the model at all.  Lookups
  go through the ledger's persistent cache-key index
  (:class:`~repro.obs.ledger.LedgerIndex`): one dict hit plus one line
  seek, O(1) in history size, under a lock held only for the seek;
- identical submissions arriving while one is already computing are
  **coalesced single-flight**: the first becomes the leader, every later
  one attaches to its in-flight computation and receives the same rows
  bit-identically (``coalesced: true`` plus the leader's correlation id
  in ``GET /jobs/<id>``) — N clients asking the same question cost one
  campaign (dogpile suppression);
- ``service_*`` counters/gauges/histograms land in the ``repro.obs``
  metrics registry (scraped live via ``GET /metrics``), and job lifecycle
  events (``job_submitted`` / ``job_started`` / ``job_finished``) ride the
  event bus into ``GET /events`` and the ``/healthz`` summary.

Requests carry models as *payloads* (the ``repro-simulink/1`` dict format)
rather than live objects: fingerprinting hashes the raw payload without
materialising a :class:`SimulinkModel`, so a cache hit costs one ledger
scan — the model-access analogue of :class:`LazyModelResource`'s
load-on-reference semantics.  Materialised models are kept in a small
digest-keyed LRU so concurrent tenants re-computing over the same model
parse it once.
"""

from __future__ import annotations

import hashlib
import json
import queue
import threading
import time
import uuid
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro import obs

__all__ = [
    "AnalysisRequest",
    "AnalysisJob",
    "AnalysisService",
    "ServiceError",
    "reliability_payload",
    "reliability_from_payload",
]

_KINDS = ("fmea", "fmeda", "search")

#: Materialised models kept warm, by model-payload digest.
_MODEL_CACHE_SIZE = 16


class ServiceError(Exception):
    """Malformed request or unknown job."""


# -- request --------------------------------------------------------------


def reliability_payload(reliability) -> List[Dict[str, object]]:
    """Serialise a :class:`ReliabilityModel` for an HTTP request body."""
    return [
        {
            "component_class": entry.component_class,
            "fit": entry.fit,
            "failure_modes": [
                {
                    "name": mode.name,
                    "distribution": mode.distribution,
                    "nature": mode.nature,
                }
                for mode in entry.failure_modes
            ],
        }
        for entry in reliability.entries()
    ]


def reliability_from_payload(payload: Sequence[Mapping[str, object]]):
    """The inverse of :func:`reliability_payload`."""
    from repro.reliability import ReliabilityModel
    from repro.reliability.model import ComponentReliability, FailureModeSpec

    model = ReliabilityModel()
    for entry in payload:
        model.add(
            ComponentReliability(
                component_class=str(entry["component_class"]),
                # fit/distribution pass through uncoerced: the campaign
                # fingerprint hashes them verbatim, and float(2) != 2 in
                # JSON — coercing here would make a payload round-trip
                # fingerprint differently from the original model.
                fit=entry["fit"],  # type: ignore[arg-type]
                failure_modes=[
                    FailureModeSpec(
                        name=str(mode["name"]),
                        distribution=mode["distribution"],  # type: ignore[arg-type]
                        nature=str(mode.get("nature", "")),
                    )
                    for mode in entry.get("failure_modes", [])  # type: ignore[union-attr]
                ],
            )
        )
    return model


class _PayloadModel:
    """Duck-typed stand-in for :class:`SimulinkModel` during fingerprinting.

    :func:`campaign_fingerprint` only calls ``to_dict()``; handing it the
    raw request payload hashes exactly what a materialised model would
    serialise back to, without building a single block object.
    """

    __slots__ = ("_payload",)

    def __init__(self, payload: Mapping[str, object]) -> None:
        self._payload = payload

    def to_dict(self) -> Mapping[str, object]:
        return self._payload

    @property
    def name(self) -> str:
        return str(self._payload.get("name", "model"))


@dataclass
class AnalysisRequest:
    """One analysis submission.

    ``model`` is a ``repro-simulink/1`` payload dict (what
    ``SimulinkModel.to_dict()`` produces); ``reliability`` is the
    :func:`reliability_payload` list form.  ``config`` carries campaign
    and classification parameters (``threshold``, ``sensors``,
    ``assume_stable``, ``min_absolute_delta``, ``analysis``, ``t_stop``,
    ``dt``, ``workers``, ``strategy``, ``solver_backend``,
    ``job_timeout``, ``max_retries``).  ``deployments`` (fmeda) and
    ``mechanisms`` + ``target_asil`` (search) extend the base FMEA.
    """

    kind: str
    model: Mapping[str, object]
    reliability: List[Dict[str, object]]
    config: Dict[str, object] = field(default_factory=dict)
    deployments: List[Dict[str, object]] = field(default_factory=list)
    mechanisms: List[Dict[str, object]] = field(default_factory=list)
    target_asil: str = ""
    tenant: str = ""

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ServiceError(
                f"kind must be one of {_KINDS}, got {self.kind!r}"
            )
        if not isinstance(self.model, Mapping) or "diagram" not in self.model:
            raise ServiceError(
                "model must be a repro-simulink/1 payload dict "
                "(SimulinkModel.to_dict())"
            )
        if not isinstance(self.reliability, (list, tuple)):
            raise ServiceError("reliability must be a list of entry dicts")
        if self.kind == "search" and not self.mechanisms:
            raise ServiceError("search requests need a mechanisms catalogue")

    @classmethod
    def from_payload(cls, payload: Mapping[str, object]) -> "AnalysisRequest":
        if not isinstance(payload, Mapping):
            raise ServiceError("request body must be a JSON object")
        try:
            return cls(
                kind=str(payload.get("kind", "fmea")),
                model=payload["model"],  # type: ignore[arg-type]
                reliability=list(payload.get("reliability", [])),  # type: ignore[arg-type]
                config=dict(payload.get("config", {})),  # type: ignore[arg-type]
                deployments=list(payload.get("deployments", [])),  # type: ignore[arg-type]
                mechanisms=list(payload.get("mechanisms", [])),  # type: ignore[arg-type]
                target_asil=str(payload.get("target_asil", "")),
                tenant=str(payload.get("tenant", "")),
            )
        except KeyError as exc:
            raise ServiceError(f"request missing field {exc.args[0]!r}") from None
        except TypeError as exc:
            raise ServiceError(f"malformed request: {exc}") from None

    # -- keys -------------------------------------------------------------

    def fingerprint(self) -> str:
        """The campaign fingerprint, computed off the raw payloads."""
        from repro.safety.resilience import campaign_fingerprint

        return campaign_fingerprint(
            _PayloadModel(self.model),
            reliability_from_payload(self.reliability),
            str(self.config.get("analysis", "dc")),
            float(self.config.get("t_stop", 5e-3)),  # type: ignore[arg-type]
            float(self.config.get("dt", 5e-5)),  # type: ignore[arg-type]
            None,
        )

    def cache_key(self, fingerprint: Optional[str] = None) -> str:
        """Ledger cache key: fingerprint ⊕ everything else that shapes rows.

        The campaign fingerprint deliberately excludes classification
        thresholds (checkpointed raw outcomes stay valid across them), but
        the *rows* a client receives do depend on them — so the cache key
        folds in the classification config, the deployment set and the
        search target on top of the fingerprint.
        """
        payload = {
            "fingerprint": fingerprint or self.fingerprint(),
            "kind": self.kind,
            "threshold": self.config.get("threshold", 0.2),
            "min_absolute_delta": self.config.get("min_absolute_delta"),
            "sensors": self.config.get("sensors"),
            "assume_stable": sorted(
                str(s) for s in self.config.get("assume_stable", [])  # type: ignore[union-attr]
            ),
            "deployments": self.deployments,
            "mechanisms": self.mechanisms,
            "target_asil": self.target_asil,
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def model_digest(self) -> str:
        blob = json.dumps(self.model, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# -- job ------------------------------------------------------------------


@dataclass
class AnalysisJob:
    """Lifecycle record of one submission: queued → running → done|failed."""

    id: str
    kind: str
    system: str
    tenant: str = ""
    state: str = "queued"
    cached: bool = False
    #: True when this job attached to another job's in-flight computation
    #: instead of running its own campaign; ``coalesced_with`` carries the
    #: leader's correlation id so the shared computation's event stream,
    #: logs and ledger entry are one hop away.
    coalesced: bool = False
    coalesced_with: str = ""
    fingerprint: str = ""
    cache_key: str = ""
    #: Minted at submit; stamps every event/span/log/ledger entry the job
    #: produces (including inside pool workers) and keys the job's
    #: ``/jobs/<id>/events`` stream.
    correlation_id: str = ""
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    error: str = ""
    result: Optional[Dict[str, object]] = None
    #: The request travels with the job internally; never serialised out
    #: (model payloads can be megabytes).
    request: Optional[AnalysisRequest] = None
    done_event: threading.Event = field(default_factory=threading.Event)

    @property
    def wall_seconds(self) -> Optional[float]:
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    def to_dict(self, include_result: bool = True) -> Dict[str, object]:
        out: Dict[str, object] = {
            "id": self.id,
            "kind": self.kind,
            "system": self.system,
            "tenant": self.tenant,
            "state": self.state,
            "cached": self.cached,
            "coalesced": self.coalesced,
            "coalesced_with": self.coalesced_with,
            "fingerprint": self.fingerprint,
            "correlation_id": self.correlation_id,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "wall_seconds": self.wall_seconds,
            "error": self.error,
        }
        if include_result:
            out["result"] = self.result
        return out


# -- service --------------------------------------------------------------


class AnalysisService:
    """Async job queue over :class:`FaultInjectionCampaign` with a
    ledger-backed, fingerprint-keyed result cache.

    Parameters
    ----------
    ledger:
        an :class:`~repro.obs.ledger.AnalysisLedger` (or a path to one);
        doubles as the result cache and the provenance record — every
        computed job appends an entry, every cache hit is served from one;
    workers:
        worker *threads* draining the queue.  Each campaign may itself fan
        out over the process-wide warm pool, so a handful of threads
        saturates the machine;
    checkpoint_dir:
        when set, every campaign checkpoints to
        ``<dir>/<fingerprint>.jsonl`` with ``resume=True`` — a job retried
        after a crash (or a near-identical tenant model) skips completed
        injections;
    history:
        completed jobs kept in memory for ``GET /jobs`` (bounded);
    slo_objectives:
        service-level objectives evaluated by the built-in
        :class:`~repro.obs.slo.SLOEngine` — a sequence of
        :class:`~repro.obs.slo.Objective` objects or declarative dicts
        (see ``docs/observability.md``); ``None`` uses the stock
        job-success-rate / cache-hit-latency / queue-wait objectives.
    """

    def __init__(
        self,
        ledger,
        workers: int = 2,
        checkpoint_dir: Optional[Union[str, Path]] = None,
        history: int = 256,
        slo_objectives=None,
    ) -> None:
        from repro.obs.ledger import AnalysisLedger
        from repro.obs.slo import SLOEngine, objectives_from_config

        self.ledger = (
            ledger if isinstance(ledger, AnalysisLedger)
            else AnalysisLedger(ledger)
        )
        if slo_objectives and not hasattr(slo_objectives[0], "budget"):
            slo_objectives = objectives_from_config(slo_objectives)
        self.slo = SLOEngine(objectives=slo_objectives)
        self.worker_count = max(1, int(workers))
        self.checkpoint_dir = (
            Path(checkpoint_dir) if checkpoint_dir is not None else None
        )
        self.history = max(8, int(history))
        self._queue: "queue.Queue[Optional[str]]" = queue.Queue()
        self._jobs: "OrderedDict[str, AnalysisJob]" = OrderedDict()
        self._lock = threading.Lock()
        self._ledger_lock = threading.Lock()
        #: Single-flight registry: cache key -> the job currently
        #: computing that key.  Later identical submissions attach to the
        #: leader instead of starting their own campaign.
        self._inflight: Dict[str, AnalysisJob] = {}
        self._inflight_lock = threading.Lock()
        self._model_cache: "OrderedDict[str, object]" = OrderedDict()
        self._model_cache_lock = threading.Lock()
        self._threads: List[threading.Thread] = []
        self._stopping = False

    # -- lifecycle --------------------------------------------------------

    def start(self) -> "AnalysisService":
        if self._threads:
            return self
        self._stopping = False
        obs.gauge("service_workers").set(self.worker_count)
        # Baseline SLO snapshot: burn-rate windows need a "before" to diff
        # against, and a young service's windows span its whole life.
        self.slo.observe()
        obs.log("info", "analysis service started", workers=self.worker_count)
        for index in range(self.worker_count):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"same-analysis-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        return self

    def stop(self, timeout: float = 5.0) -> None:
        self._stopping = True
        for _ in self._threads:
            self._queue.put(None)
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._threads = []

    def __enter__(self) -> "AnalysisService":
        return self.start()

    def __exit__(self, *exc: object) -> bool:
        self.stop()
        return False

    # -- submission -------------------------------------------------------

    def submit(
        self, request: Union[AnalysisRequest, Mapping[str, object]]
    ) -> AnalysisJob:
        """Enqueue one analysis; returns the job record immediately."""
        if not isinstance(request, AnalysisRequest):
            request = AnalysisRequest.from_payload(request)
        if self._stopping or not self._threads:
            raise ServiceError("service is not running; call start()")
        job = AnalysisJob(
            id=uuid.uuid4().hex[:12],
            kind=request.kind,
            system=_PayloadModel(request.model).name,
            tenant=request.tenant,
            submitted_at=time.time(),
            request=request,
            correlation_id=obs.mint_correlation_id(),
        )
        with self._lock:
            self._jobs[job.id] = job
            self._trim_history()
        obs.counter("service_jobs_submitted").inc()
        self._queue.put(job.id)
        obs.gauge("service_queue_depth").set(self._queue.qsize())
        with obs.correlation(job.correlation_id):
            obs.emit_event(
                "job_submitted", job=job.id, kind=job.kind, system=job.system
            )
            obs.log(
                "info", "job submitted", job=job.id, kind=job.kind,
                system=job.system, tenant=job.tenant or None,
            )
        return job

    def _trim_history(self) -> None:
        """Drop the oldest *finished* jobs past the history bound
        (caller holds the lock)."""
        finished = [
            job_id for job_id, job in self._jobs.items()
            if job.state in ("done", "failed")
        ]
        excess = len(self._jobs) - self.history
        for job_id in finished[:max(0, excess)]:
            del self._jobs[job_id]

    # -- inspection -------------------------------------------------------

    def job(self, job_id: str) -> AnalysisJob:
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise ServiceError(f"unknown job {job_id!r}") from None

    def jobs(self) -> List[AnalysisJob]:
        with self._lock:
            return list(self._jobs.values())

    def wait(self, job_id: str, timeout: Optional[float] = None) -> AnalysisJob:
        """Block until the job finishes (or the timeout lapses)."""
        job = self.job(job_id)
        job.done_event.wait(timeout)
        return job

    def status(self) -> Dict[str, object]:
        """Service summary for ``/healthz`` and ``GET /jobs``."""
        with self._lock:
            states: Dict[str, int] = {}
            for job in self._jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
        wall = obs.histogram("service_job_wall_seconds")
        return {
            "running": bool(self._threads) and not self._stopping,
            "workers": self.worker_count,
            "queue_depth": self._queue.qsize(),
            "jobs": states,
            "cache_hits": int(obs.counter("service_cache_hits").value),
            "cache_misses": int(obs.counter("service_cache_misses").value),
            "inflight": len(self._inflight),
            "coalesced_jobs": int(
                obs.counter("service_coalesced_jobs").value
            ),
            "job_wall_p50": round(wall.quantile(0.50), 6),
            "job_wall_p99": round(wall.quantile(0.99), 6),
            "slo": self.slo.evaluate(),
        }

    # -- execution --------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            job_id = self._queue.get()
            if job_id is None:
                return
            obs.gauge("service_queue_depth").set(self._queue.qsize())
            try:
                job = self.job(job_id)
            except ServiceError:
                continue  # evicted from history before a worker got to it
            self._run_job(job)

    def _run_job(self, job: AnalysisJob) -> None:
        # The whole job — campaign, pool workers, ledger append, every
        # event/span/log — runs under the job's correlation id.
        with obs.correlation(job.correlation_id or None):
            self._run_job_correlated(job)

    def _run_job_correlated(self, job: AnalysisJob) -> None:
        job.state = "running"
        job.started_at = time.time()
        obs.histogram("service_queue_wait_seconds").observe(
            job.started_at - job.submitted_at
        )
        obs.emit_event("job_started", job=job.id, kind=job.kind)
        obs.log("info", "job started", job=job.id, kind=job.kind)
        try:
            request = job.request
            assert request is not None
            job.fingerprint = request.fingerprint()
            job.cache_key = request.cache_key(job.fingerprint)
            self._resolve(job, request)
            job.state = "done"
            obs.counter("service_jobs_completed").inc()
        except Exception as exc:  # noqa: BLE001 — a bad job must not kill a worker
            job.error = f"{type(exc).__name__}: {exc}"
            job.state = "failed"
            obs.counter("service_jobs_failed").inc()
            obs.log("error", "job failed", job=job.id, error=job.error)
        finally:
            job.finished_at = time.time()
            job.request = None  # free the (possibly large) payload
            wall = job.finished_at - job.submitted_at
            obs.histogram("service_job_wall_seconds").observe(wall)
            if job.cached:
                # The cache-hit latency SLO watches this one: a hit that
                # took as long as a compute means the ledger scan degraded.
                obs.histogram("service_cache_hit_wall_seconds").observe(wall)
            obs.emit_event(
                "job_finished",
                job=job.id,
                kind=job.kind,
                state=job.state,
                cached=job.cached,
                wall_seconds=round(wall, 6),
            )
            obs.log(
                "info", "job finished", job=job.id, state=job.state,
                cached=job.cached, wall_seconds=round(wall, 6),
            )
            # Post-job SLO snapshot: gives the burn-rate windows their
            # cadence (failure bursts become visible on the next evaluate).
            self.slo.observe()
            self._export_job_log(job)
            job.done_event.set()

    def _export_job_log(self, job: AnalysisJob) -> None:
        """Attach the job's structured-log slice to its ledger entry.

        Only for computed jobs (cache hits made no entry of their own) and
        only when the log plane is on; export failures are swallowed — an
        artifact is telemetry, not part of the result."""
        if not obs.logs_enabled() or not job.correlation_id or job.cached:
            return
        result = job.result if isinstance(job.result, dict) else None
        entry_id = result.get("entry") if result else None
        if not entry_id:
            return
        try:
            path = self.ledger.path.parent / "logs" / f"{job.id}.jsonl"
            obs.log_plane().write_jsonl(path, cid=job.correlation_id)
            with self._ledger_lock:
                self.ledger.attach_artifact(
                    str(entry_id), path, kind="service-log"
                )
        except Exception:  # noqa: BLE001 — never fail the job over telemetry
            pass

    # -- cache ------------------------------------------------------------

    def _cache_lookup(self, cache_key: str) -> Optional[Dict[str, object]]:
        """Serve an identical prior submission from the ledger, or None.

        Entries carry their cache key in ``meta.service_cache_key``; the
        rows stored in the entry are exactly the payload recorded when the
        result was computed, so a hit is bit-identical to the original.
        The lock only covers the index seek — one `latest_by_cache_key`
        lookup — so a lookup can no longer stall concurrent appends for
        the duration of a full-file parse.
        """
        with self._ledger_lock:
            entry = self.ledger.latest_by_cache_key(cache_key)
        if entry is None:
            return None
        return {
            "rows": entry.rows,
            "spfm": entry.spfm,
            "asil": entry.asil,
            "entry": entry.entry_id,
            "metrics": entry.metrics,
            "from_cache": True,
        }

    # -- single-flight coalescing -----------------------------------------

    def _acquire_flight(self, job: AnalysisJob) -> Optional[AnalysisJob]:
        """Register *job* as the in-flight leader for its cache key.

        Returns ``None`` when the job became the leader, or the current
        leader job when an identical computation is already running (the
        caller then waits on the leader instead of recomputing).
        """
        with self._inflight_lock:
            leader = self._inflight.get(job.cache_key)
            if leader is not None and leader is not job:
                return leader
            self._inflight[job.cache_key] = job
            obs.gauge("service_inflight_jobs").set(len(self._inflight))
        return None

    def _release_flight(self, job: AnalysisJob) -> None:
        with self._inflight_lock:
            if self._inflight.get(job.cache_key) is job:
                del self._inflight[job.cache_key]
            obs.gauge("service_inflight_jobs").set(len(self._inflight))

    def _resolve(self, job: AnalysisJob, request: AnalysisRequest) -> None:
        """Produce ``job.result`` — from cache, coalesced, or computed.

        Order matters: the ledger cache is consulted first (a landed
        result beats everything), then the in-flight registry.  A job
        that loses the registry race waits on the leader's completion and
        copies its result dict — the ``rows`` list is the leader's own
        object, so followers are bit-identical by construction.  If the
        leader fails, the follower retries from the top (the leader's
        failure is its own; an identical submission deserves a fresh
        attempt, which will find the flight slot free).
        """
        while True:
            cached = self._cache_lookup(job.cache_key)
            if cached is not None:
                job.result = cached
                job.cached = True
                obs.counter("service_cache_hits").inc()
                return
            leader = self._acquire_flight(job)
            if leader is None:
                try:
                    # Double-check under leadership: a previous leader may
                    # have landed its entry between our lookup and the
                    # registry acquisition.
                    cached = self._cache_lookup(job.cache_key)
                    if cached is not None:
                        job.result = cached
                        job.cached = True
                        obs.counter("service_cache_hits").inc()
                        return
                    obs.counter("service_cache_misses").inc()
                    job.result = self._compute(request, job)
                    return
                finally:
                    self._release_flight(job)
            job.coalesced = True
            job.coalesced_with = leader.correlation_id
            obs.counter("service_coalesced_jobs").inc()
            obs.emit_event("job_coalesced", job=job.id, leader=leader.id)
            obs.log(
                "info", "job coalesced", job=job.id,
                leader=leader.id, cache_key=job.cache_key[:16],
            )
            leader.done_event.wait()
            if leader.state == "done" and isinstance(leader.result, dict):
                result = dict(leader.result)
                result["coalesced"] = True
                job.result = result
                return
            # Leader failed or was evicted mid-flight: this job is on its
            # own again. Reset the coalescing markers and retry.
            job.coalesced = False
            job.coalesced_with = ""

    # -- computation ------------------------------------------------------

    def _materialize_model(self, request: AnalysisRequest):
        """The payload as a :class:`SimulinkModel`, via the digest LRU."""
        from repro.simulink import SimulinkModel

        digest = request.model_digest()
        with self._model_cache_lock:
            model = self._model_cache.get(digest)
            if model is not None:
                self._model_cache.move_to_end(digest)
                obs.counter("service_model_cache_hits").inc()
                return model
        model = SimulinkModel.from_dict(dict(request.model))
        with self._model_cache_lock:
            self._model_cache[digest] = model
            while len(self._model_cache) > _MODEL_CACHE_SIZE:
                self._model_cache.popitem(last=False)
        return model

    def _campaign(
        self,
        request: AnalysisRequest,
        fingerprint: str,
        correlation_id: Optional[str] = None,
    ):
        from repro.safety.campaign import FaultInjectionCampaign

        config = request.config
        checkpoint = None
        resume = False
        if self.checkpoint_dir is not None:
            checkpoint = self.checkpoint_dir / f"{fingerprint[:16]}.jsonl"
            resume = True
        kwargs: Dict[str, object] = {}
        for key in (
            "threshold", "min_absolute_delta", "analysis", "t_stop", "dt",
            "workers", "strategy", "max_retries", "job_timeout",
            "solver_backend",
        ):
            if key in config and config[key] is not None:
                kwargs[key] = config[key]
        sensors = config.get("sensors")
        assume_stable = config.get("assume_stable", ())
        return FaultInjectionCampaign(
            self._materialize_model(request),
            reliability_from_payload(request.reliability),
            sensors=sensors,  # type: ignore[arg-type]
            assume_stable=tuple(assume_stable),  # type: ignore[arg-type]
            checkpoint=checkpoint,
            resume=resume,
            correlation_id=correlation_id,
            **kwargs,  # type: ignore[arg-type]
        )

    def _compute(
        self, request: AnalysisRequest, job: AnalysisJob
    ) -> Dict[str, object]:
        from repro.obs.ledger import (
            fmea_rows_payload,
            fmeda_rows_payload,
            record_fmea,
            record_fmeda,
            record_optimizer,
        )
        from repro.safety.metrics import asil_from_spfm, spfm

        from repro.obs.slo import summarize

        meta = {
            "service": True,
            "service_cache_key": job.cache_key,
            "service_job": job.id,
            "correlation_id": job.correlation_id,
        }
        if request.tenant:
            meta["tenant"] = request.tenant
        fmea = self._campaign(
            request, job.fingerprint, correlation_id=job.correlation_id
        ).run()
        # SLO state at record time: a run recorded while the service was
        # burning its error budget carries the breach in its provenance,
        # which is what the `watch-regressions` slo rule checks.
        meta["slo"] = summarize(self.slo.evaluate())
        reliability = reliability_from_payload(request.reliability)
        model = self._materialize_model(request)
        config = {
            "analysis": request.config.get("analysis", "dc"),
            "t_stop": request.config.get("t_stop", 5e-3),
            "dt": request.config.get("dt", 5e-5),
            "threshold": request.config.get("threshold", 0.2),
        }

        if request.kind == "fmea":
            value = spfm(fmea, [])
            with self._ledger_lock:
                entry = record_fmea(
                    self.ledger, fmea, model=model, reliability=reliability,
                    spfm=value, asil=asil_from_spfm(value), config=config,
                    meta=meta,
                )
            return {
                "rows": fmea_rows_payload(fmea),
                "spfm": value,
                "asil": asil_from_spfm(value),
                "entry": entry.entry_id,
                "metrics": entry.metrics,
                "from_cache": False,
            }

        if request.kind == "fmeda":
            from repro.safety import run_fmeda
            from repro.safety.mechanisms import Deployment

            deployments = [
                Deployment(
                    component=str(d["component"]),
                    failure_mode=str(d["failure_mode"]),
                    mechanism=str(d.get("mechanism", "")),
                    coverage=float(d.get("coverage", 0.0)),  # type: ignore[arg-type]
                    cost=float(d.get("cost", 0.0)),  # type: ignore[arg-type]
                )
                for d in request.deployments
            ]
            fmeda = run_fmeda(fmea, deployments)
            with self._ledger_lock:
                entry = record_fmeda(
                    self.ledger, fmeda, model=model,
                    reliability=reliability, config=config, meta=meta,
                )
            return {
                "rows": fmeda_rows_payload(fmeda),
                "spfm": fmeda.spfm,
                "asil": fmeda.asil,
                "total_cost": fmeda.total_cost,
                "entry": entry.entry_id,
                "metrics": entry.metrics,
                "from_cache": False,
            }

        # kind == "search"
        from repro.safety import search_for_target
        from repro.safety.mechanisms import MechanismSpec, SafetyMechanismModel

        catalogue = SafetyMechanismModel(
            MechanismSpec(
                component_class=str(m["component_class"]),
                failure_mode=str(m["failure_mode"]),
                name=str(m["name"]),
                coverage=float(m.get("coverage", 0.0)),  # type: ignore[arg-type]
                cost=float(m.get("cost", 0.0)),  # type: ignore[arg-type]
            )
            for m in request.mechanisms
        )
        strategy = str(request.config.get("search_strategy", "dp"))
        plan = search_for_target(
            fmea, catalogue, request.target_asil, strategy=strategy
        )
        if plan is None:
            # No deployment meets the target: a real answer, but not a
            # cacheable ledger entry (record_optimizer needs a plan).
            return {
                "plan": None,
                "target_asil": request.target_asil,
                "from_cache": False,
            }
        with self._ledger_lock:
            entry = record_optimizer(
                self.ledger, plan, system=fmea.system, model=model,
                reliability=reliability,
                config={**config, "target": request.target_asil,
                        "strategy": strategy},
                meta=meta,
            )
        return {
            "rows": entry.rows,
            "spfm": plan.spfm,
            "asil": plan.asil,
            "cost": plan.cost,
            "entry": entry.entry_id,
            "target_asil": request.target_asil,
            "from_cache": False,
        }
