"""HTTP surface of the analysis service, layered on the live-telemetry
server.

:class:`AnalysisServiceServer` extends
:class:`~repro.obs.live.LiveTelemetryServer` — the same threaded stdlib
server that already exposes ``/metrics``, ``/healthz`` and ``/events`` —
with the job endpoints:

- ``POST /jobs`` — submit an analysis request (JSON body; see
  :class:`~repro.service.jobs.AnalysisRequest`); replies ``202`` with the
  job id and its polling URL;
- ``GET /jobs`` — queue state: the service summary plus every job the
  bounded history holds (without result bodies);
- ``GET /jobs/<id>`` — one job's full record, result included once done;
  jobs that attached to another job's in-flight computation report
  ``coalesced: true`` with the leader's correlation id in
  ``coalesced_with`` (see single-flight coalescing in
  :mod:`repro.service.jobs`);
- ``GET /jobs/<id>/events`` — the job's own SSE stream: the ``/events``
  machinery filtered to the job's ``correlation_id``, so one tenant
  watches exactly their campaign's events (pool-worker events included)
  while another tenant's concurrent job streams elsewhere.  Replay,
  ``?since=``/``Last-Event-ID`` resume and ``?limit=`` behave exactly
  like ``/events``.

``/healthz`` gains a ``service`` section (queue depth, per-state job
counts, cache hit/miss totals, in-flight registry size and coalesced-job
total) and an ``slo`` section (the
:class:`~repro.obs.slo.SLOEngine` report: overall ``ok|warning|breached``
plus per-objective burn rates) via the :meth:`healthz_extra` hook, and the
``service_*`` metrics land on the existing ``/metrics`` scrape, so one
server answers both "is it alive" and "what is it doing".
"""

from __future__ import annotations

import json
from typing import Dict, Optional

from repro.obs.live import LiveTelemetryServer, _Handler
from repro.service.jobs import AnalysisService, ServiceError

__all__ = ["AnalysisServiceServer", "serve_analysis"]

#: Request bodies past this size are rejected (64 MiB — generous for
#: model payloads, small enough to bound a hostile submission).
_MAX_BODY_BYTES = 64 * 1024 * 1024


class _ServiceHandler(_Handler):
    server_version = "same-analysis/1"

    @property
    def service(self) -> AnalysisService:
        return self.telemetry.service  # type: ignore[attr-defined]

    def _json(self, status: int, payload: object) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self._respond(status, "application/json", body)

    def do_GET(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
        from urllib.parse import parse_qs, urlparse

        parsed = urlparse(self.path)
        path = parsed.path
        try:
            if path == "/jobs":
                self._serve_jobs()
            elif path.startswith("/jobs/") and path.endswith("/events"):
                self._serve_job_events(
                    path[len("/jobs/"):-len("/events")],
                    parse_qs(parsed.query),
                )
            elif path.startswith("/jobs/"):
                self._serve_job(path[len("/jobs/"):])
            else:
                super().do_GET()
        except (BrokenPipeError, ConnectionResetError):
            pass

    def do_POST(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
        from urllib.parse import urlparse

        path = urlparse(self.path).path
        try:
            if path == "/jobs":
                self._submit_job()
            else:
                self._json(404, {"error": f"no POST endpoint {path!r}"})
        except (BrokenPipeError, ConnectionResetError):
            pass

    # -- endpoints --------------------------------------------------------

    def _serve_jobs(self) -> None:
        self._json(
            200,
            {
                "service": self.service.status(),
                "jobs": [
                    job.to_dict(include_result=False)
                    for job in self.service.jobs()
                ],
            },
        )

    def _serve_job(self, job_id: str) -> None:
        try:
            job = self.service.job(job_id)
        except ServiceError:
            self._json(404, {"error": f"unknown job {job_id!r}"})
            return
        self._json(200, job.to_dict())

    def _serve_job_events(self, job_id: str, query: Dict[str, list]) -> None:
        """The job's per-stream SSE view: the shared ``/events`` loop,
        subscribed with the job's correlation id so replay (the id-indexed
        buffer view) and live delivery carry only this job's events."""
        try:
            job = self.service.job(job_id)
        except ServiceError:
            self._json(404, {"error": f"unknown job {job_id!r}"})
            return
        if not job.correlation_id:
            self._json(
                409, {"error": f"job {job_id!r} has no correlation id"}
            )
            return
        self._serve_events(query, cid=job.correlation_id)

    def _read_body(self) -> bytes:
        try:
            length = int(self.headers.get("Content-Length", 0))
        except (TypeError, ValueError):
            raise ServiceError("Content-Length must be an integer") from None
        if length <= 0:
            raise ServiceError("request body required")
        if length > _MAX_BODY_BYTES:
            raise ServiceError(
                f"request body of {length} bytes exceeds the "
                f"{_MAX_BODY_BYTES}-byte limit"
            )
        return self.rfile.read(length)

    def _submit_job(self) -> None:
        try:
            body = self._read_body()
            try:
                payload = json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, ValueError):
                raise ServiceError("request body is not valid JSON") from None
            job = self.service.submit(payload)
        except ServiceError as exc:
            self._json(400, {"error": str(exc)})
            return
        self._json(
            202,
            {
                "id": job.id,
                "state": job.state,
                "kind": job.kind,
                "system": job.system,
                "url": f"/jobs/{job.id}",
            },
        )


class AnalysisServiceServer(LiveTelemetryServer):
    """The always-on SAME analysis endpoint: telemetry + job queue.

    ::

        service = AnalysisService("ledger.jsonl", workers=2)
        server = AnalysisServiceServer(service, "127.0.0.1", 0).start()
        print(server.url)   # POST /jobs, GET /jobs/<id>, /metrics, ...
        ...
        server.stop()       # stops the HTTP plane AND the worker threads
    """

    handler_class = _ServiceHandler

    def __init__(
        self,
        service: AnalysisService,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        super().__init__(host, port)
        self.service = service

    def healthz_extra(self) -> Dict[str, object]:
        status = self.service.status()
        # The SLO report is surfaced top-level too: health probes check
        # `healthz["slo"]["status"]` without knowing the service schema.
        return {"service": status, "slo": status.get("slo")}

    def start(self) -> "AnalysisServiceServer":
        self.service.start()
        super().start()
        return self

    def stop(self) -> None:
        super().stop()
        self.service.stop()


def serve_analysis(
    ledger,
    host: str = "127.0.0.1",
    port: int = 0,
    workers: int = 2,
    checkpoint_dir: Optional[str] = None,
    slo_objectives=None,
) -> AnalysisServiceServer:
    """One-call start: build the service over ``ledger`` and serve it."""
    service = AnalysisService(
        ledger, workers=workers, checkpoint_dir=checkpoint_dir,
        slo_objectives=slo_objectives,
    )
    return AnalysisServiceServer(service, host, port).start()
