"""``repro.service`` — the always-on SAME analysis service.

The paper's analyses (and this repo's CLI verbs) are one-shot: load the
model, compute, exit.  This package is the long-lived, multi-tenant shape
named by ROADMAP item 1 and the paper's "scalable model access" future
work:

- :class:`AnalysisService` — async job queue over
  :class:`~repro.safety.campaign.FaultInjectionCampaign` (worker threads,
  checkpoint/retry machinery, the process-wide warm pool) with a result
  cache keyed by campaign fingerprint against the
  :class:`~repro.obs.ledger.AnalysisLedger`;
- :class:`AnalysisServiceServer` — ``POST /jobs`` / ``GET /jobs[/<id>]``
  layered on the live-telemetry HTTP server (so ``/metrics``, ``/healthz``
  and ``/events`` come along for free);
- :func:`serve_analysis` — one-call start;
- ``same serve-analysis`` — the CLI verb.

See ``docs/service.md`` for the endpoint contract, the job lifecycle and
the caching semantics.
"""

from repro.service.jobs import (
    AnalysisJob,
    AnalysisRequest,
    AnalysisService,
    ServiceError,
    reliability_from_payload,
    reliability_payload,
)
from repro.service.server import AnalysisServiceServer, serve_analysis

__all__ = [
    "AnalysisJob",
    "AnalysisRequest",
    "AnalysisService",
    "AnalysisServiceServer",
    "ServiceError",
    "reliability_from_payload",
    "reliability_payload",
    "serve_analysis",
]
