"""Fault-tree structure: basic events and gates.

A :class:`FaultTree` owns a top node; nodes form a DAG (an event may feed
several gates — shared events are the normal case when the tree is
synthesised from path analysis).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Union


class FtaError(Exception):
    """Raised for malformed trees."""


@dataclass(frozen=True)
class BasicEvent:
    """A leaf failure event.

    ``probability`` is the event probability over the mission; it may be 0
    when the tree is used qualitatively (cut sets only).
    """

    name: str
    probability: float = 0.0
    description: str = ""

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise FtaError(
                f"event {self.name!r}: probability {self.probability} "
                f"outside [0, 1]"
            )


class Gate:
    """Abstract gate over children (events or gates)."""

    kind = "abstract"

    def __init__(
        self,
        name: str,
        children: Optional[Iterable[Union["Gate", BasicEvent]]] = None,
    ) -> None:
        self.name = name
        self.children: List[Union[Gate, BasicEvent]] = list(children or [])

    def add(self, child: Union["Gate", BasicEvent]) -> Union["Gate", BasicEvent]:
        self.children.append(child)
        return child

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<{type(self).__name__} {self.name} ({len(self.children)})>"


class AndGate(Gate):
    kind = "and"


class OrGate(Gate):
    kind = "or"


class KofNGate(Gate):
    """Fails when at least ``k`` of the children fail (models M-oo-N
    tolerance: a 2oo3 *function* fails when 2 of 3 replicas fail)."""

    kind = "kofn"

    def __init__(
        self,
        name: str,
        k: int,
        children: Optional[Iterable[Union[Gate, BasicEvent]]] = None,
    ) -> None:
        super().__init__(name, children)
        if k < 1:
            raise FtaError(f"gate {name!r}: k must be >= 1")
        self.k = k

    def expand(self) -> OrGate:
        """Equivalent OR-of-ANDs over all k-subsets of the children."""
        if self.k > len(self.children):
            raise FtaError(
                f"gate {self.name!r}: k={self.k} exceeds "
                f"{len(self.children)} children"
            )
        expanded = OrGate(f"{self.name}_expanded")
        for index, combo in enumerate(
            itertools.combinations(self.children, self.k)
        ):
            expanded.add(AndGate(f"{self.name}_c{index}", list(combo)))
        return expanded


class FaultTree:
    """A named tree with a top node.

    ``warning`` records a non-fatal synthesis caveat — e.g. that the tree
    was built by dominator-segment decomposition rather than full path
    enumeration; empty when the construction is the default one.
    """

    def __init__(
        self,
        name: str,
        top: Union[Gate, BasicEvent],
        warning: str = "",
    ) -> None:
        self.name = name
        self.top = top
        self.warning = warning
        self._check_acyclic()

    def _check_acyclic(self) -> None:
        visiting: Set[int] = set()

        def visit(node) -> None:
            if isinstance(node, BasicEvent):
                return
            if id(node) in visiting:
                raise FtaError(f"cycle through gate {node.name!r}")
            visiting.add(id(node))
            for child in node.children:
                visit(child)
            visiting.discard(id(node))

        visit(self.top)

    def basic_events(self) -> List[BasicEvent]:
        """All distinct basic events (by name)."""
        seen: Dict[str, BasicEvent] = {}

        def visit(node) -> None:
            if isinstance(node, BasicEvent):
                seen.setdefault(node.name, node)
                return
            for child in node.children:
                visit(child)

        visit(self.top)
        return list(seen.values())

    def gates(self) -> List[Gate]:
        seen: Dict[int, Gate] = {}

        def visit(node) -> None:
            if isinstance(node, BasicEvent):
                return
            if id(node) in seen:
                return
            seen[id(node)] = node
            for child in node.children:
                visit(child)

        visit(self.top)
        return list(seen.values())

    def event(self, name: str) -> BasicEvent:
        for event in self.basic_events():
            if event.name == name:
                return event
        raise FtaError(f"tree {self.name!r} has no basic event {name!r}")

    def render(self) -> str:
        """Indented text rendering."""
        lines: List[str] = []

        def visit(node, depth: int) -> None:
            pad = "  " * depth
            if isinstance(node, BasicEvent):
                lines.append(f"{pad}[{node.name}] p={node.probability:g}")
                return
            label = node.kind.upper()
            if isinstance(node, KofNGate):
                label = f"{node.k}ooN"
            lines.append(f"{pad}{label} {node.name}")
            for child in node.children:
                visit(child, depth + 1)

        visit(self.top, 0)
        return "\n".join(lines)
