"""Minimal cut sets — MOCUS-style top-down expansion with absorption.

A cut set is a set of basic events whose joint occurrence causes the top
event; a *minimal* cut set contains no smaller cut set.  The expansion
works on sets-of-frozensets: an OR gate unions alternatives, an AND gate
takes the pairwise union product, K-of-N expands to OR-of-ANDs first; the
result is reduced by absorption (drop supersets).
"""

from __future__ import annotations

from typing import FrozenSet, List, Set, Union

from repro.fta.tree import (
    AndGate,
    BasicEvent,
    FaultTree,
    FtaError,
    Gate,
    KofNGate,
    OrGate,
)

CutSet = FrozenSet[str]

#: Safety valve against exponential blow-up on pathological trees.
_MAX_INTERMEDIATE = 2_000_000


def _absorb(cutsets: Set[CutSet]) -> Set[CutSet]:
    """Remove any cut set that is a superset of another."""
    ordered = sorted(cutsets, key=len)
    minimal: List[CutSet] = []
    for candidate in ordered:
        if not any(existing <= candidate for existing in minimal):
            minimal.append(candidate)
    return set(minimal)


def _expand(node: Union[Gate, BasicEvent]) -> Set[CutSet]:
    if isinstance(node, BasicEvent):
        return {frozenset([node.name])}
    if isinstance(node, KofNGate):
        return _expand(node.expand())
    if not node.children:
        # Empty-gate semantics follow boolean identities: OR of nothing is
        # false (no cut set ever triggers it), AND of nothing is true (the
        # empty cut set).  Synthesis produces empty ORs for unbreakable
        # paths, so these cases are reachable and meaningful.
        if isinstance(node, OrGate):
            return set()
        return {frozenset()}
    child_sets = [_expand(child) for child in node.children]
    if isinstance(node, OrGate):
        union: Set[CutSet] = set()
        for cutsets in child_sets:
            union |= cutsets
        return _absorb(union)
    if isinstance(node, AndGate):
        product: Set[CutSet] = {frozenset()}
        for cutsets in child_sets:
            product = {
                existing | addition
                for existing in product
                for addition in cutsets
            }
            if len(product) > _MAX_INTERMEDIATE:
                raise FtaError(
                    f"cut-set expansion exceeded {_MAX_INTERMEDIATE} "
                    f"intermediates at gate {node.name!r}"
                )
            product = _absorb(product)
        return product
    raise FtaError(f"unknown gate kind {type(node).__name__}")


def minimal_cut_sets(tree: FaultTree) -> List[CutSet]:
    """All minimal cut sets, sorted by (size, lexicographic members)."""
    cutsets = _absorb(_expand(tree.top))
    return sorted(cutsets, key=lambda cs: (len(cs), tuple(sorted(cs))))


def single_points_of_failure(tree: FaultTree) -> List[str]:
    """Basic events forming singleton minimal cut sets."""
    return sorted(
        next(iter(cs)) for cs in minimal_cut_sets(tree) if len(cs) == 1
    )
