"""Common-cause failure analysis — the beta-factor model.

Redundancy arguments collapse when the replicas share a failure cause
(same supply, same firmware, same temperature).  The beta-factor model
splits each member of a common-cause group: a fraction ``beta`` of its
failure probability is moved into one shared *common-cause event*; the rest
stays independent::

    e  ->  OR(e_independent, CCF_<group>)
           p_independent = (1 - beta) * p
           p_ccf         = beta * min(p of group members)

The transformed tree exposes the classic result: a 1oo2 pair that had no
singleton cut set acquires one — the CCF event — bounding how much
redundancy can ever buy.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Union

from repro.fta.tree import (
    AndGate,
    BasicEvent,
    FaultTree,
    FtaError,
    Gate,
    KofNGate,
    OrGate,
)


def apply_beta_factor(
    tree: FaultTree,
    groups: Mapping[str, Iterable[str]],
    beta: Union[float, Mapping[str, float]] = 0.1,
) -> FaultTree:
    """Return a new tree with beta-factor CCF events injected.

    ``groups`` maps a group name to the basic-event names sharing the cause;
    ``beta`` is one fraction for all groups or a per-group mapping.  Events
    not in any group are untouched.  A group must have >= 2 members (a
    single component has no *common* cause to share).
    """
    group_of: Dict[str, str] = {}
    for group, members in groups.items():
        members = list(members)
        if len(members) < 2:
            raise FtaError(
                f"CCF group {group!r} needs >= 2 members, got {members}"
            )
        for member in members:
            if member in group_of:
                raise FtaError(
                    f"event {member!r} is in two CCF groups "
                    f"({group_of[member]!r} and {group!r})"
                )
            group_of[member] = group

    known_events = {event.name: event for event in tree.basic_events()}
    for member in group_of:
        if member not in known_events:
            raise FtaError(f"no basic event named {member!r} in the tree")

    def beta_for(group: str) -> float:
        value = beta[group] if isinstance(beta, Mapping) else beta
        if not 0.0 <= value <= 1.0:
            raise FtaError(f"beta for group {group!r} outside [0, 1]: {value}")
        return value

    ccf_events: Dict[str, BasicEvent] = {}
    for group, members in groups.items():
        probabilities = [known_events[m].probability for m in members]
        ccf_events[group] = BasicEvent(
            name=f"CCF:{group}",
            probability=beta_for(group) * min(probabilities),
            description=f"common cause shared by {sorted(members)}",
        )

    def rebuild(node):
        if isinstance(node, BasicEvent):
            group = group_of.get(node.name)
            if group is None:
                return node
            independent = BasicEvent(
                name=f"{node.name}~indep",
                probability=(1.0 - beta_for(group)) * node.probability,
                description=f"{node.name} independent part",
            )
            return OrGate(f"{node.name}_with_ccf", [independent, ccf_events[group]])
        if isinstance(node, KofNGate):
            return KofNGate(
                node.name, node.k, [rebuild(child) for child in node.children]
            )
        gate_cls = type(node)
        return gate_cls(node.name, [rebuild(child) for child in node.children])

    return FaultTree(f"{tree.name}+ccf", rebuild(tree.top))


def redundancy_limit(
    tree: FaultTree,
    groups: Mapping[str, Iterable[str]],
    beta: Union[float, Mapping[str, float]] = 0.1,
) -> Dict[str, float]:
    """Top-event probability as redundancy's CCF share varies.

    Returns ``{"independent": P_without_ccf, "with_ccf": P_with_ccf}`` —
    the gap is the probability floor no amount of further redundancy can
    cross while the common cause persists.
    """
    from repro.fta.quantify import top_event_probability

    return {
        "independent": top_event_probability(tree),
        "with_ccf": top_event_probability(
            apply_beta_factor(tree, groups, beta)
        ),
    }
