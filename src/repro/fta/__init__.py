"""Fault Tree Analysis — the paper's future-work extension §VIII.1.

The paper plans to "enhance SAME to include the model-based support for
Fault Tree Analysis (FTA) and how FTA and FMEA can be federated for
quantitative system safety analysis".  This package implements that plan:

- :mod:`repro.fta.tree` — events and gates (AND / OR / K-of-N);
- :mod:`repro.fta.cutsets` — minimal cut sets (MOCUS-style top-down
  expansion with absorption);
- :mod:`repro.fta.quantify` — top-event probability (exact
  inclusion–exclusion for small sets, rare-event bound otherwise) and
  importance measures (Birnbaum, Fussell-Vesely);
- :mod:`repro.fta.synthesis` — fault-tree synthesis from a SSAM composite:
  the system loses its function iff every input→output path is broken,
  which yields TOP = AND over paths of (OR over path members' path-breaking
  failure modes);
- :mod:`repro.fta.fmea_link` — the FTA/FMEA federation: basic events carry
  failure rates from the FMEA rows, and the FMEA's single-point components
  must equal the FTA's singleton minimal cut sets (a checkable invariant).
"""

from repro.fta.tree import AndGate, BasicEvent, FaultTree, FtaError, Gate, KofNGate, OrGate
from repro.fta.cutsets import minimal_cut_sets
from repro.fta.quantify import (
    birnbaum_importance,
    fussell_vesely_importance,
    probability_from_fit,
    top_event_probability,
)
from repro.fta.synthesis import synthesize_fault_tree
from repro.fta.fmea_link import FederatedAnalysis, federate_fta_fmea
from repro.fta.ccf import apply_beta_factor, redundancy_limit
from repro.fta.export import to_dot, to_open_psa

__all__ = [
    "BasicEvent",
    "Gate",
    "AndGate",
    "OrGate",
    "KofNGate",
    "FaultTree",
    "FtaError",
    "minimal_cut_sets",
    "top_event_probability",
    "probability_from_fit",
    "birnbaum_importance",
    "fussell_vesely_importance",
    "synthesize_fault_tree",
    "federate_fta_fmea",
    "FederatedAnalysis",
    "apply_beta_factor",
    "redundancy_limit",
    "to_dot",
    "to_open_psa",
]
