"""Fault-tree export — GraphViz ``dot`` and OpenPSA MEF XML.

Interchange matters for FTA: certification reviews want the tree in a
standard notation.  Two exporters:

- :func:`to_dot` — GraphViz digraph (AND gates as boxes, OR gates as
  inverted houses, events as circles), renderable with any dot tool;
- :func:`to_open_psa` — the Open-PSA Model Exchange Format subset
  (``define-fault-tree`` with ``and``/``or``/``atleast`` formulas and
  ``define-basic-event`` probabilities), readable by open-source
  quantifiers such as scram.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Dict, List, Union

from repro.fta.tree import AndGate, BasicEvent, FaultTree, Gate, KofNGate


def _identifier(name: str) -> str:
    out = "".join(ch if (ch.isalnum() or ch in "._-") else "_" for ch in name)
    return out or "_"


def to_dot(tree: FaultTree) -> str:
    """GraphViz rendering of the tree."""
    lines: List[str] = [f'digraph "{_identifier(tree.name)}" {{']
    lines.append("  rankdir=TB;")
    seen_gates: Dict[int, str] = {}
    seen_events: Dict[str, str] = {}
    counter = [0]

    def declare(node: Union[Gate, BasicEvent]) -> str:
        if isinstance(node, BasicEvent):
            if node.name not in seen_events:
                node_id = f"e{len(seen_events)}"
                seen_events[node.name] = node_id
                lines.append(
                    f'  {node_id} [shape=circle, label="{node.name}\\n'
                    f'p={node.probability:g}"];'
                )
            return seen_events[node.name]
        if id(node) not in seen_gates:
            counter[0] += 1
            node_id = f"g{counter[0]}"
            seen_gates[id(node)] = node_id
            if isinstance(node, AndGate):
                shape, label = "box", f"AND\\n{node.name}"
            elif isinstance(node, KofNGate):
                shape, label = (
                    "trapezium",
                    f"{node.k}oo{len(node.children)}\\n{node.name}",
                )
            else:
                shape, label = "invhouse", f"OR\\n{node.name}"
            lines.append(f'  {node_id} [shape={shape}, label="{label}"];')
            for child in node.children:
                child_id = declare(child)
                lines.append(f"  {node_id} -> {child_id};")
        return seen_gates[id(node)]

    declare(tree.top)
    lines.append("}")
    return "\n".join(lines)


def to_open_psa(tree: FaultTree) -> str:
    """Open-PSA MEF XML (``opsa-mef`` document) for the tree."""
    root = ET.Element("opsa-mef")
    fault_tree = ET.SubElement(root, "define-fault-tree")
    fault_tree.set("name", _identifier(tree.name))

    emitted: Dict[int, str] = {}
    gate_names: Dict[str, int] = {}

    def gate_name(node: Gate) -> str:
        base = _identifier(node.name)
        if id(node) in emitted:
            return emitted[id(node)]
        count = gate_names.get(base, 0)
        gate_names[base] = count + 1
        name = base if count == 0 else f"{base}_{count}"
        emitted[id(node)] = name
        return name

    def formula_of(node: Union[Gate, BasicEvent], parent: ET.Element) -> None:
        if isinstance(node, BasicEvent):
            event = ET.SubElement(parent, "basic-event")
            event.set("name", _identifier(node.name))
            return
        gate_ref = ET.SubElement(parent, "gate")
        gate_ref.set("name", gate_name(node))

    def define_gates(node: Union[Gate, BasicEvent]) -> None:
        if isinstance(node, BasicEvent):
            return
        name = gate_name(node)
        if any(
            g.get("name") == name for g in fault_tree.findall("define-gate")
        ):
            return
        definition = ET.SubElement(fault_tree, "define-gate")
        definition.set("name", name)
        if isinstance(node, AndGate):
            formula = ET.SubElement(definition, "and")
        elif isinstance(node, KofNGate):
            formula = ET.SubElement(definition, "atleast")
            formula.set("min", str(node.k))
        else:
            formula = ET.SubElement(definition, "or")
        for child in node.children:
            formula_of(child, formula)
        for child in node.children:
            define_gates(child)

    define_gates(tree.top)

    model_data = ET.SubElement(root, "model-data")
    for event in tree.basic_events():
        definition = ET.SubElement(model_data, "define-basic-event")
        definition.set("name", _identifier(event.name))
        value = ET.SubElement(definition, "float")
        value.set("value", f"{event.probability:g}")

    ET.indent(root)
    return ET.tostring(root, encoding="unicode")
