"""FTA / FMEA federation — quantitative system safety analysis (§VIII.1).

The two analyses see the same system through different lenses; federating
them yields both a quantitative top-event probability (from the FMEA's
failure-rate data flowing into the fault tree) and a *consistency check*:

    the FMEA's single-point-failure components must coincide with the
    components appearing in the FTA's singleton minimal cut sets.

A divergence means the two analyses disagree about the architecture — the
exact class of modelling error the paper's iterative process is meant to
surface early.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.fta.cutsets import minimal_cut_sets, single_points_of_failure
from repro.fta.quantify import (
    HOURS_PER_YEAR,
    fussell_vesely_importance,
    top_event_probability,
)
from repro.fta.synthesis import synthesize_fault_tree
from repro.fta.tree import FaultTree
from repro.metamodel import ModelObject
from repro.safety.fmea import FmeaResult
from repro.ssam.architecture import PATH_BREAKING_NATURES


@dataclass
class FederatedAnalysis:
    """The combined FTA + FMEA view of one system."""

    tree: FaultTree
    fmea: FmeaResult
    top_probability: float
    cut_sets: List[frozenset]
    fta_single_points: List[str]
    fmea_single_points: List[str]
    importance: Dict[str, float] = field(default_factory=dict)

    @property
    def consistent(self) -> bool:
        """Do FMEA single points match FTA singleton cut sets?"""
        return set(self.fta_single_points) == set(self.fmea_single_points)

    def disagreements(self) -> Dict[str, List[str]]:
        fta = set(self.fta_single_points)
        fmea = set(self.fmea_single_points)
        return {
            "fta_only": sorted(fta - fmea),
            "fmea_only": sorted(fmea - fta),
        }


def federate_fta_fmea(
    composite: ModelObject,
    fmea: FmeaResult,
    mission_hours: float = HOURS_PER_YEAR,
) -> FederatedAnalysis:
    """Synthesize the fault tree, quantify it with the FMEA's rates and
    cross-check single points of failure."""
    tree = synthesize_fault_tree(composite, mission_hours)
    cut_sets = minimal_cut_sets(tree)
    fta_spf_components = sorted(
        {event.split(":", 1)[0] for event in single_points_of_failure(tree)}
    )
    fmea_spf_components = sorted(
        {
            row.component
            for row in fmea.rows
            if row.safety_related and row.nature in PATH_BREAKING_NATURES
        }
    )
    return FederatedAnalysis(
        tree=tree,
        fmea=fmea,
        top_probability=top_event_probability(tree),
        cut_sets=cut_sets,
        fta_single_points=fta_spf_components,
        fmea_single_points=fmea_spf_components,
        importance=fussell_vesely_importance(tree),
    )
