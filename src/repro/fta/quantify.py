"""Quantitative FTA — top-event probability and importance measures.

Probability is computed over the minimal cut sets assuming independent
basic events: exact inclusion–exclusion up to a size limit, the min-cut
upper bound (rare-event approximation) beyond it.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, List, Optional

from repro.fta.cutsets import CutSet, minimal_cut_sets
from repro.fta.tree import FaultTree, FtaError

#: Inclusion–exclusion is exact but 2^n in the number of cut sets.
_EXACT_LIMIT = 18

#: Hours per year, the conventional mission-time unit for FIT conversions.
HOURS_PER_YEAR = 8760.0


def probability_from_fit(fit: float, mission_hours: float = HOURS_PER_YEAR) -> float:
    """Failure probability over a mission from a FIT rate.

    ``p = 1 - exp(-lambda * t)`` with ``lambda = fit * 1e-9`` per hour.
    """
    if fit < 0 or mission_hours < 0:
        raise FtaError("fit and mission_hours must be non-negative")
    return 1.0 - math.exp(-fit * 1e-9 * mission_hours)


def _cutset_probability(cutset: CutSet, probabilities: Dict[str, float]) -> float:
    product = 1.0
    for event in cutset:
        try:
            product *= probabilities[event]
        except KeyError:
            raise FtaError(f"no probability for basic event {event!r}") from None
    return product


def top_event_probability(
    tree: FaultTree,
    probabilities: Optional[Dict[str, float]] = None,
) -> float:
    """Probability of the top event.

    ``probabilities`` overrides the events' own values (used by importance
    measures); by default each event's ``probability`` attribute is used.
    """
    if probabilities is None:
        probabilities = {
            event.name: event.probability for event in tree.basic_events()
        }
    cutsets = minimal_cut_sets(tree)
    if not cutsets:
        return 0.0
    if len(cutsets) <= _EXACT_LIMIT:
        # Inclusion–exclusion over cut-set unions (exact for independent
        # events because P(union of cutset-events) telescopes on unions).
        total = 0.0
        for size in range(1, len(cutsets) + 1):
            sign = 1.0 if size % 2 == 1 else -1.0
            for combo in itertools.combinations(cutsets, size):
                union: CutSet = frozenset().union(*combo)
                total += sign * _cutset_probability(union, probabilities)
        return min(max(total, 0.0), 1.0)
    # Rare-event upper bound.
    return min(
        sum(_cutset_probability(cs, probabilities) for cs in cutsets), 1.0
    )


def birnbaum_importance(tree: FaultTree) -> Dict[str, float]:
    """Birnbaum importance: dP(top)/dp_i = P(top | p_i=1) - P(top | p_i=0)."""
    base = {event.name: event.probability for event in tree.basic_events()}
    importance: Dict[str, float] = {}
    for name in base:
        high = dict(base)
        high[name] = 1.0
        low = dict(base)
        low[name] = 0.0
        importance[name] = top_event_probability(
            tree, high
        ) - top_event_probability(tree, low)
    return importance


def fussell_vesely_importance(tree: FaultTree) -> Dict[str, float]:
    """Fussell–Vesely importance: the share of top-event probability that
    flows through cut sets containing the event (rare-event form)."""
    probabilities = {
        event.name: event.probability for event in tree.basic_events()
    }
    cutsets = minimal_cut_sets(tree)
    top = top_event_probability(tree)
    importance: Dict[str, float] = {}
    for name in probabilities:
        through = sum(
            _cutset_probability(cs, probabilities)
            for cs in cutsets
            if name in cs
        )
        importance[name] = 0.0 if top <= 0 else min(through / top, 1.0)
    return importance
