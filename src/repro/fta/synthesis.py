"""Fault-tree synthesis from SSAM architectures.

The system-level loss-of-function logic follows directly from the same path
model Algorithm 1 uses: the composite loses its function iff **every**
input→output path is broken, and a path is broken iff **some** component on
it suffers a path-breaking failure mode.  Hence::

    TOP  = AND over paths ( OR over path members ( OR over their
           path-breaking failure modes ) )

Basic events are named ``<component>:<failure mode>`` and carry mission
probabilities derived from FIT × distribution.  Components whose function
tolerance is redundant (1oo2 etc.) are modelled through the path structure
itself (parallel paths), exactly as in the graph FMEA.

When the composite has more than ``_MAX_PATHS`` boundary-to-boundary paths,
synthesis no longer fails: it switches to a **dominator-segment
decomposition**.  Every path passes through the dominator chain
``__IN__ = d0, d1, …, dk = __OUT__`` in order, and on a DAG full paths are
exactly the concatenations of independent per-segment subpaths, so::

    TOP = OR ( dominator losses,
               OR over segments ( AND over d_i→d_{i+1} subpaths
                                  ( OR over subpath members ) ) )

is logically equivalent to the AND-over-paths form — the distribution of
AND over the per-segment ORs.  Segments that still exceed the cap are
approximated by an AND over a minimum node cut (a sound cut set: the cut
members jointly failing break every subpath).  ``FaultTree.warning``
records which construction was used.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Union

import networkx as nx

from repro.fta.quantify import HOURS_PER_YEAR, probability_from_fit
from repro.fta.tree import AndGate, BasicEvent, FaultTree, FtaError, Gate, OrGate
from repro.metamodel import ModelObject
from repro.ssam.architecture import PATH_BREAKING_NATURES
from repro.ssam.base import text_of

#: Path-enumeration cap per level: full enumeration beyond it falls back to
#: the dominator-segment decomposition (and per-segment enumeration beyond
#: it falls back to a minimum-node-cut gate).
_MAX_PATHS = 5000


def _component_graph(composite: ModelObject) -> nx.DiGraph:
    # Shares Algorithm 1's graph construction.
    from repro.safety.graph_analysis import _component_graph as build

    return build(composite)


def _loss_events(
    component: ModelObject, mission_hours: float
) -> List[BasicEvent]:
    name = text_of(component) or component.get("id")
    fit = float(component.get("fit") or 0.0)
    events: List[BasicEvent] = []
    for mode in component.get("failureModes"):
        if mode.get("nature") not in PATH_BREAKING_NATURES:
            continue
        rate = fit * float(mode.get("distribution") or 0.0)
        events.append(
            BasicEvent(
                name=f"{name}:{text_of(mode) or mode.get('id')}",
                probability=probability_from_fit(rate, mission_hours),
                description=(
                    f"{name} fails by {text_of(mode)} "
                    f"({rate:g} FIT over {mission_hours:g} h)"
                ),
            )
        )
    return events


def _enumerate_paths(
    graph: nx.DiGraph, source: str, target: str, cap: int
) -> Optional[List[List[str]]]:
    """Interior node lists of all ``source``→``target`` simple paths, or
    ``None`` once more than ``cap`` paths exist."""
    paths: List[List[str]] = []
    for index, path in enumerate(nx.all_simple_paths(graph, source, target)):
        if index >= cap:
            return None
        paths.append([node for node in path if node not in (source, target)])
    return paths


def _dominator_chain(graph: nx.DiGraph) -> List[str]:
    """The dominator chain ``__IN__ … __OUT__``: every boundary-to-boundary
    path visits exactly these nodes, in this order."""
    idom = nx.immediate_dominators(graph, "__IN__")
    chain = ["__OUT__"]
    node = "__OUT__"
    while node != "__IN__":
        node = idom[node]
        chain.append(node)
    chain.reverse()
    return chain


def _segment_gate(
    graph: nx.DiGraph,
    a: str,
    b: str,
    index: int,
    loss_node: Callable[[str], Optional[Union[Gate, BasicEvent]]],
    notes: List[str],
) -> Optional[Gate]:
    """Gate for "every ``a``→``b`` subpath is broken", or ``None`` when the
    segment cannot break (direct edge / no breakable interior)."""
    interior = nx.descendants(graph, a) & nx.ancestors(graph, b)
    sub = graph.subgraph(interior | {a, b})
    if sub.has_edge(a, b) or not interior:
        # An interior-free connection survives any interior failure.
        return None
    paths = _enumerate_paths(sub, a, b, _MAX_PATHS)
    if paths is not None:
        gate = AndGate(f"segment_{index}_broken")
        for path_index, path in enumerate(paths):
            path_gate = OrGate(f"segment_{index}_path_{path_index}_broken")
            for uid in path:
                node = loss_node(uid)
                if node is not None:
                    path_gate.add(node)
            gate.add(path_gate)
        return gate
    # Segment itself is path-explosive: a minimum node cut jointly failing
    # breaks every subpath — a sound (possibly incomplete) cut set.
    cut = nx.minimum_node_cut(sub, a, b)
    gate = AndGate(f"segment_{index}_cut")
    for uid in sorted(cut):
        node = loss_node(uid)
        if node is None:
            # A cut member with no breakable mode: the cut can never fail
            # jointly, so the gate would be constant-false — drop it.
            return None
        gate.add(node)
    notes.append(
        f"segment {index} approximated by a minimum node cut "
        f"({len(cut)} members)"
    )
    return gate


def synthesize_fault_tree(
    composite: ModelObject,
    mission_hours: float = HOURS_PER_YEAR,
    hazard_name: str = "",
) -> FaultTree:
    """Synthesize the loss-of-function fault tree of a SSAM composite."""
    if not composite.is_kind_of("Component"):
        raise FtaError(
            f"expected a Component, got {composite.metaclass.name!r}"
        )
    system = text_of(composite) or composite.get("id")
    graph = _component_graph(composite)
    by_uid: Dict[str, ModelObject] = {
        sub.uid: sub for sub in composite.get("subcomponents")
    }
    if not (
        graph.out_degree("__IN__") > 0 and graph.in_degree("__OUT__") > 0
    ):
        raise FtaError(
            f"composite {system!r} has no input/output boundary relationships; "
            f"anchor the boundary before synthesis"
        )

    event_cache: Dict[str, List[BasicEvent]] = {}
    node_cache: Dict[str, Optional[Union[Gate, BasicEvent]]] = {}

    def loss_node(uid: str) -> Optional[Union[Gate, BasicEvent]]:
        """The event/gate for "component ``uid`` loses its function", shared
        across gates (the tree is a DAG), or ``None`` without loss modes."""
        if uid not in node_cache:
            component = by_uid[uid]
            events = event_cache.setdefault(
                uid, _loss_events(component, mission_hours)
            )
            if not events:
                node_cache[uid] = None
            elif len(events) == 1:
                node_cache[uid] = events[0]
            else:
                comp_gate = OrGate(
                    f"{text_of(component) or component.get('id')}_loss"
                )
                for event in events:
                    comp_gate.add(event)
                node_cache[uid] = comp_gate
        return node_cache[uid]

    top_name = hazard_name or f"{system} loses its function"
    paths = _enumerate_paths(graph, "__IN__", "__OUT__", _MAX_PATHS)
    if paths is not None:
        top = AndGate(top_name)
        for index, path in enumerate(paths):
            path_gate = OrGate(f"path_{index}_broken")
            for uid in path:
                node = loss_node(uid)
                if node is not None:
                    path_gate.add(node)
            top.add(path_gate)
        return FaultTree(system, top)

    # Beyond the cap: dominator-segment decomposition (module docstring).
    chain = _dominator_chain(graph)
    notes: List[str] = []
    top = OrGate(top_name)
    for uid in chain[1:-1]:
        node = loss_node(uid)
        if node is not None:
            top.add(node)
    for index, (a, b) in enumerate(zip(chain, chain[1:])):
        gate = _segment_gate(graph, a, b, index, loss_node, notes)
        if gate is not None:
            top.add(gate)
    warning = (
        f"more than {_MAX_PATHS} boundary-to-boundary paths; tree built by "
        f"dominator-segment decomposition "
        f"({len(chain) - 2} dominators, {len(chain) - 1} segments)"
    )
    if notes:
        warning += "; " + "; ".join(notes)
    return FaultTree(system, top, warning=warning)
