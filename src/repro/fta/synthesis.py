"""Fault-tree synthesis from SSAM architectures.

The system-level loss-of-function logic follows directly from the same path
model Algorithm 1 uses: the composite loses its function iff **every**
input→output path is broken, and a path is broken iff **some** component on
it suffers a path-breaking failure mode.  Hence::

    TOP  = AND over paths ( OR over path members ( OR over their
           path-breaking failure modes ) )

Basic events are named ``<component>:<failure mode>`` and carry mission
probabilities derived from FIT × distribution.  Components whose function
tolerance is redundant (1oo2 etc.) are modelled through the path structure
itself (parallel paths), exactly as in the graph FMEA.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import networkx as nx

from repro.fta.quantify import HOURS_PER_YEAR, probability_from_fit
from repro.fta.tree import AndGate, BasicEvent, FaultTree, FtaError, OrGate
from repro.metamodel import ModelObject
from repro.ssam.architecture import PATH_BREAKING_NATURES
from repro.ssam.base import text_of

#: Path-enumeration cap for synthesis.
_MAX_PATHS = 5000


def _component_graph(composite: ModelObject) -> nx.DiGraph:
    # Shares Algorithm 1's graph construction.
    from repro.safety.graph_analysis import _component_graph as build

    return build(composite)


def _loss_events(
    component: ModelObject, mission_hours: float
) -> List[BasicEvent]:
    name = text_of(component) or component.get("id")
    fit = float(component.get("fit") or 0.0)
    events: List[BasicEvent] = []
    for mode in component.get("failureModes"):
        if mode.get("nature") not in PATH_BREAKING_NATURES:
            continue
        rate = fit * float(mode.get("distribution") or 0.0)
        events.append(
            BasicEvent(
                name=f"{name}:{text_of(mode) or mode.get('id')}",
                probability=probability_from_fit(rate, mission_hours),
                description=(
                    f"{name} fails by {text_of(mode)} "
                    f"({rate:g} FIT over {mission_hours:g} h)"
                ),
            )
        )
    return events


def synthesize_fault_tree(
    composite: ModelObject,
    mission_hours: float = HOURS_PER_YEAR,
    hazard_name: str = "",
) -> FaultTree:
    """Synthesize the loss-of-function fault tree of a SSAM composite."""
    if not composite.is_kind_of("Component"):
        raise FtaError(
            f"expected a Component, got {composite.metaclass.name!r}"
        )
    system = text_of(composite) or composite.get("id")
    graph = _component_graph(composite)
    by_uid: Dict[str, ModelObject] = {
        sub.uid: sub for sub in composite.get("subcomponents")
    }
    if not (
        graph.out_degree("__IN__") > 0 and graph.in_degree("__OUT__") > 0
    ):
        raise FtaError(
            f"composite {system!r} has no input/output boundary relationships; "
            f"anchor the boundary before synthesis"
        )
    paths = []
    for index, path in enumerate(
        nx.all_simple_paths(graph, "__IN__", "__OUT__")
    ):
        if index >= _MAX_PATHS:
            raise FtaError(
                f"composite {system!r} has more than {_MAX_PATHS} paths; "
                f"fault-tree synthesis is infeasible at this level"
            )
        paths.append([node for node in path if node not in ("__IN__", "__OUT__")])

    top_name = hazard_name or f"{system} loses its function"
    top = AndGate(top_name)
    event_cache: Dict[str, List[BasicEvent]] = {}
    for index, path in enumerate(paths):
        path_gate = OrGate(f"path_{index}_broken")
        for uid in path:
            component = by_uid[uid]
            if uid not in event_cache:
                event_cache[uid] = _loss_events(component, mission_hours)
            events = event_cache[uid]
            if not events:
                continue
            if len(events) == 1:
                path_gate.add(events[0])
            else:
                comp_gate = OrGate(
                    f"{text_of(component) or component.get('id')}_loss"
                )
                for event in events:
                    comp_gate.add(event)
                path_gate.add(comp_gate)
        top.add(path_gate)
    return FaultTree(system, top)
