"""Machine-executable constraints and model validation.

SSAM's ``ImplementationConstraint`` attaches machine-executable checks to
model elements; this module supplies the execution engine.  Constraints are
Python callables over a model object; :func:`validate` walks a containment
tree, evaluates every applicable constraint and returns diagnostics, much
like EMF's ``Diagnostician``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional

from repro.metamodel.core import MetaClass, ModelObject


class Severity(enum.IntEnum):
    """Diagnostic severity, ordered so that ``max()`` picks the worst."""

    INFO = 0
    WARNING = 1
    ERROR = 2


@dataclass
class Constraint:
    """A named, machine-executable check on a model object.

    ``predicate`` returns ``True`` when the object satisfies the constraint.
    """

    name: str
    predicate: Callable[[ModelObject], bool]
    message: str = ""
    severity: Severity = Severity.ERROR

    def check(self, obj: ModelObject) -> Optional["Diagnostic"]:
        try:
            ok = bool(self.predicate(obj))
        except Exception as exc:  # constraint bodies are user code
            return Diagnostic(
                constraint=self.name,
                target=obj,
                severity=Severity.ERROR,
                message=f"constraint raised {type(exc).__name__}: {exc}",
            )
        if ok:
            return None
        return Diagnostic(
            constraint=self.name,
            target=obj,
            severity=self.severity,
            message=self.message or f"constraint {self.name!r} violated",
        )


@dataclass
class Diagnostic:
    """One validation finding for one object."""

    constraint: str
    target: ModelObject
    severity: Severity
    message: str

    def __str__(self) -> str:
        return f"[{self.severity.name}] {self.target!r}: {self.message}"


@dataclass
class ValidationReport:
    """Aggregated diagnostics from a :func:`validate` run."""

    diagnostics: List[Diagnostic] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not any(d.severity >= Severity.ERROR for d in self.diagnostics)

    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity >= Severity.ERROR]

    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == Severity.WARNING]

    def by_constraint(self, name: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.constraint == name]

    def __len__(self) -> int:
        return len(self.diagnostics)


def _required_feature_constraints(cls: MetaClass) -> Iterable[Constraint]:
    for name, attr in cls.all_attributes().items():
        if attr.required:
            yield Constraint(
                name=f"{cls.name}.{name}.required",
                predicate=lambda obj, _n=name: obj.get(_n) not in (None, "", []),
                message=f"required attribute {name!r} is unset",
            )
    for name, ref in cls.all_references().items():
        if ref.required:
            yield Constraint(
                name=f"{cls.name}.{name}.required",
                predicate=lambda obj, _n=name: obj.get(_n) not in (None, []),
                message=f"required reference {name!r} is unset",
            )


def validate(
    root: ModelObject,
    extra_constraints: Optional[List[Constraint]] = None,
) -> ValidationReport:
    """Validate ``root`` and every element it (transitively) contains.

    Checks, per element: required features, class-level constraints declared
    via :meth:`MetaClass.add_constraint`, and any ``extra_constraints``.
    """
    report = ValidationReport()
    extras = list(extra_constraints or [])
    for obj in [root, *root.all_contents()]:
        cls = obj.metaclass
        for constraint in _required_feature_constraints(cls):
            diag = constraint.check(obj)
            if diag is not None:
                report.diagnostics.append(diag)
        for constraint in cls.all_constraints():
            diag = constraint.check(obj)
            if diag is not None:
                report.diagnostics.append(diag)
        for constraint in extras:
            diag = constraint.check(obj)
            if diag is not None:
                report.diagnostics.append(diag)
    return report
