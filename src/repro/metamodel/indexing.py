"""Model indexing — the paper's future-work item §VIII.3.

Table VI's finding is that eager whole-model loading caps SAME's
scalability, and the paper plans to "integrate a scalable model indexing
(or model storage) framework" (their reference is Hawk).  This module is
that framework in miniature:

- :func:`build_index` derives, from a model (in memory or a saved JSON
  resource), a flat *index*: per metaclass, one record per element with its
  uid, id, name and scalar attributes;
- :class:`ModelIndex` answers the queries SAME's analyses actually issue
  (elements of a kind, lookup by id/attribute, counting) from the index
  alone — without materialising the object graph;
- the index persists as a sidecar JSON next to the model, so a later
  session can query a model whose full load would blow the memory budget
  (the Set5 situation).

The index is eventually consistent by construction: it records the model
at build time; :func:`index_is_stale` compares content digests.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

from repro.metamodel.core import MetamodelError, ModelObject

_FORMAT = "repro-model-index/1"


def _digest(path: Path) -> str:
    hasher = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(65536), b""):
            hasher.update(chunk)
    return hasher.hexdigest()


def _record_of(obj: ModelObject) -> Dict[str, Any]:
    record: Dict[str, Any] = {"uid": obj.uid}
    for name, attr in obj.metaclass.all_attributes().items():
        if attr.many or not obj.is_set(name):
            continue
        value = obj.get(name)
        if isinstance(value, (str, int, float, bool)) or value is None:
            record[name] = value
    # The SSAM idiom: names live in a contained LangString.
    name_feature = obj.metaclass.all_references().get("name")
    if name_feature is not None:
        name_obj = obj.get("name")
        if name_obj is not None and name_obj.metaclass.find_feature("value"):
            record["name"] = name_obj.get("value")
    return record


def _kinds_of(obj: ModelObject) -> List[str]:
    return [obj.metaclass.name] + [
        cls.name for cls in obj.metaclass.all_supertypes()
    ]


def build_index(
    root: ModelObject,
    source_path: Optional[Union[str, Path]] = None,
) -> Dict[str, Any]:
    """Index a containment tree (one streaming pass, no graph retained)."""
    by_kind: Dict[str, List[Dict[str, Any]]] = {}
    count = 0
    for obj in _walk(root):
        count += 1
        record = _record_of(obj)
        for kind in _kinds_of(obj):
            by_kind.setdefault(kind, []).append(record)
    index: Dict[str, Any] = {
        "format": _FORMAT,
        "element_count": count,
        "kinds": by_kind,
    }
    if source_path is not None:
        path = Path(source_path)
        index["source"] = str(path)
        if path.is_file():
            index["digest"] = _digest(path)
    return index


def _walk(root: ModelObject) -> Iterator[ModelObject]:
    yield root
    yield from root.all_contents()


def save_index(index: Dict[str, Any], location: Union[str, Path]) -> Path:
    path = Path(location)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(index, handle)
    return path


def index_path_for(model_path: Union[str, Path]) -> Path:
    """Sidecar convention: ``model.json`` -> ``model.json.index``."""
    return Path(str(model_path) + ".index")


def index_model_file(model_path: Union[str, Path]) -> Path:
    """Build and persist the sidecar index of a saved model.

    The one unavoidable full load happens here — at *indexing* time, once;
    every later :class:`ModelIndex` query reads only the index.
    """
    from repro.metamodel.serialization import ModelResource

    model_path = Path(model_path)
    root = ModelResource().load(model_path)
    index = build_index(root, model_path)
    return save_index(index, index_path_for(model_path))


def index_is_stale(
    index: Dict[str, Any], model_path: Union[str, Path]
) -> bool:
    """True when the model file changed since the index was built."""
    recorded = index.get("digest")
    if recorded is None:
        return True
    return recorded != _digest(Path(model_path))


class ModelIndex:
    """Query interface over a (loaded or sidecar) index."""

    def __init__(self, index: Dict[str, Any]) -> None:
        if index.get("format") != _FORMAT:
            raise MetamodelError(
                f"unsupported index format {index.get('format')!r}"
            )
        self._index = index

    @classmethod
    def load(cls, location: Union[str, Path]) -> "ModelIndex":
        with open(location, encoding="utf-8") as handle:
            return cls(json.load(handle))

    @classmethod
    def for_model_file(cls, model_path: Union[str, Path]) -> "ModelIndex":
        """The sidecar index of a model file (built if absent or stale)."""
        sidecar = index_path_for(model_path)
        if sidecar.is_file():
            instance = cls.load(sidecar)
            if not index_is_stale(instance._index, model_path):
                return instance
        index_model_file(model_path)
        return cls.load(sidecar)

    @property
    def element_count(self) -> int:
        return int(self._index["element_count"])

    def kinds(self) -> List[str]:
        return sorted(self._index["kinds"])

    def records(self, kind: str) -> List[Dict[str, Any]]:
        return list(self._index["kinds"].get(kind, []))

    def count(self, kind: str) -> int:
        return len(self._index["kinds"].get(kind, []))

    def find(self, kind: str, **criteria: Any) -> List[Dict[str, Any]]:
        """Records of ``kind`` whose indexed attributes match ``criteria``."""
        return [
            record
            for record in self._index["kinds"].get(kind, [])
            if all(record.get(key) == value for key, value in criteria.items())
        ]

    def find_one(self, kind: str, **criteria: Any) -> Optional[Dict[str, Any]]:
        matches = self.find(kind, **criteria)
        return matches[0] if matches else None
