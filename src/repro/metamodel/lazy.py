"""Lazy/partial model loading — resolve elements on reference.

:class:`~repro.metamodel.serialization.ModelResource` deliberately
reproduces EMF's *load-everything* behaviour: every element of the
containment tree is materialised before the first query can run, which is
the Table VI scalability cliff (``Set5 → N/A``) and the reason a long-lived
analysis service cannot hold many tenant models with the eager resource.

:class:`LazyModelResource` keeps the *same on-disk format* but materialises
nothing up front.  ``load`` performs one cheap pass over the raw JSON tree
to index elements by ``uid`` (plain dicts — no :class:`ModelObject` is
created), then hands back a :class:`LazyElement` facade over the root.
Elements come into existence only when a reference is traversed:

- attribute reads come straight off the raw record (with metaclass
  defaults), costing nothing beyond the facade object;
- containment references yield child :class:`LazyElement` facades, created
  and counted on first access, memoised after;
- cross references resolve through the uid index to the target's facade —
  wherever it lives in the tree, without touching the path down to it.

``loaded_element_count`` / ``total_element_count`` expose the accounting
(the acceptance surface: a point query on the grid case study must touch a
small fraction of the model), and ``memory_budget_bytes`` bounds the
*resident* set rather than the whole model — a model far past the eager
budget loads fine as long as queries stay narrow.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

from repro.metamodel.core import MetaClass, MetamodelError, ModelObject
from repro.metamodel.registry import PackageRegistry, global_registry
from repro.metamodel.serialization import (
    BYTES_PER_ELEMENT,
    MemoryOverflowError,
    ModelResource,
)

__all__ = ["LazyElement", "LazyModelResource"]


class LazyElement:
    """A façade over one raw (not yet materialised) model element.

    Mirrors the read surface of :class:`ModelObject` — ``get``, attribute
    sugar, ``contents`` / ``all_contents``, ``uid``, ``metaclass``,
    ``is_kind_of`` — but holds only the raw JSON record plus memoised child
    facades.  Writes are not supported: lazy resources serve *analysis*
    reads; mutate via a materialised :class:`ModelObject` tree instead.
    """

    __slots__ = ("_resource", "_raw", "_metaclass", "_children")

    def __init__(
        self,
        resource: "LazyModelResource",
        raw: Dict[str, Any],
        metaclass: MetaClass,
    ) -> None:
        self._resource = resource
        self._raw = raw
        self._metaclass = metaclass
        self._children: Dict[str, Any] = {}  # feature -> facade(s), memoised

    # -- metadata ---------------------------------------------------------

    @property
    def uid(self) -> str:
        return str(self._raw.get("uid", ""))

    @property
    def metaclass(self) -> MetaClass:
        return self._metaclass

    def is_kind_of(self, class_name: str) -> bool:
        if self._metaclass.name == class_name:
            return True
        return any(
            cls.name == class_name
            for cls in self._metaclass.all_supertypes()
        )

    # -- reads ------------------------------------------------------------

    def get(self, feature_name: str) -> Any:
        """Reflective read; resolves references on demand."""
        cls = self._metaclass
        attr = cls.all_attributes().get(feature_name)
        if attr is not None:
            attrs = self._raw.get("attributes", {})
            if feature_name in attrs:
                return attrs[feature_name]
            return [] if attr.many else attr.default
        ref = cls.all_references().get(feature_name)
        if ref is not None:
            if feature_name in self._children:
                return self._children[feature_name]
            refs = self._raw.get("references", {})
            value = refs.get(feature_name)
            resolved = self._resolve_reference(ref, value)
            self._children[feature_name] = resolved
            return resolved
        raise MetamodelError(
            f"class {cls.name!r} has no feature {feature_name!r}"
        )

    def _resolve_reference(self, ref, value: Any) -> Any:
        resource = self._resource
        if value is None:
            return [] if ref.many else None
        if ref.containment:
            if ref.many:
                return [resource._element_for(item) for item in value]
            return resource._element_for(value)
        if ref.many:
            return [resource._element_for_uid(item["$ref"]) for item in value]
        return resource._element_for_uid(value["$ref"])

    def __getattr__(self, name: str) -> Any:
        if name.startswith("_"):
            raise AttributeError(name)
        cls = self._metaclass
        # Only a genuinely unknown feature becomes AttributeError; errors
        # from resolving a known feature (e.g. a dangling cross reference)
        # must surface as MetamodelError, not be swallowed here.
        if name in cls.all_attributes() or name in cls.all_references():
            return self.get(name)
        raise AttributeError(
            f"{cls.name!r} element has no feature {name!r}"
        )

    # -- traversal --------------------------------------------------------

    def contents(self) -> List["LazyElement"]:
        """Directly contained elements (materialising their facades)."""
        out: List[LazyElement] = []
        for name, ref in self._metaclass.all_references().items():
            if not ref.containment:
                continue
            value = self.get(name)
            if isinstance(value, list):
                out.extend(value)
            elif value is not None:
                out.append(value)
        return out

    def all_contents(self) -> Iterator["LazyElement"]:
        """All transitively contained elements, depth-first — note that
        iterating this fully defeats laziness, exactly as ``eAllContents``
        does; it exists for parity and for tests."""
        for child in self.contents():
            yield child
            yield from child.all_contents()

    def materialize(self) -> ModelObject:
        """Eagerly materialise this element's *whole subtree* as real
        :class:`ModelObject` instances (cross references must stay inside
        the subtree).  The usual escape hatch is materialising the root —
        equivalent to an eager load, budget-checked as one."""
        return self._resource._materialize(self._raw)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<lazy {self._metaclass.name} {self.uid}>"


class LazyModelResource:
    """Load a :class:`ModelResource`-format document without materialising
    the model; see the module docstring for semantics.

    Parameters
    ----------
    registry:
        metaclass registry used to resolve ``class`` names (defaults to the
        process-global registry, like the eager resource);
    memory_budget_bytes:
        optional cap on the *resident* (touched) element set, using the
        same :data:`BYTES_PER_ELEMENT` cost model as the eager resource.
        Exceeding it raises :class:`MemoryOverflowError` at the access that
        crosses the line — the whole model's size is irrelevant.
    """

    FORMAT = ModelResource.FORMAT

    def __init__(
        self,
        registry: Optional[PackageRegistry] = None,
        memory_budget_bytes: Optional[int] = None,
    ) -> None:
        self.registry = registry or global_registry()
        self.memory_budget_bytes = memory_budget_bytes
        self._uid_index: Dict[str, Dict[str, Any]] = {}
        self._elements: Dict[int, LazyElement] = {}  # id(raw) -> facade
        self._total = 0
        self._root_raw: Optional[Dict[str, Any]] = None

    # -- loading ----------------------------------------------------------

    def load(self, path: Union[str, Path]) -> LazyElement:
        with open(path, encoding="utf-8") as handle:
            return self.from_dict(json.load(handle))

    def from_dict(self, data: Dict[str, Any]) -> LazyElement:
        if data.get("format") != self.FORMAT:
            raise MetamodelError(
                f"unsupported model format {data.get('format')!r}"
            )
        self._uid_index.clear()
        self._elements.clear()
        self._total = 0
        self._root_raw = data["root"]
        self._index(self._root_raw)
        return self._element_for(self._root_raw)

    def _index(self, raw: Dict[str, Any]) -> None:
        """One pass over the raw dict tree: count elements, map uids.

        Deliberately touches only plain parsed-JSON dicts — the index costs
        a few machine words per element, not :data:`BYTES_PER_ELEMENT`.
        """
        stack = [raw]
        while stack:
            node = stack.pop()
            self._total += 1
            uid = node.get("uid")
            if uid:
                self._uid_index[str(uid)] = node
            for value in node.get("references", {}).values():
                if isinstance(value, list):
                    stack.extend(
                        item for item in value
                        if isinstance(item, dict) and "$ref" not in item
                    )
                elif isinstance(value, dict) and "$ref" not in value:
                    stack.append(value)

    # -- accounting -------------------------------------------------------

    @property
    def total_element_count(self) -> int:
        """Elements in the document (counted from the raw index pass)."""
        return self._total

    @property
    def loaded_element_count(self) -> int:
        """Elements actually materialised as :class:`LazyElement` facades."""
        return len(self._elements)

    def loaded_fraction(self) -> float:
        if self._total == 0:
            return 0.0
        return self.loaded_element_count / self._total

    def estimated_resident_bytes(self) -> int:
        return self.loaded_element_count * BYTES_PER_ELEMENT

    # -- element construction --------------------------------------------

    def _element_for(self, raw: Dict[str, Any]) -> LazyElement:
        key = id(raw)
        element = self._elements.get(key)
        if element is not None:
            return element
        if self.memory_budget_bytes is not None:
            needed = (self.loaded_element_count + 1) * BYTES_PER_ELEMENT
            if needed > self.memory_budget_bytes:
                raise MemoryOverflowError(needed, self.memory_budget_bytes)
        cls = self.registry.resolve_class(raw["class"])
        element = LazyElement(self, raw, cls)
        self._elements[key] = element
        return element

    def _element_for_uid(self, uid: str) -> LazyElement:
        try:
            raw = self._uid_index[str(uid)]
        except KeyError:
            raise MetamodelError(
                f"dangling cross reference to {uid!r}"
            ) from None
        return self._element_for(raw)

    def find_by_uid(self, uid: str) -> Optional[LazyElement]:
        """Point lookup by ``uid`` — the lazy resource's headline ability:
        resolve one element of a huge model without walking to it."""
        if str(uid) not in self._uid_index:
            return None
        return self._element_for_uid(uid)

    def _materialize(self, raw: Dict[str, Any]) -> ModelObject:
        eager = ModelResource(
            registry=self.registry,
            memory_budget_bytes=self.memory_budget_bytes,
        )
        return eager.from_dict({"format": self.FORMAT, "root": raw})
