"""XMI-flavoured XML persistence — the interchange format twin of the JSON
resource.

EMF's native serialisation is XMI; tools exchange ``.xmi``/``.ssam`` files,
not JSON.  This writer/reader produces an XMI-like dialect:

- one XML element per model object, tag = metaclass name, with an
  ``xsi:type``-style ``class`` attribute carrying the qualified name;
- attributes serialised as XML attributes (many-valued ones as child
  ``<attr name="...">value</attr>`` elements to preserve types);
- containment references as nested elements grouped by feature;
- cross references as ``ref="<uid>"`` attributes resolved in a second pass
  (the same eager whole-model loading semantics as the JSON resource).

Round trip guarantee: ``read(write(model))`` is structurally identical to
the JSON resource's clone of the model.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.metamodel.core import MetamodelError, ModelObject
from repro.metamodel.registry import PackageRegistry, global_registry

_ROOT_TAG = "xmi"
_VERSION = "repro-xmi/1"


def _attribute_to_text(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


def _text_to_attribute(text: str, type_name: str) -> Any:
    if type_name == "bool":
        return text == "true"
    if type_name == "int":
        return int(text)
    if type_name == "float":
        return float(text)
    return text


class XmiResource:
    """XMI-like persistence over the same registry as :class:`ModelResource`."""

    def __init__(self, registry: Optional[PackageRegistry] = None) -> None:
        self.registry = registry or global_registry()

    # -- write -----------------------------------------------------------

    def to_element(self, obj: ModelObject) -> ET.Element:
        cls = obj.metaclass
        element = ET.Element(cls.name)
        element.set("class", cls.qualified_name())
        element.set("uid", obj.uid)
        for name, attr in cls.all_attributes().items():
            if not obj.is_set(name):
                continue
            value = obj.get(name)
            if attr.many:
                for item in value:
                    child = ET.SubElement(element, "attr")
                    child.set("name", name)
                    child.text = _attribute_to_text(item)
            elif value is not None:
                element.set(name, _attribute_to_text(value))
        for name, ref in cls.all_references().items():
            if not obj.is_set(name):
                continue
            value = obj.get(name)
            if ref.containment:
                items = value if ref.many else ([value] if value else [])
                if not items:
                    continue
                group = ET.SubElement(element, "feature")
                group.set("name", name)
                for item in items:
                    group.append(self.to_element(item))
            else:
                items = value if ref.many else ([value] if value else [])
                for item in items:
                    child = ET.SubElement(element, "ref")
                    child.set("name", name)
                    child.set("target", item.uid)
        return element

    def write(self, root: ModelObject, path: Union[str, Path]) -> Path:
        document = ET.Element(_ROOT_TAG)
        document.set("version", _VERSION)
        document.append(self.to_element(root))
        tree = ET.ElementTree(document)
        ET.indent(tree)
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tree.write(path, encoding="utf-8", xml_declaration=True)
        return path

    def to_string(self, root: ModelObject) -> str:
        document = ET.Element(_ROOT_TAG)
        document.set("version", _VERSION)
        document.append(self.to_element(root))
        ET.indent(document)
        return ET.tostring(document, encoding="unicode")

    # -- read ------------------------------------------------------------

    def from_element(self, element: ET.Element) -> ModelObject:
        uid_map: Dict[str, ModelObject] = {}
        pending: List[Tuple[ModelObject, str, bool, str]] = []
        root = self._build(element, uid_map, pending)
        grouped: Dict[Tuple[int, str], List[ModelObject]] = {}
        for obj, feature, many, target_uid in pending:
            try:
                target = uid_map[target_uid]
            except KeyError:
                raise MetamodelError(
                    f"dangling cross reference to {target_uid!r}"
                ) from None
            if many:
                grouped.setdefault((id(obj), feature), []).append(target)
                grouped_key = (id(obj), feature)
                obj.set(feature, grouped[grouped_key])
            else:
                obj.set(feature, target)
        return root

    def _build(
        self,
        element: ET.Element,
        uid_map: Dict[str, ModelObject],
        pending: List[Tuple[ModelObject, str, bool, str]],
    ) -> ModelObject:
        qualified = element.get("class")
        if not qualified:
            raise MetamodelError(
                f"element <{element.tag}> lacks a class attribute"
            )
        cls = self.registry.resolve_class(qualified)
        obj = ModelObject(cls)
        uid = element.get("uid")
        if uid:
            uid_map[uid] = obj
        attributes = cls.all_attributes()
        references = cls.all_references()
        for name, raw in element.attrib.items():
            if name in ("class", "uid"):
                continue
            attr = attributes.get(name)
            if attr is None:
                raise MetamodelError(
                    f"class {cls.name!r} has no attribute {name!r}"
                )
            obj.set(name, _text_to_attribute(raw, attr.type_name))
        many_values: Dict[str, List[Any]] = {}
        for child in element:
            if child.tag == "attr":
                name = child.get("name", "")
                attr = attributes.get(name)
                if attr is None or not attr.many:
                    raise MetamodelError(
                        f"class {cls.name!r} has no many-valued attribute "
                        f"{name!r}"
                    )
                many_values.setdefault(name, []).append(
                    _text_to_attribute(child.text or "", attr.type_name)
                )
            elif child.tag == "feature":
                name = child.get("name", "")
                ref = references.get(name)
                if ref is None or not ref.containment:
                    raise MetamodelError(
                        f"class {cls.name!r} has no containment reference "
                        f"{name!r}"
                    )
                children = [
                    self._build(grand, uid_map, pending) for grand in child
                ]
                if ref.many:
                    obj.set(name, children)
                elif children:
                    obj.set(name, children[0])
            elif child.tag == "ref":
                name = child.get("name", "")
                ref = references.get(name)
                if ref is None or ref.containment:
                    raise MetamodelError(
                        f"class {cls.name!r} has no cross reference {name!r}"
                    )
                pending.append(
                    (obj, name, ref.many, child.get("target", ""))
                )
            else:
                raise MetamodelError(
                    f"unexpected element <{child.tag}> under {cls.name}"
                )
        for name, items in many_values.items():
            obj.set(name, items)
        return obj

    def read(self, path: Union[str, Path]) -> ModelObject:
        try:
            tree = ET.parse(path)
        except ET.ParseError as exc:
            raise MetamodelError(f"malformed XMI file {path}: {exc}") from exc
        return self._from_document(tree.getroot(), path)

    def from_string(self, text: str) -> ModelObject:
        try:
            document = ET.fromstring(text)
        except ET.ParseError as exc:
            raise MetamodelError(f"malformed XMI text: {exc}") from exc
        return self._from_document(document, "<string>")

    def _from_document(self, document: ET.Element, source) -> ModelObject:
        if document.tag != _ROOT_TAG or document.get("version") != _VERSION:
            raise MetamodelError(
                f"{source}: not a {_VERSION} document"
            )
        children = list(document)
        if len(children) != 1:
            raise MetamodelError(
                f"{source}: expected exactly one root object, "
                f"got {len(children)}"
            )
        return self.from_element(children[0])
