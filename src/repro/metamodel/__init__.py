"""A small metamodelling kernel — the repository's EMF/Ecore substitute.

The kernel provides just enough of Ecore's semantics for SSAM and the model
federation machinery described in the paper:

- :class:`MetaPackage` / :class:`MetaClass` / :class:`MetaAttribute` /
  :class:`MetaReference` — the metamodel layer (Ecore's ``EPackage`` /
  ``EClass`` / ``EAttribute`` / ``EReference``);
- :class:`ModelObject` — the instance layer (Ecore's ``EObject``) with typed
  slots, containment tracking and reflective access;
- :class:`ModelResource` — whole-model persistence (JSON) that *eagerly* loads
  every element, reproducing EMF's load-everything behaviour that the paper's
  scalability experiment (Table VI) hinges on;
- :class:`LazyModelResource` — the scalable counterpart: same format, but
  elements are resolved on reference with loaded-element accounting, so a
  long-lived service can hold models far past the eager budget;
- :mod:`repro.metamodel.validation` — machine-executable constraints.
"""

from repro.metamodel.core import (
    MetaAttribute,
    MetaClass,
    MetaPackage,
    MetaReference,
    ModelObject,
    MetamodelError,
    TypeCheckError,
)
from repro.metamodel.registry import PackageRegistry, global_registry
from repro.metamodel.serialization import (
    MemoryOverflowError,
    ModelResource,
    estimate_element_bytes,
)
from repro.metamodel.lazy import LazyElement, LazyModelResource
from repro.metamodel.validation import (
    Constraint,
    Diagnostic,
    Severity,
    validate,
)
from repro.metamodel.xmi import XmiResource
from repro.metamodel.indexing import (
    ModelIndex,
    build_index,
    index_model_file,
)

__all__ = [
    "MetaAttribute",
    "MetaClass",
    "MetaPackage",
    "MetaReference",
    "ModelObject",
    "MetamodelError",
    "TypeCheckError",
    "PackageRegistry",
    "global_registry",
    "ModelResource",
    "LazyElement",
    "LazyModelResource",
    "MemoryOverflowError",
    "estimate_element_bytes",
    "Constraint",
    "Diagnostic",
    "Severity",
    "validate",
    "XmiResource",
    "ModelIndex",
    "build_index",
    "index_model_file",
]
