"""Package registry — lookup of metaclasses by qualified name or namespace URI.

EMF keeps a global ``EPackage.Registry``; model (de)serialisation resolves
class names against it.  We reproduce that with :class:`PackageRegistry` and a
module-level :func:`global_registry` instance that the SSAM packages register
into at import time.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.metamodel.core import MetaClass, MetamodelError, MetaPackage


class PackageRegistry:
    """Maps package names and namespace URIs to :class:`MetaPackage` objects."""

    def __init__(self) -> None:
        self._by_name: Dict[str, MetaPackage] = {}
        self._by_uri: Dict[str, MetaPackage] = {}

    def register(self, package: MetaPackage) -> MetaPackage:
        existing = self._by_name.get(package.name)
        if existing is not None and existing is not package:
            raise MetamodelError(
                f"a different package named {package.name!r} is already registered"
            )
        self._by_name[package.name] = package
        self._by_uri[package.ns_uri] = package
        return package

    def package(self, name_or_uri: str) -> MetaPackage:
        pkg = self._by_name.get(name_or_uri) or self._by_uri.get(name_or_uri)
        if pkg is None:
            raise MetamodelError(f"no registered package {name_or_uri!r}")
        return pkg

    def packages(self) -> Iterable[MetaPackage]:
        return self._by_name.values()

    def resolve_class(self, qualified_name: str) -> MetaClass:
        """Resolve ``package.Class`` (or a bare class name, searched across
        all registered packages) to a :class:`MetaClass`."""
        if "." in qualified_name:
            pkg_name, _, cls_name = qualified_name.rpartition(".")
            return self.package(pkg_name).get(cls_name)
        matches = [
            pkg.get(qualified_name)
            for pkg in self._by_name.values()
            if qualified_name in pkg
        ]
        if not matches:
            raise MetamodelError(f"no registered class {qualified_name!r}")
        if len(matches) > 1:
            names = sorted(m.qualified_name() for m in matches)
            raise MetamodelError(
                f"ambiguous class name {qualified_name!r}: {names}"
            )
        return matches[0]

    def find_class(self, qualified_name: str) -> Optional[MetaClass]:
        try:
            return self.resolve_class(qualified_name)
        except MetamodelError:
            return None


_GLOBAL = PackageRegistry()


def global_registry() -> PackageRegistry:
    """The process-wide registry used by SSAM and the serialisation layer."""
    return _GLOBAL
