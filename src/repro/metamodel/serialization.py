"""Whole-model persistence — JSON serialisation of containment trees.

The resource deliberately reproduces EMF's *load-everything* behaviour: a
:class:`ModelResource` materialises every element of a model before any query
can run.  The paper's scalability study (Table VI) attributes SAME's memory
overflow on its largest model set to exactly this property, so the resource
exposes:

- :func:`estimate_element_bytes` — the per-element in-memory cost model;
- ``memory_budget_bytes`` — an optional cap; loading (or counting) a model
  whose estimated footprint exceeds the cap raises
  :class:`MemoryOverflowError`, which is how the ``Set5 → N/A`` row of
  Table VI is reproduced deterministically.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.metamodel.core import MetamodelError, ModelObject
from repro.metamodel.registry import PackageRegistry, global_registry

#: Approximate bytes a loaded model element occupies in an EMF-style
#: object graph (object header, slot table, notification adapters).  The
#: constant is calibrated so that ~5.7e6 elements fit in a few GiB while
#: ~5.7e8 elements exceed any realistic JVM heap, matching Table VI.
BYTES_PER_ELEMENT = 480


class MemoryOverflowError(MemoryError):
    """Loading a model would exceed the configured memory budget."""

    def __init__(self, needed_bytes: int, budget_bytes: int) -> None:
        super().__init__(
            f"model requires ~{needed_bytes} bytes but the resource budget "
            f"is {budget_bytes} bytes"
        )
        self.needed_bytes = needed_bytes
        self.budget_bytes = budget_bytes


def estimate_element_bytes(element_count: int) -> int:
    """Estimated resident size of a fully-loaded model of ``element_count``
    elements under eager EMF-style loading."""
    return element_count * BYTES_PER_ELEMENT


def _serialize_value(value: Any) -> Any:
    if isinstance(value, ModelObject):
        raise MetamodelError("attribute slots must not hold model objects")
    return value


class ModelResource:
    """Persists a containment tree of :class:`ModelObject` to and from JSON.

    Cross references are serialised as ``{"$ref": <uid>}`` and resolved in a
    second pass after the whole tree has been materialised — i.e. loading is
    eager and complete, as in EMF's default XMI resource.
    """

    FORMAT = "repro-model/1"

    def __init__(
        self,
        registry: Optional[PackageRegistry] = None,
        memory_budget_bytes: Optional[int] = None,
    ) -> None:
        self.registry = registry or global_registry()
        self.memory_budget_bytes = memory_budget_bytes

    # -- save ---------------------------------------------------------------

    def to_dict(self, root: ModelObject) -> Dict[str, Any]:
        return {
            "format": self.FORMAT,
            "root": self._serialize_object(root),
        }

    def _serialize_object(self, obj: ModelObject) -> Dict[str, Any]:
        cls = obj.metaclass
        out: Dict[str, Any] = {
            "class": cls.qualified_name(),
            "uid": obj.uid,
        }
        attrs: Dict[str, Any] = {}
        for name in cls.all_attributes():
            if obj.is_set(name):
                attrs[name] = _serialize_value(obj.get(name))
        if attrs:
            out["attributes"] = attrs
        refs: Dict[str, Any] = {}
        for name, ref in cls.all_references().items():
            if not obj.is_set(name):
                continue
            value = obj.get(name)
            if ref.containment:
                if ref.many:
                    refs[name] = [self._serialize_object(v) for v in value]
                elif value is not None:
                    refs[name] = self._serialize_object(value)
            else:
                if ref.many:
                    refs[name] = [{"$ref": v.uid} for v in value]
                elif value is not None:
                    refs[name] = {"$ref": value.uid}
        if refs:
            out["references"] = refs
        return out

    def save(self, root: ModelObject, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(root), handle, indent=2)
        return path

    # -- load ----------------------------------------------------------------

    def from_dict(self, data: Dict[str, Any]) -> ModelObject:
        if data.get("format") != self.FORMAT:
            raise MetamodelError(
                f"unsupported model format {data.get('format')!r}"
            )
        uid_map: Dict[str, ModelObject] = {}
        pending: List[tuple] = []
        root = self._deserialize_object(data["root"], uid_map, pending)
        self._check_budget(root)
        for obj, feature, ref_data in pending:
            if isinstance(ref_data, list):
                targets = [self._resolve(uid_map, item) for item in ref_data]
                obj.set(feature, targets)
            else:
                obj.set(feature, self._resolve(uid_map, ref_data))
        return root

    def _check_budget(self, root: ModelObject) -> None:
        if self.memory_budget_bytes is None:
            return
        needed = estimate_element_bytes(root.element_count())
        if needed > self.memory_budget_bytes:
            raise MemoryOverflowError(needed, self.memory_budget_bytes)

    def check_loadable(self, element_count: int) -> None:
        """Pre-flight budget check for a model of ``element_count`` elements.

        Raises :class:`MemoryOverflowError` when an eager load would not fit,
        without attempting the load itself.
        """
        if self.memory_budget_bytes is None:
            return
        needed = estimate_element_bytes(element_count)
        if needed > self.memory_budget_bytes:
            raise MemoryOverflowError(needed, self.memory_budget_bytes)

    @staticmethod
    def _resolve(uid_map: Dict[str, ModelObject], ref_data: Any) -> ModelObject:
        uid = ref_data.get("$ref") if isinstance(ref_data, dict) else None
        if uid is None:
            raise MetamodelError(f"malformed cross reference: {ref_data!r}")
        try:
            return uid_map[uid]
        except KeyError:
            raise MetamodelError(
                f"dangling cross reference to {uid!r}"
            ) from None

    def _deserialize_object(
        self,
        data: Dict[str, Any],
        uid_map: Dict[str, ModelObject],
        pending: List[tuple],
    ) -> ModelObject:
        cls = self.registry.resolve_class(data["class"])
        obj = ModelObject(cls)
        uid = data.get("uid")
        if uid:
            uid_map[uid] = obj
        for name, value in data.get("attributes", {}).items():
            obj.set(name, value)
        for name, value in data.get("references", {}).items():
            ref = cls.all_references().get(name)
            if ref is None:
                raise MetamodelError(
                    f"class {cls.name!r} has no reference {name!r}"
                )
            if ref.containment:
                if ref.many:
                    children = [
                        self._deserialize_object(item, uid_map, pending)
                        for item in value
                    ]
                    obj.set(name, children)
                else:
                    obj.set(name, self._deserialize_object(value, uid_map, pending))
            else:
                pending.append((obj, name, value))
        return obj

    def load(self, path: Union[str, Path]) -> ModelObject:
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
        return self.from_dict(data)

    def clone(self, root: ModelObject) -> ModelObject:
        """Deep-copy a containment tree via a serialise/deserialise round trip."""
        return self.from_dict(self.to_dict(root))
