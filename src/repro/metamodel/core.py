"""Core metamodel layer: metaclasses, features and model objects.

The design mirrors Ecore closely enough that a reader familiar with EMF can
map every concept one-to-one:

====================  =======================
Ecore                 this module
====================  =======================
``EPackage``          :class:`MetaPackage`
``EClass``            :class:`MetaClass`
``EAttribute``        :class:`MetaAttribute`
``EReference``        :class:`MetaReference`
``EObject``           :class:`ModelObject`
``eGet``/``eSet``     :meth:`ModelObject.get` / :meth:`ModelObject.set`
``eContainer``        :attr:`ModelObject.container`
``eAllContents``      :meth:`ModelObject.all_contents`
====================  =======================
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple


class MetamodelError(Exception):
    """Raised for structural errors in metamodel definitions or instances."""


class TypeCheckError(MetamodelError):
    """Raised when a slot assignment violates the feature's declared type."""


#: Supported primitive attribute types, mapping type name -> validator.
_PRIMITIVE_TYPES: Dict[str, Callable[[Any], bool]] = {
    "string": lambda v: isinstance(v, str),
    "int": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "float": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "bool": lambda v: isinstance(v, bool),
    "any": lambda v: True,
}


class MetaAttribute:
    """A typed, possibly multi-valued attribute of a :class:`MetaClass`.

    Parameters
    ----------
    name:
        Feature name, used as the slot key on instances.
    type_name:
        One of ``string``, ``int``, ``float``, ``bool``, ``any``, or an
        enumeration given as ``enum:<v1>|<v2>|...``.
    default:
        Default value returned before the slot is first assigned.  For
        many-valued attributes the default is always a fresh empty list.
    many:
        Whether the attribute holds a list of values.
    required:
        Whether validation should flag an unset (``None``) value.
    """

    def __init__(
        self,
        name: str,
        type_name: str = "string",
        default: Any = None,
        many: bool = False,
        required: bool = False,
        doc: str = "",
    ) -> None:
        self.name = name
        self.type_name = type_name
        self.default = default
        self.many = many
        self.required = required
        self.doc = doc
        self._enum_literals: Optional[Tuple[str, ...]] = None
        if type_name.startswith("enum:"):
            literals = tuple(part for part in type_name[5:].split("|") if part)
            if not literals:
                raise MetamodelError(f"enum attribute {name!r} has no literals")
            self._enum_literals = literals
        elif type_name not in _PRIMITIVE_TYPES:
            raise MetamodelError(
                f"unknown attribute type {type_name!r} for attribute {name!r}"
            )

    @property
    def is_enum(self) -> bool:
        return self._enum_literals is not None

    @property
    def enum_literals(self) -> Tuple[str, ...]:
        if self._enum_literals is None:
            raise MetamodelError(f"attribute {self.name!r} is not an enum")
        return self._enum_literals

    def check_value(self, value: Any) -> None:
        """Raise :class:`TypeCheckError` if ``value`` is not assignable."""
        if value is None:
            return
        if self._enum_literals is not None:
            if value not in self._enum_literals:
                raise TypeCheckError(
                    f"attribute {self.name!r}: {value!r} is not one of "
                    f"{self._enum_literals}"
                )
            return
        if not _PRIMITIVE_TYPES[self.type_name](value):
            raise TypeCheckError(
                f"attribute {self.name!r}: expected {self.type_name}, "
                f"got {type(value).__name__} ({value!r})"
            )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        flags = "*" if self.many else ""
        return f"<MetaAttribute {self.name}:{self.type_name}{flags}>"


class MetaReference:
    """A reference from one :class:`MetaClass` to another.

    References may be *containment* references (the target is owned by the
    source; an object has at most one container) or plain cross references.
    The target class is named rather than referenced directly so that
    packages can be defined in any order and may reference classes from other
    packages.
    """

    def __init__(
        self,
        name: str,
        target: str,
        containment: bool = False,
        many: bool = False,
        required: bool = False,
        doc: str = "",
    ) -> None:
        self.name = name
        self.target = target
        self.containment = containment
        self.many = many
        self.required = required
        self.doc = doc

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        kind = "contains" if self.containment else "refers"
        flags = "*" if self.many else ""
        return f"<MetaReference {self.name} {kind} {self.target}{flags}>"


class MetaClass:
    """A class of the metamodel; may be abstract and may have supertypes.

    Feature lookup walks the supertype chain, so subclasses inherit all
    attributes and references of their supertypes (multiple inheritance is
    supported, matching Ecore).
    """

    def __init__(
        self,
        name: str,
        abstract: bool = False,
        supertypes: Optional[List["MetaClass"]] = None,
        doc: str = "",
    ) -> None:
        self.name = name
        self.abstract = abstract
        self.supertypes: List[MetaClass] = list(supertypes or [])
        self.doc = doc
        self.package: Optional["MetaPackage"] = None
        self._attributes: Dict[str, MetaAttribute] = {}
        self._references: Dict[str, MetaReference] = {}
        self._constraints: List[Any] = []  # validation.Constraint, untyped to avoid cycle

    # -- definition -----------------------------------------------------

    def add_attribute(self, attribute: MetaAttribute) -> MetaAttribute:
        if attribute.name in self._attributes or attribute.name in self._references:
            raise MetamodelError(
                f"duplicate feature {attribute.name!r} on class {self.name!r}"
            )
        self._attributes[attribute.name] = attribute
        return attribute

    def add_reference(self, reference: MetaReference) -> MetaReference:
        if reference.name in self._attributes or reference.name in self._references:
            raise MetamodelError(
                f"duplicate feature {reference.name!r} on class {self.name!r}"
            )
        self._references[reference.name] = reference
        return reference

    def attribute(
        self,
        name: str,
        type_name: str = "string",
        default: Any = None,
        many: bool = False,
        required: bool = False,
        doc: str = "",
    ) -> "MetaClass":
        """Fluent helper: define an attribute and return ``self``."""
        self.add_attribute(
            MetaAttribute(name, type_name, default, many, required, doc)
        )
        return self

    def reference(
        self,
        name: str,
        target: str,
        containment: bool = False,
        many: bool = False,
        required: bool = False,
        doc: str = "",
    ) -> "MetaClass":
        """Fluent helper: define a reference and return ``self``."""
        self.add_reference(
            MetaReference(name, target, containment, many, required, doc)
        )
        return self

    def add_constraint(self, constraint: Any) -> None:
        self._constraints.append(constraint)

    # -- lookup ----------------------------------------------------------

    def own_attributes(self) -> Iterable[MetaAttribute]:
        return self._attributes.values()

    def own_references(self) -> Iterable[MetaReference]:
        return self._references.values()

    def all_supertypes(self) -> List["MetaClass"]:
        """All (transitive) supertypes in method-resolution-like order."""
        seen: Dict[str, MetaClass] = {}
        stack = list(self.supertypes)
        while stack:
            cls = stack.pop(0)
            if cls.name not in seen:
                seen[cls.name] = cls
                stack.extend(cls.supertypes)
        return list(seen.values())

    def all_attributes(self) -> Dict[str, MetaAttribute]:
        features: Dict[str, MetaAttribute] = {}
        for cls in reversed(self.all_supertypes()):
            features.update(cls._attributes)
        features.update(self._attributes)
        return features

    def all_references(self) -> Dict[str, MetaReference]:
        features: Dict[str, MetaReference] = {}
        for cls in reversed(self.all_supertypes()):
            features.update(cls._references)
        features.update(self._references)
        return features

    def all_constraints(self) -> List[Any]:
        constraints: List[Any] = []
        for cls in reversed(self.all_supertypes()):
            constraints.extend(cls._constraints)
        constraints.extend(self._constraints)
        return constraints

    def find_feature(self, name: str):
        """Return the :class:`MetaAttribute` or :class:`MetaReference` named
        ``name``, or ``None`` if the class has no such feature."""
        return self.all_attributes().get(name) or self.all_references().get(name)

    def is_subtype_of(self, other: "MetaClass") -> bool:
        if other is self:
            return True
        return any(cls is other for cls in self.all_supertypes())

    def qualified_name(self) -> str:
        if self.package is None:
            return self.name
        return f"{self.package.name}.{self.name}"

    # -- instantiation ----------------------------------------------------

    def create(self, **slots: Any) -> "ModelObject":
        """Instantiate the class; keyword arguments initialise slots."""
        if self.abstract:
            raise MetamodelError(f"cannot instantiate abstract class {self.name!r}")
        obj = ModelObject(self)
        for key, value in slots.items():
            obj.set(key, value)
        return obj

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<MetaClass {self.qualified_name()}>"


class MetaPackage:
    """A named collection of metaclasses with a namespace URI."""

    def __init__(self, name: str, ns_uri: str = "", doc: str = "") -> None:
        self.name = name
        self.ns_uri = ns_uri or f"urn:repro:{name}"
        self.doc = doc
        self._classes: Dict[str, MetaClass] = {}

    def add_class(self, cls: MetaClass) -> MetaClass:
        if cls.name in self._classes:
            raise MetamodelError(
                f"duplicate class {cls.name!r} in package {self.name!r}"
            )
        cls.package = self
        self._classes[cls.name] = cls
        return cls

    def define(
        self,
        name: str,
        abstract: bool = False,
        supertypes: Optional[List[MetaClass]] = None,
        doc: str = "",
    ) -> MetaClass:
        """Create a class, register it in this package and return it."""
        return self.add_class(MetaClass(name, abstract, supertypes, doc))

    def get(self, name: str) -> MetaClass:
        try:
            return self._classes[name]
        except KeyError:
            raise MetamodelError(
                f"package {self.name!r} has no class {name!r}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._classes

    def classes(self) -> Iterable[MetaClass]:
        return self._classes.values()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<MetaPackage {self.name} ({len(self._classes)} classes)>"


_object_ids = itertools.count(1)


class ModelObject:
    """An instance of a :class:`MetaClass` with typed slots.

    Slots are accessed either reflectively (:meth:`get` / :meth:`set`) or via
    attribute access (``obj.name``), matching the convenience of generated
    EMF model code.  Containment is tracked: assigning an object into a
    containment reference removes it from its previous container.
    """

    __slots__ = ("_metaclass", "_slots", "_container", "_container_feature", "uid")

    def __init__(self, metaclass: MetaClass) -> None:
        object.__setattr__(self, "_metaclass", metaclass)
        object.__setattr__(self, "_slots", {})
        object.__setattr__(self, "_container", None)
        object.__setattr__(self, "_container_feature", None)
        object.__setattr__(self, "uid", f"_{next(_object_ids)}")

    # -- metadata ---------------------------------------------------------

    @property
    def metaclass(self) -> MetaClass:
        return self._metaclass

    def is_instance_of(self, cls: MetaClass) -> bool:
        return self._metaclass.is_subtype_of(cls)

    def is_kind_of(self, class_name: str) -> bool:
        """True if the object's class, or any supertype, is named ``class_name``."""
        if self._metaclass.name == class_name:
            return True
        return any(c.name == class_name for c in self._metaclass.all_supertypes())

    # -- containment ------------------------------------------------------

    @property
    def container(self) -> Optional["ModelObject"]:
        return self._container

    @property
    def containing_feature(self) -> Optional[str]:
        return self._container_feature

    def root(self) -> "ModelObject":
        obj = self
        while obj._container is not None:
            obj = obj._container
        return obj

    def _set_container(
        self, container: Optional["ModelObject"], feature: Optional[str]
    ) -> None:
        old = self._container
        old_feature = self._container_feature
        moved = old is not None and not (
            old is container and old_feature == feature
        )
        if moved:
            old._remove_contained(self, old_feature)
        object.__setattr__(self, "_container", container)
        object.__setattr__(self, "_container_feature", feature)

    def _remove_contained(
        self, child: "ModelObject", feature: Optional[str] = None
    ) -> None:
        for name, ref in self._metaclass.all_references().items():
            if not ref.containment:
                continue
            if feature is not None and name != feature:
                continue
            current = self._slots.get(name)
            if ref.many and isinstance(current, list) and child in current:
                current.remove(child)
            elif current is child:
                self._slots[name] = None

    # -- slot access --------------------------------------------------------

    def get(self, feature_name: str) -> Any:
        """Reflective slot read; returns defaults for unset slots."""
        cls = self._metaclass
        attr = cls.all_attributes().get(feature_name)
        if attr is not None:
            if feature_name not in self._slots:
                if attr.many:
                    self._slots[feature_name] = []
                else:
                    return attr.default
            return self._slots[feature_name]
        ref = cls.all_references().get(feature_name)
        if ref is not None:
            if feature_name not in self._slots:
                if ref.many:
                    self._slots[feature_name] = []
                else:
                    return None
            return self._slots[feature_name]
        raise MetamodelError(
            f"class {cls.name!r} has no feature {feature_name!r}"
        )

    def set(self, feature_name: str, value: Any) -> None:
        """Reflective slot write with type checking and containment upkeep."""
        cls = self._metaclass
        attr = cls.all_attributes().get(feature_name)
        if attr is not None:
            if attr.many:
                if not isinstance(value, list):
                    raise TypeCheckError(
                        f"attribute {feature_name!r} is many-valued; expected list"
                    )
                for item in value:
                    attr.check_value(item)
                self._slots[feature_name] = list(value)
            else:
                attr.check_value(value)
                self._slots[feature_name] = value
            return
        ref = cls.all_references().get(feature_name)
        if ref is not None:
            self._set_reference(ref, value)
            return
        raise MetamodelError(
            f"class {cls.name!r} has no feature {feature_name!r}"
        )

    def _check_ref_target(self, ref: MetaReference, value: "ModelObject") -> None:
        if not isinstance(value, ModelObject):
            raise TypeCheckError(
                f"reference {ref.name!r}: expected ModelObject, "
                f"got {type(value).__name__}"
            )
        if not value.is_kind_of(ref.target):
            raise TypeCheckError(
                f"reference {ref.name!r}: expected instance of {ref.target!r}, "
                f"got {value.metaclass.name!r}"
            )

    def _set_reference(self, ref: MetaReference, value: Any) -> None:
        if ref.many:
            if not isinstance(value, list):
                raise TypeCheckError(
                    f"reference {ref.name!r} is many-valued; expected list"
                )
            for item in value:
                self._check_ref_target(ref, item)
            old = self._slots.get(ref.name)
            if ref.containment and isinstance(old, list):
                for item in old:
                    if item not in value:
                        item._set_container(None, None)
            self._slots[ref.name] = list(value)
            if ref.containment:
                for item in value:
                    item._set_container(self, ref.name)
        else:
            if value is not None:
                self._check_ref_target(ref, value)
            old = self._slots.get(ref.name)
            if ref.containment and isinstance(old, ModelObject) and old is not value:
                old._set_container(None, None)
            self._slots[ref.name] = value
            if ref.containment and value is not None:
                value._set_container(self, ref.name)

    def add(self, feature_name: str, value: "ModelObject") -> "ModelObject":
        """Append ``value`` to a many-valued reference (or attribute)."""
        cls = self._metaclass
        ref = cls.all_references().get(feature_name)
        if ref is not None:
            if not ref.many:
                raise MetamodelError(
                    f"reference {feature_name!r} is single-valued; use set()"
                )
            self._check_ref_target(ref, value)
            items = self._slots.setdefault(feature_name, [])
            items.append(value)
            if ref.containment:
                value._set_container(self, feature_name)
            return value
        attr = cls.all_attributes().get(feature_name)
        if attr is not None:
            if not attr.many:
                raise MetamodelError(
                    f"attribute {feature_name!r} is single-valued; use set()"
                )
            attr.check_value(value)
            self._slots.setdefault(feature_name, []).append(value)
            return value
        raise MetamodelError(
            f"class {cls.name!r} has no feature {feature_name!r}"
        )

    def remove(self, feature_name: str, value: "ModelObject") -> None:
        """Remove ``value`` from a many-valued feature."""
        items = self.get(feature_name)
        if not isinstance(items, list):
            raise MetamodelError(f"feature {feature_name!r} is not many-valued")
        items.remove(value)
        ref = self._metaclass.all_references().get(feature_name)
        if ref is not None and ref.containment and isinstance(value, ModelObject):
            value._set_container(None, None)

    def is_set(self, feature_name: str) -> bool:
        return feature_name in self._slots

    # -- attribute-style sugar ---------------------------------------------

    def __getattr__(self, name: str) -> Any:
        if name.startswith("_"):
            raise AttributeError(name)
        try:
            return self.get(name)
        except MetamodelError:
            raise AttributeError(
                f"{self._metaclass.name!r} object has no feature {name!r}"
            ) from None

    def __setattr__(self, name: str, value: Any) -> None:
        if name in ModelObject.__slots__:
            object.__setattr__(self, name, value)
        else:
            self.set(name, value)

    # -- traversal -----------------------------------------------------------

    def contents(self) -> List["ModelObject"]:
        """Directly contained objects (Ecore's ``eContents``)."""
        out: List[ModelObject] = []
        for name, ref in self._metaclass.all_references().items():
            if not ref.containment:
                continue
            value = self._slots.get(name)
            if isinstance(value, list):
                out.extend(v for v in value if isinstance(v, ModelObject))
            elif isinstance(value, ModelObject):
                out.append(value)
        return out

    def all_contents(self) -> Iterator["ModelObject"]:
        """All transitively contained objects, depth-first (``eAllContents``)."""
        for child in self.contents():
            yield child
            yield from child.all_contents()

    def element_count(self) -> int:
        """Number of model elements in this subtree (including ``self``)."""
        return 1 + sum(1 for _ in self.all_contents())

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        label = self._slots.get("name")
        if hasattr(label, "_slots"):  # LangString-like object
            label = label._slots.get("value", "")
        suffix = f" {label!r}" if isinstance(label, str) and label else ""
        return f"<{self._metaclass.name}{suffix} {self.uid}>"
