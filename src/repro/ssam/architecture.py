"""SSAM Architecture module (paper Fig. 5).

``ComponentElement`` is the abstract base of all architecture elements,
organised in ``ComponentPackage``s.  The module models exactly the concepts
the paper lists:

- ``Component`` — an atomic or composite component with a FIT rate
  (Failure-In-Time, 1e-9 failures/hour), a safety integrity level, a
  component type (system / hardware / software), ``safetyRelated`` and
  ``dynamic`` flags; components may be nested;
- ``ComponentRelationship`` — connects two components (optionally pinned to
  specific IO nodes);
- ``Function`` — with a tolerance type (1oo1, 1oo2, 1oo3, 2oo3);
- ``IONode`` — inputs and outputs of components, with the value being passed
  and its lower / upper limits (used by the runtime-monitor generator);
- ``FailureMode`` — failure modes of a component, each with a *nature*
  (Algorithm 1 treats loss-of-function-like natures as path-breaking), a
  probability distribution share, cause and exposure, citations to hazards
  and to the components affected by the failure;
- ``FailureEffect`` — the effect of a failure, possibly citing another
  component;
- ``SafetyMechanism`` — deployable on a component to achieve diagnostic
  coverage of specific failure modes, with a cost used by the optimiser.
"""

from __future__ import annotations

from typing import Tuple

from repro.metamodel import MetaPackage, ModelObject, global_registry
from repro.ssam.base import BASE, set_name

ARCHITECTURE = MetaPackage(
    "ssam_architecture", "urn:ssam:architecture", doc="SSAM Architecture module"
)

#: All failure-mode natures SSAM distinguishes.
FAILURE_NATURES: Tuple[str, ...] = (
    "loss_of_function",
    "open",
    "omission",
    "short",
    "degraded",
    "erroneous",
    "drift",
    "commission",
    "other",
)

#: Natures Algorithm 1 treats as "loss of function or similar": the failed
#: component no longer conducts its path, so a component sitting on *all*
#: input→output paths becomes a single-point failure.
PATH_BREAKING_NATURES: Tuple[str, ...] = ("loss_of_function", "open", "omission")

_model_element = BASE.get("ModelElement")
_package = BASE.get("Package")
_package_interface = BASE.get("PackageInterface")

_component_element = ARCHITECTURE.define(
    "ComponentElement",
    abstract=True,
    supertypes=[_model_element],
    doc="Abstract base of architecture elements.",
)

_io_node = ARCHITECTURE.define(
    "IONode",
    supertypes=[_component_element],
    doc="An input or output of a component, with value and limits.",
)
_io_node.attribute("direction", "enum:input|output|inout", default="input")
_io_node.attribute("value", "float", default=0.0)
_io_node.attribute("lowerLimit", "float")
_io_node.attribute("upperLimit", "float")
_io_node.attribute("unit", "string", default="")

_failure_effect = ARCHITECTURE.define(
    "FailureEffect",
    supertypes=[_component_element],
    doc="The effect of a failure; may cite an affected component.",
)
_failure_effect.attribute("text", "string", default="")
_failure_effect.attribute(
    "impact",
    "enum:none|DVF|IVF",
    default="none",
    doc="Directly / indirectly violates the safety goal (Table I).",
)

_failure_mode = ARCHITECTURE.define(
    "FailureMode",
    supertypes=[_component_element],
    doc="A failure mode of a component.",
)
_failure_mode.attribute(
    "nature", "enum:" + "|".join(FAILURE_NATURES), default="other"
)
_failure_mode.attribute(
    "distribution",
    "float",
    default=0.0,
    doc="Share of the component's failure rate attributed to this mode, in [0,1].",
)
_failure_mode.attribute("cause", "string", default="")
_failure_mode.attribute("exposure", "string", default="")
_failure_mode.attribute(
    "safetyRelated",
    "bool",
    default=False,
    doc="Set by the automated FMEA when the mode can cause a hazardous event.",
)
_failure_mode.reference("effects", "FailureEffect", containment=True, many=True)
_failure_mode.reference(
    "hazards", "ModelElement", many=True, doc="Cited hazards from a HazardPackage."
)
_failure_mode.reference(
    "affectedComponents",
    "Component",
    many=True,
    doc="Components affected by this failure mode (via the cite facility).",
)

_safety_mechanism = ARCHITECTURE.define(
    "SafetyMechanism",
    supertypes=[_component_element],
    doc="A diagnostic mechanism deployable on a component.",
)
_safety_mechanism.attribute(
    "coverage", "float", default=0.0, doc="Diagnostic coverage in [0, 1]."
)
_safety_mechanism.attribute(
    "cost", "float", default=0.0, doc="Deployment cost (e.g. engineering hours)."
)
_safety_mechanism.reference(
    "covers", "FailureMode", many=True, doc="Failure modes this mechanism covers."
)

_function = ARCHITECTURE.define(
    "Function",
    supertypes=[_component_element],
    doc="A function with an M-out-of-N tolerance type.",
)
_function.attribute("tolerance", "enum:1oo1|1oo2|1oo3|2oo3", default="1oo1")
_function.attribute(
    "safetyRelated", "bool", default=False, doc="Whether the function is safety-related."
)

_component = ARCHITECTURE.define(
    "Component",
    supertypes=[_component_element],
    doc="An atomic or composite system component.",
)
_component.attribute("fit", "float", default=0.0, doc="Failure-In-Time (1e-9 f/h).")
_component.attribute(
    "integrityLevel",
    "enum:QM|ASIL-A|ASIL-B|ASIL-C|ASIL-D|SIL-1|SIL-2|SIL-3|SIL-4",
    default="QM",
)
_component.attribute(
    "componentType", "enum:system|hardware|software", default="hardware"
)
_component.attribute(
    "safetyRelated",
    "bool",
    default=False,
    doc="True if any failure mode would cause a hazardous event.",
)
_component.attribute(
    "dynamic",
    "bool",
    default=False,
    doc="Dynamic components get runtime monitors generated for them.",
)
_component.attribute(
    "componentClass",
    "string",
    default="",
    doc="Catalogue type used to look up reliability data (e.g. 'Diode').",
)
_component.reference("subcomponents", "Component", containment=True, many=True)
_component.reference("ioNodes", "IONode", containment=True, many=True)
_component.reference("failureModes", "FailureMode", containment=True, many=True)
_component.reference("functions", "Function", containment=True, many=True)
_component.reference(
    "safetyMechanisms", "SafetyMechanism", containment=True, many=True
)
_component.reference(
    "relationships", "ComponentRelationship", containment=True, many=True,
    doc="Connections among this component's subcomponents and IO nodes.",
)

_relationship = ARCHITECTURE.define(
    "ComponentRelationship",
    supertypes=[_component_element],
    doc="A connection between two components.",
)
_relationship.attribute(
    "kind", "enum:signal|power|data|mechanical", default="signal"
)
_relationship.reference("source", "Component", required=True)
_relationship.reference("target", "Component", required=True)
_relationship.reference("sourceNode", "IONode")
_relationship.reference("targetNode", "IONode")

_component_pkg_interface = ARCHITECTURE.define(
    "ComponentPackageInterface",
    supertypes=[_package_interface],
    doc="Exposes selected architecture elements of a package.",
)

_component_package = ARCHITECTURE.define(
    "ComponentPackage",
    supertypes=[_package],
    doc="A module of architecture elements.",
)
_component_package.reference(
    "components", "Component", containment=True, many=True
)
_component_package.reference(
    "interfaces", "ComponentPackageInterface", containment=True, many=True
)

global_registry().register(ARCHITECTURE)


def component_package(name: str, pkg_id: str = "") -> ModelObject:
    pkg = _component_package.create(id=pkg_id or name)
    return set_name(pkg, name)


def component(
    name: str,
    fit: float = 0.0,
    component_class: str = "",
    component_type: str = "hardware",
    integrity_level: str = "QM",
    dynamic: bool = False,
    comp_id: str = "",
) -> ModelObject:
    comp = _component.create(
        fit=float(fit),
        componentClass=component_class or name,
        componentType=component_type,
        integrityLevel=integrity_level,
        dynamic=dynamic,
        id=comp_id or name,
    )
    return set_name(comp, name)


def io_node(
    name: str,
    direction: str = "input",
    value: float = 0.0,
    lower_limit: float = None,
    upper_limit: float = None,
    unit: str = "",
) -> ModelObject:
    node = _io_node.create(
        direction=direction, value=float(value), unit=unit, id=name
    )
    if lower_limit is not None:
        node.set("lowerLimit", float(lower_limit))
    if upper_limit is not None:
        node.set("upperLimit", float(upper_limit))
    return set_name(node, name)


def failure_mode(
    name: str,
    nature: str = "other",
    distribution: float = 0.0,
    cause: str = "",
    exposure: str = "",
) -> ModelObject:
    mode = _failure_mode.create(
        nature=nature,
        distribution=float(distribution),
        cause=cause,
        exposure=exposure,
        id=name,
    )
    return set_name(mode, name)


def failure_effect(text: str, impact: str = "none") -> ModelObject:
    return _failure_effect.create(text=text, impact=impact, id=text)


def safety_mechanism(
    name: str, coverage: float, cost: float = 0.0
) -> ModelObject:
    mech = _safety_mechanism.create(
        coverage=float(coverage), cost=float(cost), id=name
    )
    return set_name(mech, name)


def function(name: str, tolerance: str = "1oo1", safety_related: bool = False) -> ModelObject:
    func = _function.create(tolerance=tolerance, safetyRelated=safety_related, id=name)
    return set_name(func, name)


def connect(
    parent: ModelObject,
    source: ModelObject,
    target: ModelObject,
    kind: str = "signal",
    source_node: ModelObject = None,
    target_node: ModelObject = None,
) -> ModelObject:
    """Create a relationship between two subcomponents of ``parent``."""
    rel = _relationship.create(kind=kind, source=source, target=target)
    if source_node is not None:
        rel.set("sourceNode", source_node)
    if target_node is not None:
        rel.set("targetNode", target_node)
    parent.add("relationships", rel)
    return rel
