"""The SSAM model root and its convenience API.

A ``SSAMModelRoot`` contains requirement, hazard, component and MBSA
packages.  :class:`SSAMModel` wraps the raw root object in a Python-friendly
facade: package management, element lookup by id, component iteration,
element counting (the scalability experiment's unit of size), persistence
and cloning.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator, List, Optional, Union

from repro.metamodel import (
    MetaPackage,
    ModelObject,
    ModelResource,
    global_registry,
)
from repro.ssam.base import BASE, set_name, text_of

SSAM_MODEL = MetaPackage("ssam_model", "urn:ssam:model", doc="SSAM model root")

_root = SSAM_MODEL.define(
    "SSAMModelRoot",
    supertypes=[BASE.get("ModelElement")],
    doc="Root of a SSAM model: holds packages of every module kind.",
)
_root.reference("requirementPackages", "RequirementPackage", containment=True, many=True)
_root.reference("hazardPackages", "HazardPackage", containment=True, many=True)
_root.reference("componentPackages", "ComponentPackage", containment=True, many=True)
_root.reference("mbsaPackages", "MBSAPackage", containment=True, many=True)

global_registry().register(SSAM_MODEL)


class SSAMModel:
    """A Python facade over a ``SSAMModelRoot`` containment tree."""

    def __init__(self, name: str = "model", root: Optional[ModelObject] = None) -> None:
        if root is None:
            root = _root.create(id=name)
            set_name(root, name)
        self.root = root

    # -- package management ---------------------------------------------------

    @property
    def name(self) -> str:
        return text_of(self.root)

    def add_requirement_package(self, pkg: ModelObject) -> ModelObject:
        return self.root.add("requirementPackages", pkg)

    def add_hazard_package(self, pkg: ModelObject) -> ModelObject:
        return self.root.add("hazardPackages", pkg)

    def add_component_package(self, pkg: ModelObject) -> ModelObject:
        return self.root.add("componentPackages", pkg)

    def add_mbsa_package(self, pkg: ModelObject) -> ModelObject:
        return self.root.add("mbsaPackages", pkg)

    @property
    def requirement_packages(self) -> List[ModelObject]:
        return self.root.get("requirementPackages")

    @property
    def hazard_packages(self) -> List[ModelObject]:
        return self.root.get("hazardPackages")

    @property
    def component_packages(self) -> List[ModelObject]:
        return self.root.get("componentPackages")

    @property
    def mbsa_packages(self) -> List[ModelObject]:
        return self.root.get("mbsaPackages")

    # -- queries ---------------------------------------------------------------

    def all_elements(self) -> Iterator[ModelObject]:
        """Every model element in the tree, root included."""
        yield self.root
        yield from self.root.all_contents()

    def element_count(self) -> int:
        """Number of model elements — the unit of size in Table VI."""
        return self.root.element_count()

    def find_by_id(self, element_id: str) -> Optional[ModelObject]:
        for obj in self.all_elements():
            if obj.metaclass.find_feature("id") and obj.get("id") == element_id:
                return obj
        return None

    def find_by_name(self, name: str) -> Optional[ModelObject]:
        for obj in self.all_elements():
            if text_of(obj) == name:
                return obj
        return None

    def elements_of_kind(self, class_name: str) -> List[ModelObject]:
        return [obj for obj in self.all_elements() if obj.is_kind_of(class_name)]

    def components(self) -> List[ModelObject]:
        """All components, at every nesting level."""
        return self.elements_of_kind("Component")

    def top_components(self) -> List[ModelObject]:
        """Components directly owned by component packages."""
        out: List[ModelObject] = []
        for pkg in self.component_packages:
            out.extend(pkg.get("components"))
        return out

    def hazards(self) -> List[ModelObject]:
        return self.elements_of_kind("Hazard")

    def requirements(self) -> List[ModelObject]:
        return self.elements_of_kind("Requirement")

    def safety_requirements(self) -> List[ModelObject]:
        return self.elements_of_kind("SafetyRequirement")

    def external_references(self) -> List[ModelObject]:
        return self.elements_of_kind("ExternalReference")

    # -- persistence ------------------------------------------------------------

    def save(self, path: Union[str, Path]) -> Path:
        return ModelResource().save(self.root, path)

    @classmethod
    def load(
        cls,
        path: Union[str, Path],
        memory_budget_bytes: Optional[int] = None,
    ) -> "SSAMModel":
        resource = ModelResource(memory_budget_bytes=memory_budget_bytes)
        return cls(root=resource.load(path))

    def clone(self) -> "SSAMModel":
        """Deep copy, e.g. for a what-if safety-mechanism deployment."""
        return SSAMModel(root=ModelResource().clone(self.root))

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<SSAMModel {self.name!r} ({self.element_count()} elements)>"
