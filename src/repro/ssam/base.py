"""SSAM Base module (paper Fig. 2).

The base module provides the facilities for extensibility, modularity and
traceability that every other SSAM module builds on:

- ``ModelElement`` — the root metaclass; carries an ``id``, a multi-language
  ``name`` (a ``LangString``), a description and any number of utility
  elements;
- ``LangString`` — a string tagged with its language;
- ``ImplementationConstraint`` — a *machine-executable* constraint attached
  to a model element (the paper executes EOL; we execute expressions in the
  query language of :mod:`repro.drivers.query`);
- ``ExternalReference`` — traceability to an external, heterogeneous model:
  location, driver type, metadata, and a machine-executable extraction query
  that, when executed, pulls information from the external model;
- ``Citation`` — a "cite" link from one model element to another, possibly
  across packages.
"""

from __future__ import annotations

from typing import Optional

from repro.metamodel import MetaPackage, ModelObject, global_registry

BASE = MetaPackage("ssam_base", "urn:ssam:base", doc="SSAM Base module")

_lang_string = BASE.define("LangString", doc="A string with a language tag.")
_lang_string.attribute("value", "string", default="")
_lang_string.attribute("lang", "string", default="en")

_utility = BASE.define(
    "UtilityElement",
    abstract=True,
    doc="Abstract base of the utility elements carried by ModelElements.",
)
_utility.attribute("key", "string", default="")

_constraint = BASE.define(
    "ImplementationConstraint",
    supertypes=[_utility],
    doc="A machine-executable constraint attached to a ModelElement.",
)
_constraint.attribute("language", "string", default="rql", doc="Constraint language.")
_constraint.attribute("body", "string", default="", doc="Executable constraint text.")
_constraint.attribute("description", "string", default="")

_external_ref = BASE.define(
    "ExternalReference",
    supertypes=[_utility],
    doc="Traceability to an external, heterogeneous model.",
)
_external_ref.attribute("location", "string", default="", doc="Path or URI of the external model.")
_external_ref.attribute(
    "type",
    "string",
    default="",
    doc="Driver type used to open the model (csv, json, xml, table, simulink, ssam).",
)
_external_ref.attribute("metadata", "string", default="", doc="Free-form metadata, e.g. sheet name.")
_external_ref.reference(
    "implementationConstraint",
    "ImplementationConstraint",
    containment=True,
    doc="Query executed against the external model to pull information.",
)

_model_element = BASE.define(
    "ModelElement",
    abstract=True,
    doc="Root of all SSAM elements; provides id, name, utilities, citations.",
)
_model_element.attribute("id", "string", default="")
_model_element.attribute("description", "string", default="")
_model_element.reference("name", "LangString", containment=True)
_model_element.reference(
    "utilities", "UtilityElement", containment=True, many=True
)
_model_element.reference(
    "cites",
    "ModelElement",
    many=True,
    doc="Traceability to elements possibly organised in other packages.",
)

_package = BASE.define(
    "Package",
    abstract=True,
    supertypes=[_model_element],
    doc="Abstract base of the SSAM package kinds.",
)

_package_interface = BASE.define(
    "PackageInterface",
    supertypes=[_model_element],
    doc="An interface exposing selected elements of a package for reuse.",
)
_package_interface.attribute("direction", "enum:provided|required", default="provided")
_package_interface.reference("exposes", "ModelElement", many=True)

global_registry().register(BASE)


def lang_string(value: str, lang: str = "en") -> ModelObject:
    """Create a ``LangString`` instance."""
    return _lang_string.create(value=value, lang=lang)


def text_of(element: Optional[ModelObject]) -> str:
    """The plain-text name of a ``ModelElement`` (empty string if unnamed).

    Accepts either a ``ModelElement`` (reads its ``name`` LangString) or a
    ``LangString`` directly.
    """
    if element is None:
        return ""
    if element.is_kind_of("LangString"):
        return element.get("value") or ""
    if element.metaclass.find_feature("name") is None:
        return ""
    name = element.get("name")
    if name is None:
        return ""
    return name.get("value") or ""


def set_name(element: ModelObject, value: str, lang: str = "en") -> ModelObject:
    """Set (replacing) the element's name and return the element."""
    element.set("name", lang_string(value, lang))
    return element


def external_reference(
    location: str,
    driver_type: str,
    query: str = "",
    metadata: str = "",
    language: str = "rql",
) -> ModelObject:
    """Create an ``ExternalReference`` with an optional extraction query."""
    ref = BASE.get("ExternalReference").create(
        location=location, type=driver_type, metadata=metadata
    )
    if query:
        ref.set(
            "implementationConstraint",
            BASE.get("ImplementationConstraint").create(
                language=language, body=query
            ),
        )
    return ref


def implementation_constraint(
    body: str, language: str = "rql", description: str = ""
) -> ModelObject:
    """Create an ``ImplementationConstraint``."""
    return BASE.get("ImplementationConstraint").create(
        body=body, language=language, description=description
    )
