"""SSAM — the Structured System Architecture Metamodel.

SSAM is the paper's comprehensive modelling language (Section IV-B).  It is
organised, exactly as in the paper, into five modules:

- :mod:`repro.ssam.base` — ``ModelElement``, ``LangString``, utility elements
  (``ImplementationConstraint``, ``ExternalReference``) and citations (Fig. 2);
- :mod:`repro.ssam.requirements` — requirement packages and (safety)
  requirements (Fig. 3);
- :mod:`repro.ssam.hazard` — hazards, hazardous situations, causes and
  control measures (Fig. 4);
- :mod:`repro.ssam.architecture` — components, IO nodes, relationships,
  failure modes, failure effects and safety mechanisms (Fig. 5);
- :mod:`repro.ssam.mbsa` — the Model-Based Systems Assurance module (Fig. 6).

All metaclasses live in :data:`SSAM` (one :class:`MetaPackage` per module,
registered in the global registry).  :mod:`repro.ssam.model` wraps the raw
metamodel objects in a convenient Python API, and :mod:`repro.ssam.builder`
offers fluent construction of architectures.
"""

from repro.ssam.base import BASE, lang_string, text_of
from repro.ssam.requirements import REQUIREMENTS
from repro.ssam.hazard import HAZARD
from repro.ssam.architecture import (
    ARCHITECTURE,
    FAILURE_NATURES,
    PATH_BREAKING_NATURES,
)
from repro.ssam.mbsa import MBSA
from repro.ssam.model import SSAMModel
from repro.ssam.builder import ArchitectureBuilder, ComponentHandle
from repro.ssam.constraints import ssam_constraints, validate_ssam

__all__ = [
    "BASE",
    "REQUIREMENTS",
    "HAZARD",
    "ARCHITECTURE",
    "MBSA",
    "FAILURE_NATURES",
    "PATH_BREAKING_NATURES",
    "SSAMModel",
    "ArchitectureBuilder",
    "ComponentHandle",
    "lang_string",
    "text_of",
    "ssam_constraints",
    "validate_ssam",
]
