"""SSAM Requirement module (paper Fig. 3).

``RequirementElement`` is the abstract base of ``Requirement``,
``SafetyRequirement`` and ``RequirementRelationship``.  Requirement elements
are organised in ``RequirementPackage``s which may expose
``RequirementPackageInterface``s so that requirements are modular, reusable
and interchangeable.
"""

from __future__ import annotations

from repro.metamodel import MetaPackage, ModelObject, global_registry
from repro.ssam.base import BASE, set_name

REQUIREMENTS = MetaPackage(
    "ssam_requirements", "urn:ssam:requirements", doc="SSAM Requirement module"
)

_model_element = BASE.get("ModelElement")
_package = BASE.get("Package")
_package_interface = BASE.get("PackageInterface")

_req_element = REQUIREMENTS.define(
    "RequirementElement",
    abstract=True,
    supertypes=[_model_element],
    doc="Abstract base of requirement elements.",
)

_requirement = REQUIREMENTS.define(
    "Requirement",
    supertypes=[_req_element],
    doc="A (functional) requirement with text and status.",
)
_requirement.attribute("text", "string", default="")
_requirement.attribute(
    "status",
    "enum:draft|reviewed|approved|implemented|verified",
    default="draft",
)
_requirement.attribute("rationale", "string", default="")

_safety_requirement = REQUIREMENTS.define(
    "SafetyRequirement",
    supertypes=[_requirement],
    doc="A requirement with an integrity level (functional part + rigour).",
)
_safety_requirement.attribute(
    "integrityLevel",
    "enum:QM|ASIL-A|ASIL-B|ASIL-C|ASIL-D|SIL-1|SIL-2|SIL-3|SIL-4",
    default="QM",
)

_req_relationship = REQUIREMENTS.define(
    "RequirementRelationship",
    supertypes=[_req_element],
    doc="A typed relationship between two requirement elements.",
)
_req_relationship.attribute(
    "kind", "enum:derives|refines|traces|conflicts|satisfies", default="derives"
)
_req_relationship.reference("source", "RequirementElement", required=True)
_req_relationship.reference("target", "RequirementElement", required=True)

_req_pkg_interface = REQUIREMENTS.define(
    "RequirementPackageInterface",
    supertypes=[_package_interface],
    doc="Exposes selected requirements of a package.",
)

_req_package = REQUIREMENTS.define(
    "RequirementPackage",
    supertypes=[_package],
    doc="A module of requirement elements.",
)
_req_package.reference("elements", "RequirementElement", containment=True, many=True)
_req_package.reference(
    "interfaces", "RequirementPackageInterface", containment=True, many=True
)

global_registry().register(REQUIREMENTS)


def requirement_package(name: str, pkg_id: str = "") -> ModelObject:
    pkg = _req_package.create(id=pkg_id or name)
    return set_name(pkg, name)


def requirement(name: str, text: str, req_id: str = "") -> ModelObject:
    req = _requirement.create(text=text, id=req_id or name)
    return set_name(req, name)


def safety_requirement(
    name: str, text: str, integrity_level: str = "QM", req_id: str = ""
) -> ModelObject:
    req = _safety_requirement.create(
        text=text, integrityLevel=integrity_level, id=req_id or name
    )
    return set_name(req, name)


def relate(
    source: ModelObject, target: ModelObject, kind: str = "derives"
) -> ModelObject:
    """Create a ``RequirementRelationship`` between two requirement elements."""
    return _req_relationship.create(kind=kind, source=source, target=target)
