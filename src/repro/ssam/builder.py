"""Fluent construction of SSAM architectures.

The builder mirrors what SAME's graphical system-design editor lets a user do
(paper Fig. 12): drop components, wire them, model IO nodes with limits and
attach failure modes and safety mechanisms.  It produces a composite
``Component`` whose ``relationships`` describe the wiring of its
subcomponents; connections to the composite's own boundary are expressed as
relationships whose source (resp. target) is the composite itself, which is
what the graph-based FMEA (Algorithm 1) uses to anchor input→output paths.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.metamodel import ModelObject
from repro.ssam import architecture as arch
from repro.ssam.base import text_of


class ComponentHandle:
    """A fluent wrapper around one ``Component`` under construction."""

    def __init__(self, element: ModelObject, builder: "ArchitectureBuilder") -> None:
        self.element = element
        self._builder = builder

    @property
    def name(self) -> str:
        return text_of(self.element)

    def input(
        self,
        name: str,
        value: float = 0.0,
        lower: Optional[float] = None,
        upper: Optional[float] = None,
        unit: str = "",
    ) -> "ComponentHandle":
        self.element.add(
            "ioNodes",
            arch.io_node(name, "input", value, lower, upper, unit),
        )
        return self

    def output(
        self,
        name: str,
        value: float = 0.0,
        lower: Optional[float] = None,
        upper: Optional[float] = None,
        unit: str = "",
    ) -> "ComponentHandle":
        self.element.add(
            "ioNodes",
            arch.io_node(name, "output", value, lower, upper, unit),
        )
        return self

    def failure_mode(
        self,
        name: str,
        nature: str = "other",
        distribution: float = 0.0,
        cause: str = "",
        exposure: str = "",
    ) -> "ComponentHandle":
        self.element.add(
            "failureModes",
            arch.failure_mode(name, nature, distribution, cause, exposure),
        )
        return self

    def safety_mechanism(
        self,
        name: str,
        coverage: float,
        cost: float = 0.0,
        covers: Optional[List[str]] = None,
    ) -> "ComponentHandle":
        """Attach a safety mechanism; ``covers`` names this component's
        failure modes the mechanism diagnoses (all of them when omitted)."""
        mech = arch.safety_mechanism(name, coverage, cost)
        modes = self.element.get("failureModes")
        if covers is None:
            mech.set("covers", list(modes))
        else:
            by_name = {text_of(m): m for m in modes}
            missing = [n for n in covers if n not in by_name]
            if missing:
                raise KeyError(
                    f"component {self.name!r} has no failure mode(s) {missing}"
                )
            mech.set("covers", [by_name[n] for n in covers])
        self.element.add("safetyMechanisms", mech)
        return self

    def function(
        self, name: str, tolerance: str = "1oo1", safety_related: bool = False
    ) -> "ComponentHandle":
        self.element.add(
            "functions", arch.function(name, tolerance, safety_related)
        )
        return self

    def dynamic(self, flag: bool = True) -> "ComponentHandle":
        self.element.set("dynamic", flag)
        return self

    def find_io(self, name: str) -> ModelObject:
        for node in self.element.get("ioNodes"):
            if text_of(node) == name:
                return node
        raise KeyError(f"component {self.name!r} has no IO node {name!r}")


class ArchitectureBuilder:
    """Builds one composite component and its internal wiring.

    Usage::

        builder = ArchitectureBuilder("PowerSupply")
        dc1 = builder.component("DC1", fit=0, component_class="DCSource")
        d1 = builder.component("D1", fit=10, component_class="Diode")
        builder.wire(dc1, d1)
        builder.entry(dc1)      # fed by the composite's input
        builder.exit(d1)        # feeds the composite's output
        system = builder.build()
    """

    def __init__(
        self,
        name: str,
        fit: float = 0.0,
        component_type: str = "system",
        integrity_level: str = "QM",
    ) -> None:
        self.composite = arch.component(
            name,
            fit=fit,
            component_class=name,
            component_type=component_type,
            integrity_level=integrity_level,
        )
        self._handles: Dict[str, ComponentHandle] = {}

    def component(
        self,
        name: str,
        fit: float = 0.0,
        component_class: str = "",
        component_type: str = "hardware",
        dynamic: bool = False,
    ) -> ComponentHandle:
        """Add a subcomponent and return its fluent handle."""
        if name in self._handles:
            raise ValueError(f"duplicate component name {name!r}")
        element = arch.component(
            name,
            fit=fit,
            component_class=component_class,
            component_type=component_type,
            dynamic=dynamic,
        )
        self.composite.add("subcomponents", element)
        handle = ComponentHandle(element, self)
        self._handles[name] = handle
        return handle

    def subsystem(self, builder: "ArchitectureBuilder") -> ComponentHandle:
        """Nest a fully-built composite from another builder."""
        element = builder.build()
        name = text_of(element)
        if name in self._handles:
            raise ValueError(f"duplicate component name {name!r}")
        self.composite.add("subcomponents", element)
        handle = ComponentHandle(element, self)
        self._handles[name] = handle
        return handle

    def __getitem__(self, name: str) -> ComponentHandle:
        return self._handles[name]

    def wire(
        self,
        source: ComponentHandle,
        target: ComponentHandle,
        kind: str = "signal",
        source_node: Optional[str] = None,
        target_node: Optional[str] = None,
    ) -> ModelObject:
        """Connect two subcomponents (optionally pinning IO nodes)."""
        return arch.connect(
            self.composite,
            source.element,
            target.element,
            kind=kind,
            source_node=source.find_io(source_node) if source_node else None,
            target_node=target.find_io(target_node) if target_node else None,
        )

    def chain(self, *handles: ComponentHandle, kind: str = "signal") -> None:
        """Wire handles in sequence: h1→h2→…→hn."""
        for src, dst in zip(handles, handles[1:]):
            self.wire(src, dst, kind=kind)

    def entry(self, handle: ComponentHandle, kind: str = "signal") -> ModelObject:
        """Declare that ``handle`` is fed by the composite's input boundary."""
        return arch.connect(self.composite, self.composite, handle.element, kind=kind)

    def exit(self, handle: ComponentHandle, kind: str = "signal") -> ModelObject:
        """Declare that ``handle`` feeds the composite's output boundary."""
        return arch.connect(self.composite, handle.element, self.composite, kind=kind)

    def boundary_input(self, name: str = "in", **kwargs: float) -> ModelObject:
        node = arch.io_node(name, "input", **kwargs)
        self.composite.add("ioNodes", node)
        return node

    def boundary_output(self, name: str = "out", **kwargs: float) -> ModelObject:
        node = arch.io_node(name, "output", **kwargs)
        self.composite.add("ioNodes", node)
        return node

    def build(self) -> ModelObject:
        """Return the composite component."""
        return self.composite
