"""SSAM well-formedness constraints — the editor's live validation.

Structural typing is enforced by the metamodel kernel; these are the
*semantic* rules a SAME user would be warned about while modelling:

- a component's failure-mode distributions must not exceed 1 (and should
  reach 1 when the component has a FIT rate — otherwise failure rate is
  unaccounted for);
- safety-mechanism coverages must lie in [0, 1], and a mechanism should
  cover at least one failure mode *of its own component*;
- relationship endpoints must be the composite itself or its direct
  subcomponents (no cross-level wiring);
- IO-node limits must be ordered;
- safety requirements at ASIL-A or above should cite at least one hazard
  or component (untraceable requirements are unverifiable);
- hazards with an integrity target above QM should have at least one
  hazardous situation recorded (else the target is unjustified).
"""

from __future__ import annotations

from typing import List

from repro.metamodel import Constraint, Severity
from repro.metamodel.validation import ValidationReport, validate
from repro.ssam.model import SSAMModel


def _distribution_total_ok(component) -> bool:
    modes = component.get("failureModes")
    if not modes:
        return True
    total = sum(float(m.get("distribution") or 0.0) for m in modes)
    return total <= 1.0 + 1e-9


def _distribution_complete(component) -> bool:
    modes = component.get("failureModes")
    if not modes or not (component.get("fit") or 0.0):
        return True
    total = sum(float(m.get("distribution") or 0.0) for m in modes)
    return abs(total - 1.0) <= 1e-6


def _coverage_in_range(mechanism) -> bool:
    coverage = float(mechanism.get("coverage") or 0.0)
    return 0.0 <= coverage <= 1.0


def _mechanism_covers_own_modes(mechanism) -> bool:
    covers = mechanism.get("covers")
    if not covers:
        return False
    owner = mechanism.container
    if owner is None:
        return False
    own_modes = set(id(m) for m in owner.get("failureModes"))
    return all(id(m) in own_modes for m in covers)


def _relationship_endpoints_local(relationship) -> bool:
    composite = relationship.container
    if composite is None:
        return False
    allowed = {id(composite)} | {
        id(sub) for sub in composite.get("subcomponents")
    }
    source = relationship.get("source")
    target = relationship.get("target")
    return (
        source is not None
        and target is not None
        and id(source) in allowed
        and id(target) in allowed
    )


def _io_limits_ordered(node) -> bool:
    lower = node.get("lowerLimit")
    upper = node.get("upperLimit")
    if lower is None or upper is None:
        return True
    return lower <= upper


def _safety_requirement_traceable(requirement) -> bool:
    if requirement.get("integrityLevel") in ("QM",):
        return True
    return bool(requirement.get("cites"))


def _hazard_target_justified(hazard) -> bool:
    if hazard.get("integrityTarget") in ("QM",):
        return True
    return bool(hazard.get("situations"))


def ssam_constraints() -> List[Constraint]:
    """The semantic rule set, applicable per element kind."""

    def only_for(kind, predicate):
        return lambda obj: (not obj.is_kind_of(kind)) or predicate(obj)

    return [
        Constraint(
            "component.distribution-total",
            only_for("Component", _distribution_total_ok),
            "failure-mode distributions exceed 100%",
        ),
        Constraint(
            "component.distribution-complete",
            only_for("Component", _distribution_complete),
            "failure-mode distributions do not sum to 100%; part of the "
            "failure rate is unaccounted for",
            severity=Severity.WARNING,
        ),
        Constraint(
            "mechanism.coverage-range",
            only_for("SafetyMechanism", _coverage_in_range),
            "diagnostic coverage outside [0, 1]",
        ),
        Constraint(
            "mechanism.covers-own-modes",
            only_for("SafetyMechanism", _mechanism_covers_own_modes),
            "mechanism covers no failure mode of its own component",
            severity=Severity.WARNING,
        ),
        Constraint(
            "relationship.endpoints-local",
            only_for("ComponentRelationship", _relationship_endpoints_local),
            "relationship endpoints are not the composite or its direct "
            "subcomponents",
        ),
        Constraint(
            "ionode.limits-ordered",
            only_for("IONode", _io_limits_ordered),
            "lower limit exceeds upper limit",
        ),
        Constraint(
            "requirement.traceable",
            only_for("SafetyRequirement", _safety_requirement_traceable),
            "safety requirement above QM cites no hazard or component",
            severity=Severity.WARNING,
        ),
        Constraint(
            "hazard.target-justified",
            only_for("Hazard", _hazard_target_justified),
            "integrity target above QM without any hazardous situation",
            severity=Severity.WARNING,
        ),
    ]


def validate_ssam(model: SSAMModel) -> ValidationReport:
    """Structural + semantic validation of a whole SSAM model."""
    return validate(model.root, extra_constraints=ssam_constraints())
