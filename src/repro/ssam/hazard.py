"""SSAM Hazard module (paper Fig. 4).

``HazardElement`` is the abstract base for all hazard-related elements,
organised in ``HazardPackage``s.  The module models:

- ``Hazard`` — a top-level hazard (e.g. the case study's *H1: the power
  supply fails unexpectedly*) with an associated integrity-level target;
- ``HazardousSituation`` — occurs due to a ``Cause``; carries a severity and
  a probability (SSAM deliberately does not adhere 100 % to ISO 26262's
  S/E/C scheme, to promote generality, but we record exposure and
  controllability as optional attributes so the ISO mapping is available);
- ``ControlMeasure`` — mitigates a hazardous situation; may carry a
  ``SafetyDecision`` (deployment rationale), a ``ValidationPlan`` and an
  ``EffectivenessOfVerification``.
"""

from __future__ import annotations

from repro.metamodel import MetaPackage, ModelObject, global_registry
from repro.ssam.base import BASE, set_name

HAZARD = MetaPackage("ssam_hazard", "urn:ssam:hazard", doc="SSAM Hazard module")

_model_element = BASE.get("ModelElement")
_package = BASE.get("Package")
_package_interface = BASE.get("PackageInterface")

_hazard_element = HAZARD.define(
    "HazardElement",
    abstract=True,
    supertypes=[_model_element],
    doc="Abstract base of hazard-related elements.",
)

_cause = HAZARD.define(
    "Cause",
    supertypes=[_hazard_element],
    doc="A cause of a hazardous situation.",
)
_cause.attribute("text", "string", default="")

_safety_decision = HAZARD.define(
    "SafetyDecision",
    supertypes=[_hazard_element],
    doc="Rationale for deploying a control measure.",
)
_safety_decision.attribute("rationale", "string", default="")

_validation_plan = HAZARD.define(
    "ValidationPlan",
    supertypes=[_hazard_element],
    doc="Plan for validating a control measure.",
)
_validation_plan.attribute("plan", "string", default="")

_eov = HAZARD.define(
    "EffectivenessOfVerification",
    supertypes=[_hazard_element],
    doc="Evidence that a control measure mitigates its hazardous situation.",
)
_eov.attribute("effectiveness", "float", default=0.0, doc="In [0, 1].")
_eov.attribute("evidence", "string", default="")

_control_measure = HAZARD.define(
    "ControlMeasure",
    supertypes=[_hazard_element],
    doc="A measure mitigating a hazardous situation to an acceptable level.",
)
_control_measure.reference("decision", "SafetyDecision", containment=True)
_control_measure.reference("validation", "ValidationPlan", containment=True)
_control_measure.reference(
    "effectiveness", "EffectivenessOfVerification", containment=True
)

_hazardous_situation = HAZARD.define(
    "HazardousSituation",
    supertypes=[_hazard_element],
    doc="A situation in which a hazard, context and configuration coincide.",
)
_hazardous_situation.attribute("severity", "enum:S0|S1|S2|S3", default="S0")
_hazardous_situation.attribute("probability", "float", default=0.0)
_hazardous_situation.attribute(
    "exposure", "enum:E0|E1|E2|E3|E4", default="E0", doc="Optional ISO 26262 mapping."
)
_hazardous_situation.attribute(
    "controllability",
    "enum:C0|C1|C2|C3",
    default="C0",
    doc="Optional ISO 26262 mapping.",
)
_hazardous_situation.reference("causes", "Cause", containment=True, many=True)
_hazardous_situation.reference(
    "controlMeasures", "ControlMeasure", containment=True, many=True
)

_hazard = HAZARD.define(
    "Hazard",
    supertypes=[_hazard_element],
    doc="A top-level hazard entry in the hazard log.",
)
_hazard.attribute("text", "string", default="")
_hazard.attribute(
    "integrityTarget",
    "enum:QM|ASIL-A|ASIL-B|ASIL-C|ASIL-D|SIL-1|SIL-2|SIL-3|SIL-4",
    default="QM",
)
_hazard.reference(
    "situations", "HazardousSituation", containment=True, many=True
)

_hazard_pkg_interface = HAZARD.define(
    "HazardPackageInterface",
    supertypes=[_package_interface],
    doc="Exposes selected hazard elements of a package.",
)

_hazard_package = HAZARD.define(
    "HazardPackage",
    supertypes=[_package],
    doc="A module of hazard elements (a hazard log).",
)
_hazard_package.reference("elements", "HazardElement", containment=True, many=True)
_hazard_package.reference(
    "interfaces", "HazardPackageInterface", containment=True, many=True
)

global_registry().register(HAZARD)


def hazard_package(name: str, pkg_id: str = "") -> ModelObject:
    pkg = _hazard_package.create(id=pkg_id or name)
    return set_name(pkg, name)


def hazard(
    name: str,
    text: str,
    integrity_target: str = "QM",
    hazard_id: str = "",
) -> ModelObject:
    hz = _hazard.create(
        text=text, integrityTarget=integrity_target, id=hazard_id or name
    )
    return set_name(hz, name)


def hazardous_situation(
    name: str,
    severity: str = "S0",
    probability: float = 0.0,
    exposure: str = "E0",
    controllability: str = "C0",
) -> ModelObject:
    situation = _hazardous_situation.create(
        severity=severity,
        probability=probability,
        exposure=exposure,
        controllability=controllability,
        id=name,
    )
    return set_name(situation, name)


def cause(text: str) -> ModelObject:
    return set_name(_cause.create(text=text, id=text), text)


def control_measure(
    name: str,
    rationale: str = "",
    plan: str = "",
    effectiveness: float = 0.0,
) -> ModelObject:
    measure = _control_measure.create(id=name)
    set_name(measure, name)
    if rationale:
        measure.set("decision", _safety_decision.create(rationale=rationale))
    if plan:
        measure.set("validation", _validation_plan.create(plan=plan))
    if effectiveness:
        measure.set(
            "effectiveness", _eov.create(effectiveness=effectiveness)
        )
    return measure
