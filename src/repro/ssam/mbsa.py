"""SSAM MBSA module (paper Fig. 6) — Model-Based Systems Assurance.

The MBSA module links the design-time artefacts produced by DECISIVE (FMEA
results, reliability models, safety-mechanism catalogues) to assurance
artefacts, so that SSAM models can act as a *federation* model for the wider
System Assurance process:

- ``MBSAPackage`` — a module of assurance bindings;
- ``ArtefactBinding`` — binds a named development artefact (by external
  reference) into the assurance scope;
- ``AnalysisResult`` — records the outcome of an automated analysis run
  (e.g. an FMEDA table, the computed SPFM) together with the query that can
  re-derive it;
- ``AssuranceQuery`` — a machine-executable query over an artefact whose
  result substantiates an assurance claim (executed by ACME-style tools).
"""

from __future__ import annotations

from repro.metamodel import MetaPackage, ModelObject, global_registry
from repro.ssam.base import BASE, set_name

MBSA = MetaPackage("ssam_mbsa", "urn:ssam:mbsa", doc="SSAM MBSA module")

_model_element = BASE.get("ModelElement")
_package = BASE.get("Package")
_package_interface = BASE.get("PackageInterface")

_mbsa_element = MBSA.define(
    "MBSAElement",
    abstract=True,
    supertypes=[_model_element],
    doc="Abstract base of MBSA elements.",
)

_artefact_binding = MBSA.define(
    "ArtefactBinding",
    supertypes=[_mbsa_element],
    doc="Binds a development artefact into the assurance scope.",
)
_artefact_binding.attribute(
    "artefactKind",
    "enum:fmea_result|fmeda_result|reliability_model|safety_mechanism_model"
    "|hazard_log|requirement_spec|design_model|other",
    default="other",
)
_artefact_binding.reference(
    "externalReference", "ExternalReference", containment=True
)

_assurance_query = MBSA.define(
    "AssuranceQuery",
    supertypes=[_mbsa_element],
    doc="A machine-executable query substantiating an assurance claim.",
)
_assurance_query.attribute("expression", "string", default="")
_assurance_query.attribute("language", "string", default="rql")
_assurance_query.attribute(
    "expectation",
    "string",
    default="",
    doc="Human-readable statement of what the query result must satisfy.",
)
_assurance_query.reference("over", "ArtefactBinding")

_analysis_result = MBSA.define(
    "AnalysisResult",
    supertypes=[_mbsa_element],
    doc="Recorded outcome of an automated analysis run.",
)
_analysis_result.attribute(
    "analysisKind", "enum:fmea|fmeda|fta|spfm|asil|other", default="other"
)
_analysis_result.attribute("value", "string", default="")
_analysis_result.attribute("timestamp", "string", default="")
_analysis_result.reference("derivedBy", "AssuranceQuery")

_mbsa_pkg_interface = MBSA.define(
    "MBSAPackageInterface",
    supertypes=[_package_interface],
    doc="Exposes selected MBSA elements of a package.",
)

_mbsa_package = MBSA.define(
    "MBSAPackage",
    supertypes=[_package],
    doc="A module of assurance bindings and queries.",
)
_mbsa_package.reference("elements", "MBSAElement", containment=True, many=True)
_mbsa_package.reference(
    "interfaces", "MBSAPackageInterface", containment=True, many=True
)

global_registry().register(MBSA)


def mbsa_package(name: str, pkg_id: str = "") -> ModelObject:
    pkg = _mbsa_package.create(id=pkg_id or name)
    return set_name(pkg, name)


def artefact_binding(
    name: str, artefact_kind: str = "other", external_reference: ModelObject = None
) -> ModelObject:
    binding = _artefact_binding.create(artefactKind=artefact_kind, id=name)
    set_name(binding, name)
    if external_reference is not None:
        binding.set("externalReference", external_reference)
    return binding


def assurance_query(
    name: str,
    expression: str,
    expectation: str = "",
    over: ModelObject = None,
) -> ModelObject:
    query = _assurance_query.create(
        expression=expression, expectation=expectation, id=name
    )
    set_name(query, name)
    if over is not None:
        query.set("over", over)
    return query


def analysis_result(
    name: str, analysis_kind: str, value: str, derived_by: ModelObject = None
) -> ModelObject:
    result = _analysis_result.create(
        analysisKind=analysis_kind, value=value, id=name
    )
    set_name(result, name)
    if derived_by is not None:
        result.set("derivedBy", derived_by)
    return result
