"""A two-phase, rule-based model-to-model transformation engine.

The engine follows the semantics of Epsilon's ETL, which the paper's
``simulink2ssam`` transformation is written in:

- **phase 1 (create)**: every rule whose guard accepts a source element
  creates its target element(s); the (source, target) pair is recorded in
  the :class:`~repro.transform.trace.TransformationTrace`;
- **phase 2 (bind)**: each rule's ``bind`` callback runs with the complete
  trace available, so cross-references between targets are resolved through
  ``trace.resolve`` regardless of rule execution order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, List, Optional

from repro.transform.trace import TransformationTrace


class TransformError(Exception):
    """Raised for rule conflicts or failed reference resolution."""


@dataclass
class Rule:
    """One transformation rule.

    ``guard`` selects source elements; ``create`` returns the target element
    (phase 1); ``bind`` (optional) fills the target's references (phase 2).
    Both callbacks receive ``(source, context)``; ``bind`` additionally
    receives the created target.
    """

    name: str
    guard: Callable[[Any], bool]
    create: Callable[[Any, "TransformationContext"], Any]
    bind: Optional[Callable[[Any, Any, "TransformationContext"], None]] = None


class TransformationContext:
    """Shared state passed to rule callbacks: the trace plus free slots."""

    def __init__(self, trace: TransformationTrace) -> None:
        self.trace = trace
        self.slots: dict = {}

    def resolve(self, source: Any, rule: Optional[str] = None) -> Any:
        try:
            return self.trace.resolve(source, rule)
        except KeyError as exc:
            raise TransformError(str(exc)) from exc


class TransformationEngine:
    """Runs an ordered rule set over a source element stream."""

    def __init__(self, rules: Optional[Iterable[Rule]] = None) -> None:
        self.rules: List[Rule] = list(rules or [])

    def add_rule(self, rule: Rule) -> Rule:
        if any(existing.name == rule.name for existing in self.rules):
            raise TransformError(f"duplicate rule name {rule.name!r}")
        self.rules.append(rule)
        return rule

    def rule(
        self,
        name: str,
        guard: Callable[[Any], bool],
    ) -> Callable:
        """Decorator form: the decorated function is the ``create`` callback;
        attach ``bind`` afterwards via ``rule.bind = fn`` if needed."""

        def register(create: Callable[[Any, TransformationContext], Any]) -> Rule:
            return self.add_rule(Rule(name, guard, create))

        return register

    def run(
        self, sources: Iterable[Any]
    ) -> TransformationTrace:
        """Execute both phases over ``sources``; returns the trace."""
        sources = list(sources)
        trace = TransformationTrace()
        context = TransformationContext(trace)
        matched: List[tuple] = []
        for source in sources:
            for rule in self.rules:
                if rule.guard(source):
                    target = rule.create(source, context)
                    if target is not None:
                        trace.record(rule.name, source, target)
                        matched.append((rule, source, target))
        for rule, source, target in matched:
            if rule.bind is not None:
                rule.bind(source, target, context)
        return trace
