"""The Simulink ↔ SSAM transformation (paper Section IV, REQ1/REQ2).

Forward (:func:`simulink_to_ssam`) maps, with **no information loss**:

- the model → an :class:`~repro.ssam.model.SSAMModel` with one component
  package holding a composite ``Component``;
- every block → a ``Component`` whose ``componentClass`` is the block type
  and whose complete parameter set is preserved verbatim in an
  ``ImplementationConstraint`` utility (language ``simulink-parameters``);
- every port → an ``IONode`` (electrical conserving ports become ``inout``);
- every line → a ``ComponentRelationship`` pinned to the port IO nodes;
- subsystems → nested components, recursively.

Reverse (:func:`ssam_to_simulink`) reconstructs the Simulink model from
those components; the round trip is exact (``model.to_dict()`` equality),
which is the operational meaning of "without information loss".

Optionally the forward transformation *enriches* components with failure
modes from a reliability model (DECISIVE Step 3 fused into the mapping).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.metamodel import ModelObject
from repro.reliability import ReliabilityModel
from repro.simulink.model import Block, Line, SimulinkModel
from repro.ssam import SSAMModel
from repro.ssam import architecture as arch
from repro.ssam.architecture import component_package
from repro.ssam.base import implementation_constraint, text_of
from repro.transform.engine import (
    Rule,
    TransformationContext,
    TransformationEngine,
    TransformError,
)
from repro.transform.trace import TransformationTrace

_PARAMS_LANGUAGE = "simulink-parameters"
_TYPE_KEY = "simulink-block-type"


def _block_to_component(block: Block, context: TransformationContext) -> ModelObject:
    comp = arch.component(
        block.name,
        component_class=block.effective_type,
        component_type="hardware",
        comp_id=block.path(),
    )
    constraint = implementation_constraint(
        json.dumps(block.parameters, sort_keys=True),
        language=_PARAMS_LANGUAGE,
        description=f"verbatim parameters of {block.path()}",
    )
    constraint.set("key", _TYPE_KEY + ":" + block.block_type)
    comp.add("utilities", constraint)
    info = block.effective_info
    for port in block.ports():
        if port in info.electrical_ports or (
            block.block_type == "Subsystem" and not block.param("annotated_type")
        ):
            direction = "inout"
        elif port in info.signal_inputs:
            direction = "input"
        else:
            direction = "output"
        comp.add("ioNodes", arch.io_node(port, direction))
    return comp


def _find_io(component: ModelObject, port: str) -> Optional[ModelObject]:
    for node in component.get("ioNodes"):
        if text_of(node) == port:
            return node
    return None


def build_engine() -> TransformationEngine:
    """The simulink2ssam rule set."""
    engine = TransformationEngine()

    def create_model(model: SimulinkModel, context: TransformationContext):
        composite = arch.component(
            model.name,
            component_class="SimulinkModel",
            component_type="system",
            comp_id=model.name,
        )
        return composite

    engine.add_rule(
        Rule(
            "Model2Composite",
            guard=lambda s: isinstance(s, SimulinkModel),
            create=create_model,
        )
    )

    def bind_block(block: Block, target: ModelObject, context: TransformationContext):
        owner = block.diagram.owner if block.diagram is not None else None
        if owner is None:
            parent = context.resolve(block.diagram.model, "Model2Composite")
        else:
            parent = context.resolve(owner, "Block2Component")
        parent.add("subcomponents", target)

    engine.add_rule(
        Rule(
            "Block2Component",
            guard=lambda s: isinstance(s, Block),
            create=_block_to_component,
            bind=bind_block,
        )
    )

    def create_line(line: Line, context: TransformationContext):
        return arch.ARCHITECTURE.get("ComponentRelationship").create(
            kind="power" if line.is_electrical else "signal"
        )

    def bind_line(line: Line, target: ModelObject, context: TransformationContext):
        source_comp = context.resolve(line.source, "Block2Component")
        target_comp = context.resolve(line.target, "Block2Component")
        target.set("source", source_comp)
        target.set("target", target_comp)
        source_node = _find_io(source_comp, line.source_port)
        target_node = _find_io(target_comp, line.target_port)
        if source_node is not None:
            target.set("sourceNode", source_node)
        if target_node is not None:
            target.set("targetNode", target_node)
        owner = line.source.diagram.owner
        if owner is None:
            parent = context.resolve(line.source.diagram.model, "Model2Composite")
        else:
            parent = context.resolve(owner, "Block2Component")
        parent.add("relationships", target)

    engine.add_rule(
        Rule(
            "Line2Relationship",
            guard=lambda s: isinstance(s, Line),
            create=create_line,
            bind=bind_line,
        )
    )
    return engine


def simulink_to_ssam(
    model: SimulinkModel,
    reliability: Optional[ReliabilityModel] = None,
    anchor_boundaries: bool = False,
) -> SSAMModel:
    """Transform a Simulink model to SSAM (optionally enriching failure
    modes from a reliability model — Step 3 fused into the mapping).

    ``anchor_boundaries`` additionally derives the input/output boundary
    Algorithm 1 needs: source-role blocks are anchored to the composite's
    input, sensor-role blocks to its output (a Simulink diagram has no
    explicit system boundary, so this is an interpretation, kept opt-in;
    the extra relationships do not affect the lossless reverse transform,
    which skips boundary anchors)."""
    engine = build_engine()
    sources: List[object] = [model]
    sources.extend(model.all_blocks())
    sources.extend(model.all_lines())
    trace = engine.run(sources)

    ssam = SSAMModel(model.name)
    package = component_package(f"{model.name}_architecture")
    composite = trace.resolve(model, "Model2Composite")
    package.add("components", composite)
    ssam.add_component_package(package)

    if reliability is not None:
        for block in model.all_blocks():
            entry = reliability.get(block.effective_type)
            if entry is None:
                continue
            comp = trace.try_resolve(block, "Block2Component")
            if comp is None:
                continue
            comp.set("fit", float(entry.fit))
            for mode in entry.failure_modes:
                comp.add(
                    "failureModes",
                    arch.failure_mode(mode.name, mode.nature, mode.distribution),
                )
    if anchor_boundaries:
        _anchor_boundaries(model, composite, trace)
    # Keep the trace reachable for change propagation.
    ssam.transformation_trace = trace  # type: ignore[attr-defined]
    return ssam


def _anchor_boundaries(
    model: SimulinkModel, composite: ModelObject, trace: TransformationTrace
) -> None:
    relationship_cls = arch.ARCHITECTURE.get("ComponentRelationship")
    for block in model.root.blocks():
        comp = trace.try_resolve(block, "Block2Component")
        if comp is None:
            continue
        role = block.effective_info.role
        if role == "source":
            composite.add(
                "relationships",
                relationship_cls.create(source=composite, target=comp, kind="power"),
            )
        elif role == "sensor":
            composite.add(
                "relationships",
                relationship_cls.create(source=comp, target=composite, kind="power"),
            )


def _component_block_info(component: ModelObject):
    """Extract (block_type, parameters) recorded by the forward transform."""
    for utility in component.get("utilities"):
        if not utility.is_kind_of("ImplementationConstraint"):
            continue
        if utility.get("language") != _PARAMS_LANGUAGE:
            continue
        key = utility.get("key") or ""
        if not key.startswith(_TYPE_KEY + ":"):
            continue
        block_type = key.split(":", 1)[1]
        parameters = json.loads(utility.get("body") or "{}")
        return block_type, parameters
    return None


def ssam_to_simulink(ssam: SSAMModel) -> SimulinkModel:
    """Reconstruct the Simulink model from a transformed SSAM model."""
    packages = ssam.component_packages
    if not packages or not packages[0].get("components"):
        raise TransformError("SSAM model has no component package to convert")
    composite = packages[0].get("components")[0]
    model = SimulinkModel(text_of(composite) or ssam.name)
    _rebuild_diagram(composite, model.root)
    return model


def _rebuild_diagram(composite: ModelObject, diagram) -> None:
    blocks_by_component: Dict[str, Block] = {}
    for sub in composite.get("subcomponents"):
        info = _component_block_info(sub)
        if info is None:
            raise TransformError(
                f"component {text_of(sub)!r} carries no simulink-parameters "
                f"constraint; cannot reconstruct"
            )
        block_type, parameters = info
        block = Block(text_of(sub), block_type, parameters)
        diagram.add_block(block)
        blocks_by_component[sub.uid] = block
        if block.subdiagram is not None:
            _rebuild_diagram(sub, block.subdiagram)
    for rel in composite.get("relationships"):
        source = rel.get("source")
        target = rel.get("target")
        source_node = rel.get("sourceNode")
        target_node = rel.get("targetNode")
        if source is composite or target is composite:
            continue  # boundary anchors have no Simulink counterpart
        diagram.connect(
            blocks_by_component[source.uid],
            text_of(source_node) if source_node is not None else "p",
            blocks_by_component[target.uid],
            text_of(target_node) if target_node is not None else "p",
        )


def propagate_mechanisms_to_simulink(
    ssam: SSAMModel, model: SimulinkModel
) -> int:
    """Propagate safety mechanisms deployed on SSAM components back into the
    Simulink model (as a ``safety_mechanisms`` block parameter).

    Returns the number of blocks updated.  This is the paper's "changes in
    SSAM can be propagated back to the original model".
    """
    updated = 0
    blocks_by_name = {block.name: block for block in model.all_blocks()}
    for component in ssam.elements_of_kind("Component"):
        mechanisms = component.get("safetyMechanisms")
        if not mechanisms:
            continue
        block = blocks_by_name.get(text_of(component))
        if block is None:
            continue
        block.set_param(
            "safety_mechanisms",
            [
                {
                    "name": text_of(mechanism),
                    "coverage": mechanism.get("coverage"),
                    "cost": mechanism.get("cost"),
                    "covers": [text_of(m) for m in mechanism.get("covers")],
                }
                for mechanism in mechanisms
            ],
        )
        updated += 1
    return updated
