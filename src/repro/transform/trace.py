"""Transformation traces — source↔target mappings.

A trace is recorded during transformation (phase 1 creates targets, phase 2
resolves references through the trace) and kept afterwards so that changes
made on the target side can be propagated back to the source model, as the
paper requires for safety-mechanism deployments chosen in SSAM.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple


class TransformationTrace:
    """Bidirectional mapping between source and target model objects.

    Keys are object identities; a source may map to several targets (one per
    rule), in which case lookups may be disambiguated by rule name.
    """

    def __init__(self) -> None:
        self._by_source: Dict[int, List[Tuple[str, Any]]] = {}
        self._by_target: Dict[int, Tuple[str, Any]] = {}
        self._sources: Dict[int, Any] = {}

    def record(self, rule: str, source: Any, target: Any) -> None:
        self._by_source.setdefault(id(source), []).append((rule, target))
        self._sources[id(source)] = source
        self._by_target[id(target)] = (rule, source)

    def resolve(self, source: Any, rule: Optional[str] = None) -> Any:
        """The target created from ``source`` (optionally by a given rule)."""
        entries = self._by_source.get(id(source), [])
        if rule is not None:
            entries = [e for e in entries if e[0] == rule]
        if not entries:
            raise KeyError(
                f"no target recorded for source {source!r}"
                + (f" under rule {rule!r}" if rule else "")
            )
        if len(entries) > 1:
            rules = [e[0] for e in entries]
            raise KeyError(
                f"source {source!r} has targets from several rules {rules}; "
                f"pass rule="
            )
        return entries[0][1]

    def try_resolve(self, source: Any, rule: Optional[str] = None) -> Optional[Any]:
        try:
            return self.resolve(source, rule)
        except KeyError:
            return None

    def source_of(self, target: Any) -> Any:
        """The source a target was created from."""
        try:
            return self._by_target[id(target)][1]
        except KeyError:
            raise KeyError(f"no source recorded for target {target!r}") from None

    def has_source(self, source: Any) -> bool:
        return id(source) in self._by_source

    def pairs(self) -> Iterable[Tuple[str, Any, Any]]:
        """(rule, source, target) triples in recording order."""
        for source_id, entries in self._by_source.items():
            source = self._sources[source_id]
            for rule, target in entries:
                yield rule, source, target

    def __len__(self) -> int:
        return len(self._by_target)
