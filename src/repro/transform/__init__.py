"""Model-to-model transformation (Simulink → SSAM and back).

- :mod:`repro.transform.engine` — a small two-phase, rule-based
  transformation engine with a trace model (the ETL substitute);
- :mod:`repro.transform.simulink2ssam` — the paper's tested transformation:
  Simulink models become SSAM architectures *without information loss*
  (every block parameter is preserved, and the inverse transformation
  reconstructs an equivalent Simulink model — the round trip is exact);
- :mod:`repro.transform.trace` — transformation traces, used both to
  resolve references during transformation and to propagate changes made in
  SSAM (e.g. deployed safety mechanisms) back to the source model.
"""

from repro.transform.engine import Rule, TransformationEngine, TransformError
from repro.transform.trace import TransformationTrace
from repro.transform.simulink2ssam import (
    simulink_to_ssam,
    ssam_to_simulink,
    propagate_mechanisms_to_simulink,
)

__all__ = [
    "Rule",
    "TransformationEngine",
    "TransformError",
    "TransformationTrace",
    "simulink_to_ssam",
    "ssam_to_simulink",
    "propagate_mechanisms_to_simulink",
]
