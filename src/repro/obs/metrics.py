"""Metrics registry: counters, gauges and fixed-bucket histograms.

The campaign engine's :class:`~repro.safety.campaign.CampaignStats` and the
solver's :class:`~repro.circuit.SolveStats` stay plain dataclasses on the
hot path (an int increment is cheaper than any registry lookup); at the end
of a campaign their counters are *published* into this registry, making
them first-class metrics that every exporter — Prometheus text, the JSONL
event log — can see alongside live gauges and histograms.

Histograms are Prometheus-style: a fixed, sorted tuple of upper bounds,
with cumulative counts materialised at export time.  All mutation is
lock-protected, and :meth:`MetricsRegistry.merge` folds a snapshot from a
pool worker into the parent registry (counters add, gauges take the latest
value, histograms add per-bucket counts).
"""

from __future__ import annotations

import bisect
import threading
import time
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

#: Default histogram buckets for durations in seconds (solver and campaign
#: job times span ~100 µs to seconds).
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class MetricError(Exception):
    """Raised on metric-type conflicts or malformed bucket specs."""


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0.0

    @property
    def value(self) -> float:
        return self._value

    def inc(self, amount: Union[int, float] = 1) -> None:
        if amount < 0:
            raise MetricError(f"counter {self.name!r} cannot decrease")
        with self._lock:
            self._value += amount


class Gauge:
    """A value that can go up and down (last write wins).

    Every write stamps a wall-clock ``updated_ns``; :meth:`restore` applies
    a (value, stamp) pair only when the stamp is not older than the current
    one.  That makes cross-process merges genuinely *last-write*-wins: a
    warm-pool worker re-shipping a stale snapshot after the parent already
    recorded a newer value cannot clobber it (and, unlike summing, re-merge
    of the same snapshot is idempotent)."""

    __slots__ = ("name", "_lock", "_value", "_updated_ns")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0.0
        self._updated_ns = 0

    @property
    def value(self) -> float:
        return self._value

    @property
    def updated_ns(self) -> int:
        """Wall-clock ``time_ns`` of the last write (0: never written)."""
        return self._updated_ns

    def set(self, value: Union[int, float]) -> None:
        with self._lock:
            self._value = float(value)
            self._updated_ns = time.time_ns()

    def inc(self, amount: Union[int, float] = 1) -> None:
        with self._lock:
            self._value += amount
            self._updated_ns = time.time_ns()

    def restore(self, value: Union[int, float], updated_ns: Optional[int]) -> None:
        """Merge-side write: apply ``value`` unless our stamp is newer.

        ``updated_ns=None`` (a snapshot predating stamps) applies
        unconditionally, stamped now — the old merge behaviour."""
        if updated_ns is None:
            self.set(value)
            return
        with self._lock:
            if int(updated_ns) >= self._updated_ns:
                self._value = float(value)
                self._updated_ns = int(updated_ns)


class Histogram:
    """Fixed-bucket histogram; bucket ``i`` counts values ``<= bounds[i]``
    (exclusive of lower bounds, like Prometheus ``le`` semantics); values
    above the last bound land in the implicit ``+Inf`` bucket."""

    __slots__ = ("name", "bounds", "_lock", "_counts", "_sum", "_count")

    def __init__(self, name: str, buckets: Sequence[float]) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise MetricError(
                f"histogram {name!r} buckets must be a sorted, de-duplicated,"
                f" non-empty sequence; got {buckets!r}"
            )
        self.name = name
        self.bounds = bounds
        self._lock = threading.Lock()
        self._counts = [0] * (len(bounds) + 1)  # last slot: +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: Union[int, float]) -> None:
        index = bisect.bisect_left(self.bounds, float(value))
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def bucket_counts(self) -> List[int]:
        """Per-bucket (non-cumulative) counts; last entry is ``+Inf``."""
        with self._lock:
            return list(self._counts)

    def snapshot(self) -> Dict[str, object]:
        """Bounds, per-bucket counts, sum and count — read under ONE lock
        acquisition, so a concurrent :meth:`observe` can never produce a
        snapshot whose ``+Inf`` cumulative count disagrees with ``count``
        (the invariant a live ``/metrics`` scrape is validated against)."""
        with self._lock:
            return {
                "bounds": list(self.bounds),
                "counts": list(self._counts),
                "sum": self._sum,
                "count": self._count,
            }

    def quantile(self, q: float) -> float:
        """Bucket-interpolated quantile estimate (Prometheus
        ``histogram_quantile`` semantics): the target rank is located in
        its bucket and linearly interpolated between the bucket's bounds.
        Powers the analysis service's latency summary without retaining
        raw samples.

        The interpolation contract (pinned by
        ``tests/test_obs.py::test_histogram_quantile_*``):

        - an **empty** histogram returns ``0.0`` for every ``q``;
        - the first bucket interpolates from an implicit lower edge of
          ``0.0`` — all mass in the first bucket means ``quantile(1.0)``
          is its upper bound and ``quantile(0.0)`` is ``0.0``;
        - ``q=0`` returns the lower edge of the first *occupied* bucket
          (empty leading buckets are skipped, not interpolated across);
        - ``q=1`` returns the upper bound of the last occupied finite
          bucket;
        - ranks landing in the ``+Inf`` bucket are **clamped** to the last
          finite bound, never extrapolated — a histogram whose mass sits
          entirely above its bounds still answers with ``bounds[-1]``;
        - ``q`` outside ``[0, 1]`` raises :class:`MetricError`."""
        if not 0.0 <= q <= 1.0:
            raise MetricError(f"quantile must be in [0, 1], got {q!r}")
        with self._lock:
            counts = list(self._counts)
            total = self._count
        if total == 0:
            return 0.0
        rank = q * total
        running = 0.0
        for index, count in enumerate(counts[:-1]):
            previous = running
            running += count
            if running >= rank and count > 0:
                lower = self.bounds[index - 1] if index > 0 else 0.0
                upper = self.bounds[index]
                fraction = (rank - previous) / count
                return lower + (upper - lower) * fraction
        return self.bounds[-1]

    def cumulative(self) -> List[Tuple[float, int]]:
        """Prometheus-style ``(le, cumulative_count)`` pairs, +Inf last."""
        with self._lock:
            counts = list(self._counts)
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.bounds, counts):
            running += count
            out.append((bound, running))
        out.append((float("inf"), running + counts[-1]))
        return out


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Name → metric, with get-or-create accessors and worker-merge."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, Metric] = {}

    def _get_or_create(self, name: str, factory) -> Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = factory()
                self._metrics[name] = metric
            return metric

    def counter(self, name: str) -> Counter:
        metric = self._get_or_create(name, lambda: Counter(name))
        if not isinstance(metric, Counter):
            raise MetricError(f"{name!r} is already a {type(metric).__name__}")
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._get_or_create(name, lambda: Gauge(name))
        if not isinstance(metric, Gauge):
            raise MetricError(f"{name!r} is already a {type(metric).__name__}")
        return metric

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        metric = self._get_or_create(
            name, lambda: Histogram(name, buckets or DEFAULT_TIME_BUCKETS)
        )
        if not isinstance(metric, Histogram):
            raise MetricError(f"{name!r} is already a {type(metric).__name__}")
        return metric

    def metrics(self) -> List[Metric]:
        with self._lock:
            return [self._metrics[name] for name in sorted(self._metrics)]

    def reset(self) -> None:
        with self._lock:
            self._metrics = {}

    # -- worker snapshot / merge ------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """A picklable dump, suitable for shipping out of a pool worker."""
        out: Dict[str, Dict[str, object]] = {}
        for metric in self.metrics():
            if isinstance(metric, Counter):
                out[metric.name] = {"type": "counter", "value": metric.value}
            elif isinstance(metric, Gauge):
                out[metric.name] = {
                    "type": "gauge",
                    "value": metric.value,
                    "updated_ns": metric.updated_ns,
                }
            else:
                dump = metric.snapshot()
                out[metric.name] = {
                    "type": "histogram",
                    "bounds": dump["bounds"],
                    "counts": dump["counts"],
                    "sum": dump["sum"],
                }
        return out

    def merge(self, snapshot: Mapping[str, Mapping[str, object]]) -> None:
        """Fold a worker :meth:`snapshot` into this registry."""
        for name, payload in snapshot.items():
            kind = payload["type"]
            if kind == "counter":
                self.counter(name).inc(payload["value"])  # type: ignore[arg-type]
            elif kind == "gauge":
                self.gauge(name).restore(
                    payload["value"],  # type: ignore[arg-type]
                    payload.get("updated_ns"),  # type: ignore[arg-type]
                )
            elif kind == "histogram":
                histogram = self.histogram(name, payload["bounds"])  # type: ignore[arg-type]
                if list(histogram.bounds) != [
                    float(b) for b in payload["bounds"]  # type: ignore[union-attr]
                ]:
                    raise MetricError(
                        f"histogram {name!r} bucket mismatch on merge"
                    )
                counts: Sequence[int] = payload["counts"]  # type: ignore[assignment]
                with histogram._lock:
                    for index, count in enumerate(counts):
                        histogram._counts[index] += count
                    histogram._sum += float(payload["sum"])  # type: ignore[arg-type]
                    histogram._count += sum(counts)
            else:
                raise MetricError(f"unknown metric type {kind!r} for {name!r}")
