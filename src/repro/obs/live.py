"""Live telemetry HTTP server: ``/metrics``, ``/healthz``, ``/events``.

A dependency-free, threaded stdlib server that makes a running analysis
inspectable while it executes — the substrate for the always-on SAME
service (ROADMAP item 1).  Three endpoints:

- ``GET /metrics`` — the :class:`~repro.obs.metrics.MetricsRegistry`
  rendered live as Prometheus text exposition (the same bytes
  ``obs.prometheus_text()`` produces post-run; histogram reads are atomic,
  so a mid-campaign scrape still satisfies ``parse_prometheus_text``);
- ``GET /healthz`` — JSON liveness: process uptime, observability flags,
  solver backend, warm-pool state, and the event bus's campaign summary
  (jobs done/total + ETA);
- ``GET /events`` — Server-Sent Events stream of the
  :class:`~repro.obs.events.EventBus`.  ``?since=SEQ`` (or the standard
  ``Last-Event-ID`` request header an ``EventSource`` sends on reconnect;
  the query parameter wins when both are present) replays the bounded
  buffer from a sequence number; ``?limit=N`` closes the stream after N
  events (curl/test friendly).  Idle keepalive comments every few seconds
  hold proxies open.

The server runs daemon-threaded next to the analysis (`--serve HOST:PORT`
on the CLI, or :func:`repro.obs.serve_live` programmatically); ``port=0``
binds an ephemeral port, reported by :attr:`LiveTelemetryServer.address`.
Handlers only *read* shared state — all mutation stays with the analysis
thread, so serving adds no locking to the hot path.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

__all__ = ["LiveTelemetryServer"]

#: Seconds between SSE keepalive comments while no events arrive.
_KEEPALIVE_SECONDS = 5.0


def _pool_status() -> Dict[str, object]:
    try:
        from repro.safety import pool
        return pool.status()
    except Exception:  # noqa: BLE001 — health must degrade, not 500
        return {"warm": False}


def _backend_status() -> Dict[str, object]:
    try:
        from repro.circuit.backends import BACKENDS, default_backend
        return {"default": default_backend(), "available": list(BACKENDS)}
    except Exception:  # noqa: BLE001
        return {}


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "same-live/1"

    # The ThreadingHTTPServer instance carries a backref to the telemetry
    # server object (set in LiveTelemetryServer.start).
    @property
    def telemetry(self) -> "LiveTelemetryServer":
        return self.server.telemetry  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        pass  # scrapes every few seconds must not spam the console

    def do_GET(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
        parsed = urlparse(self.path)
        try:
            if parsed.path == "/metrics":
                self._serve_metrics()
            elif parsed.path == "/healthz":
                self._serve_healthz()
            elif parsed.path == "/events":
                self._serve_events(parse_qs(parsed.query))
            else:
                self._respond(404, "text/plain; charset=utf-8", b"not found\n")
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-response; nothing to clean up

    def _respond(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _serve_metrics(self) -> None:
        from repro import obs
        body = obs.prometheus_text().encode("utf-8")
        self._respond(200, "text/plain; version=0.0.4; charset=utf-8", body)

    def _serve_healthz(self) -> None:
        from repro import obs
        telemetry = self.telemetry
        payload = {
            "status": "ok",
            "uptime_seconds": round(time.time() - telemetry.started_at, 3),
            "pid": telemetry.pid,
            "observability": {
                "tracing": obs.enabled(),
                "events": obs.events_enabled(),
                "logs": obs.logs_enabled(),
            },
            "solver_backend": _backend_status(),
            "pool": _pool_status(),
            "events": obs.event_bus().status(),
        }
        payload.update(telemetry.healthz_extra())
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self._respond(200, "application/json", body)

    def _int_param(
        self, query: Dict[str, list], name: str, default: int
    ) -> int:
        """Non-negative integer query parameter.

        Missing → ``default``; negative → clamped to 0 (a negative ``since``
        would replay the whole buffer and a negative ``limit`` would stream
        forever, neither of which the client meant); non-integer garbage →
        :class:`ValueError`, which the caller turns into a 400 *before* any
        response bytes are committed.
        """
        raw = query.get(name, [default])[0]
        try:
            value = int(raw)
        except (TypeError, ValueError):
            raise ValueError(
                f"query parameter {name!r} must be an integer, got {raw!r}"
            ) from None
        return max(0, value)

    def _since_param(self, query: Dict[str, list]) -> int:
        """The replay cursor: ``?since=SEQ``, else the standard
        ``Last-Event-ID`` header (what an ``EventSource`` client sends on
        reconnect, echoing the last SSE ``id:`` field), else 0.  The header
        value is validated exactly like ``?since`` — non-integer garbage
        raises (→ 400), negatives clamp to 0."""
        if "since" in query:
            return self._int_param(query, "since", 0)
        header = self.headers.get("Last-Event-ID")
        if header is None:
            return 0
        return self._int_param({"since": [header.strip()]}, "since", 0)

    def _serve_events(
        self, query: Dict[str, list], cid: Optional[str] = None
    ) -> None:
        from repro import obs

        # Validate before committing the 200/SSE headers: garbage must be
        # rejected as a 400, not leak into EventBus.subscribe or the send
        # loop as a bogus replay cursor / stream bound.
        try:
            since = self._since_param(query)
            limit = self._int_param(query, "limit", 0)  # 0 = stream on
        except ValueError as exc:
            self._respond(
                400, "text/plain; charset=utf-8", f"{exc}\n".encode("utf-8")
            )
            return
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        # SSE is unbounded: no Content-Length, so close delimits the body.
        self.send_header("Connection", "close")
        self.end_headers()
        bus = obs.event_bus()
        subscription = bus.subscribe(since=since, cid=cid)
        sent = 0
        try:
            while not self.telemetry.stopping:
                try:
                    event = subscription.get(timeout=_KEEPALIVE_SECONDS)
                except Exception:  # queue.Empty
                    self.wfile.write(b": keepalive\n\n")
                    self.wfile.flush()
                    continue
                data = json.dumps(event.to_dict(), sort_keys=True)
                frame = f"id: {event.seq}\nevent: {event.type}\ndata: {data}\n\n"
                self.wfile.write(frame.encode("utf-8"))
                self.wfile.flush()
                sent += 1
                if limit and sent >= limit:
                    break
        finally:
            bus.unsubscribe(subscription)


class LiveTelemetryServer:
    """The threaded live-telemetry endpoint; start/stop or context-manage.

    ::

        server = LiveTelemetryServer("127.0.0.1", 0)
        server.start()
        print(server.url)        # http://127.0.0.1:<port>
        ...
        server.stop()

    Subclasses may override :attr:`handler_class` to extend the endpoint
    surface (the analysis service adds ``/jobs``) and
    :meth:`healthz_extra` to enrich the ``/healthz`` document.
    """

    #: The request handler the server threads run; subclass hook.
    handler_class = _Handler

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self.host = host
        self.port = port
        self.started_at = time.time()
        self.stopping = False
        import os
        self.pid = os.getpid()
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        """``(host, port)`` actually bound (resolves ``port=0``)."""
        if self._httpd is None:
            return (self.host, self.port)
        return self._httpd.server_address[:2]  # type: ignore[return-value]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def healthz_extra(self) -> Dict[str, object]:
        """Additional top-level ``/healthz`` fields; subclass hook."""
        return {}

    def start(self) -> "LiveTelemetryServer":
        if self._httpd is not None:
            return self
        self.started_at = time.time()
        self.stopping = False
        httpd = ThreadingHTTPServer((self.host, self.port), self.handler_class)
        httpd.daemon_threads = True
        httpd.telemetry = self  # type: ignore[attr-defined]
        self._httpd = httpd
        self._thread = threading.Thread(
            target=httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="same-live-telemetry",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self.stopping = True
        httpd, self._httpd = self._httpd, None
        thread, self._thread = self._thread, None
        if httpd is not None:
            httpd.shutdown()
            httpd.server_close()
        if thread is not None:
            thread.join(timeout=2.0)

    def __enter__(self) -> "LiveTelemetryServer":
        return self.start()

    def __exit__(self, *exc: object) -> bool:
        self.stop()
        return False
