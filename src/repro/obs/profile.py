"""Signal-based sampling profiler with flamegraph-ready output.

:class:`SamplingProfiler` interrupts the main thread on a CPU-time timer
(``SIGPROF`` / ``ITIMER_PROF`` — deliberately *not* ``SIGALRM``, which the
per-job deadline machinery in ``repro.safety.resilience`` owns), captures
the interrupted Python stack, and aggregates identical stacks into counts.
:meth:`SamplingProfiler.write_folded` emits the collapsed-stack format
(``frame;frame;frame count`` per line) consumed by ``flamegraph.pl``,
speedscope and every other flamegraph renderer.

When tracing is enabled, each sample is rooted under a synthetic
``span:<name>`` frame naming the innermost active span on the main thread,
so a flamegraph slices by the same taxonomy as the trace (all campaign
samples under ``span:campaign.execute``, solver work under ``mna.*`` spans).

Sampling only works on the main thread of the main interpreter (POSIX
signal delivery); constructing a profiler elsewhere degrades to an inert
no-op (``active`` stays ``False``) rather than raising, so library code can
profile opportunistically.  Overhead is one short signal handler per
``interval`` of *CPU* time — idle waits (pool futures, I/O) cost nothing.
"""

from __future__ import annotations

import os.path
import signal
import threading
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

__all__ = ["SamplingProfiler"]


class SamplingProfiler:
    """Aggregating sampling profiler (collapsed-stack output).

    Usage::

        profiler = SamplingProfiler(interval=0.002)
        profiler.start()
        ...           # the workload
        profiler.stop()
        profiler.write_folded("campaign.folded")

    or as a context manager.  ``interval`` is seconds of process CPU time
    between samples (default 2 ms ≈ 500 Hz under full load).
    """

    def __init__(self, interval: float = 0.002) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval!r}")
        self.interval = float(interval)
        self.samples = 0
        self.active = False
        self._counts: Dict[Tuple[str, ...], int] = {}
        self._previous_handler = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> bool:
        """Arm the timer; ``True`` when sampling is actually running."""
        if self.active:
            return True
        if threading.current_thread() is not threading.main_thread():
            return False
        try:
            self._previous_handler = signal.signal(signal.SIGPROF, self._sample)
            signal.setitimer(signal.ITIMER_PROF, self.interval, self.interval)
        except (ValueError, OSError, AttributeError):
            # Non-main interpreter, exotic platform, or SIGPROF unavailable.
            self._previous_handler = None
            return False
        self.active = True
        return True

    def stop(self) -> int:
        """Disarm the timer and restore the old handler; returns the total
        number of samples captured."""
        if not self.active:
            return self.samples
        try:
            signal.setitimer(signal.ITIMER_PROF, 0.0, 0.0)
            signal.signal(
                signal.SIGPROF,
                self._previous_handler
                if self._previous_handler is not None
                else signal.SIG_DFL,
            )
        except (ValueError, OSError):
            pass
        self._previous_handler = None
        self.active = False
        return self.samples

    def __enter__(self) -> "SamplingProfiler":
        self.start()
        return self

    def __exit__(self, *exc: object) -> bool:
        self.stop()
        return False

    # -- sampling ----------------------------------------------------------

    def _sample(self, signum, frame) -> None:
        # Runs inside a signal handler on the main thread: keep it
        # allocation-light and never raise.  The frame argument is the
        # interrupted frame; walking f_back reads the live stack without
        # touching the traceback machinery.
        stack = []
        while frame is not None:
            code = frame.f_code
            stack.append(f"{os.path.basename(code.co_filename)}:{code.co_name}")
            frame = frame.f_back
        stack.reverse()
        span = _current_span_name()
        if span is not None:
            stack.insert(0, f"span:{span}")
        key = tuple(stack)
        self._counts[key] = self._counts.get(key, 0) + 1
        self.samples += 1

    # -- output ------------------------------------------------------------

    def folded(self) -> str:
        """The collapsed-stack text (``frame;frame count`` per line),
        deterministically ordered."""
        lines = [
            ";".join(stack) + f" {count}"
            for stack, count in sorted(self._counts.items())
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def write_folded(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.folded(), encoding="utf-8")
        return path


def _current_span_name() -> Optional[str]:
    # Late import: repro.obs imports nothing from this module at load time,
    # but importing it at our module top would still tie profiler import to
    # the whole obs facade; resolving lazily keeps this file standalone.
    try:
        from repro import obs
    except ImportError:  # pragma: no cover — obs is a sibling module
        return None
    if not obs.enabled():
        return None
    return obs.current_span_name()
