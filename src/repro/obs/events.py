"""Structured progress events (the ``repro.obs`` live-telemetry substrate).

Spans and metrics answer "what happened" after a run; the event bus answers
"what is happening" *during* one.  Producers — the campaign engine, the warm
worker pool, the recovery ladder, the DECISIVE loop — emit small typed
events through :func:`repro.obs.emit_event`; consumers attach in four ways:

- a **JSONL sink** (:meth:`EventBus.attach_jsonl`) appends one line per
  event, flushed immediately, so ``tail -f`` works mid-campaign;
- **callback subscribers** (:meth:`EventBus.add_callback`) drive the
  ``--progress`` console renderer in-process;
- **queue subscribers** (:meth:`EventBus.subscribe`) feed the ``/events``
  SSE endpoint, with bounded-buffer replay via ``?since=SEQ``;
- **worker draining** (:meth:`EventBus.drain_dicts` /
  :meth:`EventBus.ingest`) ships events out of pool workers on the same
  per-chunk delta path as spans and metrics, re-sequenced deterministically
  on the parent (chunk-submission order), preserving origin pid/timestamp.

The event taxonomy (see ``docs/observability.md`` for the payload schema):
``campaign_started``, ``chunk_completed``, ``job_retried``,
``pool_worker_lost``, ``pool_acquired``, ``worker_heartbeat``,
``checkpoint_written``, ``campaign_finished``, ``iteration_finished``.

Everything here is dependency-free and lock-protected; with events disabled
(the default) producers pay a single module-flag check in
:func:`repro.obs.emit_event` and never reach this module.
"""

from __future__ import annotations

import json
import math
import os
import queue
import sys
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Union

__all__ = ["Event", "EventBus", "ConsoleProgress", "DEFAULT_BUFFER"]

#: Replay-buffer depth: enough for the whole event stream of any test-sized
#: campaign, bounded so week-long service runs cannot grow without limit.
DEFAULT_BUFFER = 1024


@dataclass
class Event:
    """One typed progress event.

    ``cid`` is the correlation id of the job/invocation the event belongs
    to (``None`` for uncorrelated emitters); it survives the worker
    drain/ingest round-trip so per-job streams include pool-worker events.
    """

    seq: int
    type: str
    ts: float  # wall clock (time.time) at emit, for humans and ETAs
    pid: int
    payload: Dict[str, object] = field(default_factory=dict)
    cid: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "seq": self.seq,
            "type": self.type,
            "ts": self.ts,
            "pid": self.pid,
            "payload": dict(self.payload),
        }
        if self.cid is not None:
            out["cid"] = self.cid
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Event":
        cid = data.get("cid")
        return cls(
            seq=int(data.get("seq", 0)),
            type=str(data["type"]),
            ts=float(data.get("ts", 0.0)),
            pid=int(data.get("pid", 0)),
            payload=dict(data.get("payload", {})),  # type: ignore[arg-type]
            cid=None if cid is None else str(cid),
        )


class EventBus:
    """Thread-safe fan-out of :class:`Event` objects with bounded replay.

    A single bus instance lives per process (module singleton in
    ``repro.obs``); pool workers emit into their own process-local bus and
    the parent re-sequences their drained events with :meth:`ingest`.
    """

    def __init__(self, buffer: int = DEFAULT_BUFFER) -> None:
        self._lock = threading.Lock()
        self._seq = 0
        self._buffer: "deque[Event]" = deque(maxlen=buffer)
        #: Correlation-id index over ``_buffer``: per-stream replay without
        #: scanning the whole ring.  Entries share the Event objects with
        #: ``_buffer`` and are trimmed as the ring evicts.
        self._by_cid: Dict[str, "deque[Event]"] = {}
        self._queues: List["tuple[queue.Queue[Event], Optional[str]]"] = []
        self._callbacks: List[Callable[[Event], None]] = []
        self._sink = None
        self._sink_path: Optional[Path] = None
        self._status: Dict[str, object] = {}

    # -- producing ---------------------------------------------------------

    def emit(
        self,
        type_: str,
        payload: Optional[Mapping[str, object]] = None,
        cid: Optional[str] = None,
    ) -> Event:
        """Publish one event (allocating the next sequence number)."""
        return self._publish(
            type_, time.time(), os.getpid(), dict(payload or {}), cid
        )

    def _publish(
        self,
        type_: str,
        ts: float,
        pid: int,
        payload: Dict[str, object],
        cid: Optional[str] = None,
    ) -> Event:
        with self._lock:
            self._seq += 1
            event = Event(
                seq=self._seq, type=type_, ts=ts, pid=pid, payload=payload, cid=cid
            )
            if (
                self._buffer.maxlen is not None
                and len(self._buffer) == self._buffer.maxlen
                and self._buffer
            ):
                evicted = self._buffer[0]
                if evicted.cid is not None:
                    view = self._by_cid.get(evicted.cid)
                    if view and view[0].seq == evicted.seq:
                        view.popleft()
                    if not view:
                        self._by_cid.pop(evicted.cid, None)
            self._buffer.append(event)
            if cid is not None:
                self._by_cid.setdefault(cid, deque()).append(event)
            self._track_status(event)
            if self._sink is not None:
                try:
                    self._sink.write(json.dumps(event.to_dict(), sort_keys=True) + "\n")
                    self._sink.flush()
                except (OSError, ValueError):
                    self._sink = None  # dead sink: stop writing, keep emitting
            queues = [
                q for q, want in self._queues if want is None or want == cid
            ]
            callbacks = list(self._callbacks)
        for q in queues:
            q.put(event)
        # Callbacks run outside the lock: a slow console renderer must not
        # serialize producers, and a callback that emits would deadlock.
        for callback in callbacks:
            try:
                callback(event)
            except Exception:  # noqa: BLE001 — rendering must never kill a run
                pass
        return event

    #: Bound on the per-campaign `/healthz` progress map: finished entries
    #: are evicted oldest-first past this, so week-long service runs with
    #: thousands of campaigns keep a constant-size health payload.
    MAX_TRACKED_CAMPAIGNS = 16

    @staticmethod
    def _campaign_key(event: Event) -> str:
        """Identity of the campaign a progress event belongs to.

        Campaign events carry the campaign fingerprint; the correlation id
        disambiguates identical campaigns run for different jobs.  Legacy
        emitters with neither collapse onto one shared slot (the pre-keyed
        behaviour)."""
        fingerprint = event.payload.get("fingerprint")
        if event.cid is not None and fingerprint:
            return f"{fingerprint}/{event.cid}"
        if fingerprint:
            return str(fingerprint)
        return event.cid or "-"

    def _track_status(self, event: Event) -> None:
        """Maintain the `/healthz` campaign summary (caller holds the lock).

        Progress is tracked **per campaign** under ``campaigns`` (keyed by
        fingerprint/correlation id, so two campaigns running concurrently
        under the service do not clobber each other); the legacy
        ``campaign`` key aliases the most recently *started* campaign's
        entry."""
        self._status["last_seq"] = event.seq
        self._status["last_type"] = event.type
        self._status["last_ts"] = event.ts
        p = event.payload
        if event.type == "campaign_started":
            info: Dict[str, object] = {
                "active": True,
                "system": p.get("system"),
                "jobs_total": p.get("jobs"),
                "jobs_done": p.get("resumed", 0),
                "eta_seconds": None,
            }
            if p.get("fingerprint"):
                info["fingerprint"] = p.get("fingerprint")
            if event.cid is not None:
                info["correlation_id"] = event.cid
            campaigns = self._status.setdefault("campaigns", {})
            campaigns.pop(self._campaign_key(event), None)  # restart resets
            campaigns[self._campaign_key(event)] = info  # type: ignore[index]
            self._evict_campaigns(campaigns)  # type: ignore[arg-type]
            self._status["campaign"] = info
        elif event.type == "chunk_completed":
            campaign = self._campaign_entry(event)
            campaign["jobs_done"] = p.get("done")
            campaign["jobs_total"] = p.get("total")
            campaign["eta_seconds"] = p.get("eta_seconds")
        elif event.type == "campaign_finished":
            campaign = self._campaign_entry(event)
            campaign["active"] = False
            campaign["eta_seconds"] = 0.0
        elif event.type in ("job_submitted", "job_started", "job_finished"):
            # Analysis-service job lifecycle (repro.service): running
            # totals so `/healthz` summarises the queue without reaching
            # into the service object.
            service = self._status.setdefault(
                "service_jobs",
                {"submitted": 0, "finished": 0, "failed": 0, "cached": 0},
            )
            if event.type == "job_submitted":
                service["submitted"] += 1  # type: ignore[index]
            elif event.type == "job_finished":
                service["finished"] += 1  # type: ignore[index]
                if p.get("state") == "failed":
                    service["failed"] += 1  # type: ignore[index]
                if p.get("cached"):
                    service["cached"] += 1  # type: ignore[index]
            service["last_job"] = p.get("job")  # type: ignore[index]

    def _campaign_entry(self, event: Event) -> Dict[str, object]:
        """The keyed progress entry for ``event``'s campaign (lock held)."""
        campaigns = self._status.setdefault("campaigns", {})
        entry = campaigns.setdefault(  # type: ignore[union-attr]
            self._campaign_key(event), {"active": True}
        )
        if not isinstance(self._status.get("campaign"), dict):
            self._status["campaign"] = entry
        return entry  # type: ignore[return-value]

    @classmethod
    def _evict_campaigns(cls, campaigns: Dict[str, object]) -> None:
        while len(campaigns) > cls.MAX_TRACKED_CAMPAIGNS:
            for key, info in campaigns.items():
                if not (isinstance(info, dict) and info.get("active")):
                    campaigns.pop(key)
                    break
            else:  # all active: drop the oldest
                campaigns.pop(next(iter(campaigns)))

    # -- consuming ---------------------------------------------------------

    def subscribe(
        self, since: int = 0, cid: Optional[str] = None
    ) -> "queue.Queue[Event]":
        """A queue receiving every future event, pre-loaded with the
        buffered events whose ``seq`` is greater than ``since``.

        With ``cid``, the subscription is a **per-stream view**: only
        events carrying that correlation id are replayed (via the
        id-indexed buffer view) and delivered."""
        q: "queue.Queue[Event]" = queue.Queue()
        with self._lock:
            source = self._buffer if cid is None else self._by_cid.get(cid, ())
            for event in source:
                if event.seq > since:
                    q.put(event)
            self._queues.append((q, cid))
        return q

    def unsubscribe(self, q: "queue.Queue[Event]") -> None:
        with self._lock:
            self._queues = [pair for pair in self._queues if pair[0] is not q]

    def add_callback(self, callback: Callable[[Event], None]) -> None:
        with self._lock:
            self._callbacks.append(callback)

    def remove_callback(self, callback: Callable[[Event], None]) -> None:
        with self._lock:
            if callback in self._callbacks:
                self._callbacks.remove(callback)

    def attach_jsonl(self, path: Union[str, Path]) -> Path:
        """Append every event (including the buffered backlog) to ``path``
        as JSON lines, flushed per event."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        handle = open(path, "a", encoding="utf-8")
        with self._lock:
            if self._sink is not None:
                try:
                    self._sink.close()
                except OSError:
                    pass
            for event in self._buffer:
                handle.write(json.dumps(event.to_dict(), sort_keys=True) + "\n")
            handle.flush()
            self._sink = handle
            self._sink_path = path
        return path

    def detach_jsonl(self) -> Optional[Path]:
        with self._lock:
            path, self._sink_path = self._sink_path, None
            sink, self._sink = self._sink, None
        if sink is not None:
            try:
                sink.close()
            except OSError:
                pass
        return path

    # -- worker shipping ---------------------------------------------------

    def drain_dicts(self) -> List[Dict[str, object]]:
        """Worker side: pop buffered events as picklable dicts.

        Like :func:`repro.obs.drain_worker_data`, draining clears the
        buffer — a warm-pool worker hands each chunk's events to the parent
        exactly once, never its cumulative history."""
        with self._lock:
            events = [event.to_dict() for event in self._buffer]
            self._buffer.clear()
            self._by_cid.clear()
        return events

    def ingest(self, events: List[Mapping[str, object]]) -> List[Event]:
        """Parent side: re-publish drained worker events in order.

        Sequence numbers are reallocated on this bus (worker-local seqs are
        meaningless across processes); origin ``ts``, ``pid`` and ``cid``
        are kept, so heartbeats still identify which worker they came from
        and per-job streams include worker-side events."""
        merged: List[Event] = []
        for data in events:
            try:
                event = Event.from_dict(data)
            except (KeyError, TypeError, ValueError):
                continue
            merged.append(
                self._publish(
                    event.type, event.ts, event.pid, dict(event.payload), event.cid
                )
            )
        return merged

    # -- inspection / lifecycle -------------------------------------------

    def events(self, since: int = 0, cid: Optional[str] = None) -> List[Event]:
        """Buffered events with ``seq`` greater than ``since`` (replay);
        with ``cid``, only the events of that correlation stream."""
        with self._lock:
            source = self._buffer if cid is None else self._by_cid.get(cid, ())
            return [event for event in source if event.seq > since]

    def last_seq(self) -> int:
        with self._lock:
            return self._seq

    def status(self) -> Dict[str, object]:
        """A summary for `/healthz`: last event + campaign progress."""
        with self._lock:
            out = dict(self._status)
            campaign = out.get("campaign")
            if isinstance(campaign, dict):
                out["campaign"] = dict(campaign)
            campaigns = out.get("campaigns")
            if isinstance(campaigns, dict):
                out["campaigns"] = {
                    key: dict(info) if isinstance(info, dict) else info
                    for key, info in campaigns.items()
                }
            return out

    def clear(self) -> None:
        """Drop buffered events, status and the sequence counter.

        Subscribers, callbacks and an attached sink survive — ``clear`` is
        the per-run reset (`obs.reset`), not a teardown."""
        with self._lock:
            self._buffer.clear()
            self._by_cid.clear()
            self._seq = 0
            self._status = {}


class ConsoleProgress:
    """An :class:`EventBus` callback rendering progress lines to a stream.

    ``chunk_completed`` lines are throttled (default two per second) except
    for the final one; heartbeats are skipped entirely.  Attach with
    ``bus.add_callback(ConsoleProgress())``; the CLI wires this behind
    ``--progress``.
    """

    #: Event types rendered; anything else (heartbeats, pool chatter) is
    #: visible in the JSONL stream / SSE feed but too noisy for a console.
    RENDERED = (
        "campaign_started",
        "chunk_completed",
        "job_retried",
        "pool_worker_lost",
        "checkpoint_written",
        "campaign_finished",
        "iteration_finished",
    )

    def __init__(self, stream=None, min_interval: float = 0.5) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval = min_interval
        self._last_progress = 0.0
        self._chunks_seen = 0

    def __call__(self, event: Event) -> None:
        if event.type not in self.RENDERED:
            return
        p = event.payload
        if event.type == "chunk_completed":
            done, total = p.get("done"), p.get("total")
            final = done is not None and done == total
            self._chunks_seen += 1
            now = time.monotonic()
            if not final and now - self._last_progress < self.min_interval:
                return
            self._last_progress = now
            eta = p.get("eta_seconds")
            # One completed chunk is not a rate: zero- and single-job
            # campaigns (and the first chunk of any campaign) render a
            # placeholder instead of a division-derived 0.0/inf ETA.
            if (
                self._chunks_seen < 2
                or not isinstance(eta, (int, float))
                or isinstance(eta, bool)
                or not math.isfinite(float(eta))
            ):
                eta_text = " eta=--:--"
            else:
                eta_text = f" eta={eta:.1f}s"
            self._write(f"progress {done}/{total}{eta_text}")
        elif event.type == "campaign_started":
            self._chunks_seen = 0
            self._write(
                "campaign started: system={system} analysis={analysis} "
                "jobs={jobs} workers={workers} strategy={strategy}".format(
                    system=p.get("system"), analysis=p.get("analysis"),
                    jobs=p.get("jobs"), workers=p.get("workers"),
                    strategy=p.get("strategy"),
                )
            )
        elif event.type == "campaign_finished":
            self._write(
                "campaign finished: jobs={jobs} rows={rows} "
                "wall={wall:.2f}s".format(
                    jobs=p.get("jobs"), rows=p.get("rows"),
                    wall=float(p.get("wall_seconds") or 0.0),
                )
            )
        elif event.type == "iteration_finished":
            self._write(
                "iteration {index}: spfm={spfm} asil={asil} met_target={met}".format(
                    index=p.get("index"), spfm=p.get("spfm"),
                    asil=p.get("asil"), met=p.get("met_target"),
                )
            )
        elif event.type == "job_retried":
            self._write(
                "retry job={job} attempt={attempt} error={error}".format(
                    job=p.get("job"), attempt=p.get("attempt"),
                    error=p.get("error"),
                )
            )
        elif event.type == "pool_worker_lost":
            self._write(
                "worker lost: chunk={chunk} jobs={jobs} attempt={attempt}".format(
                    chunk=p.get("chunk"), jobs=p.get("jobs"),
                    attempt=p.get("attempt"),
                )
            )
        elif event.type == "checkpoint_written":
            self._write(
                "checkpoint: +{written} outcomes -> {path}".format(
                    written=p.get("written"), path=p.get("path"),
                )
            )

    def _write(self, text: str) -> None:
        try:
            self.stream.write(f"[same] {text}\n")
            self.stream.flush()
        except (OSError, ValueError):
            pass
