"""Structured progress events (the ``repro.obs`` live-telemetry substrate).

Spans and metrics answer "what happened" after a run; the event bus answers
"what is happening" *during* one.  Producers — the campaign engine, the warm
worker pool, the recovery ladder, the DECISIVE loop — emit small typed
events through :func:`repro.obs.emit_event`; consumers attach in four ways:

- a **JSONL sink** (:meth:`EventBus.attach_jsonl`) appends one line per
  event, flushed immediately, so ``tail -f`` works mid-campaign;
- **callback subscribers** (:meth:`EventBus.add_callback`) drive the
  ``--progress`` console renderer in-process;
- **queue subscribers** (:meth:`EventBus.subscribe`) feed the ``/events``
  SSE endpoint, with bounded-buffer replay via ``?since=SEQ``;
- **worker draining** (:meth:`EventBus.drain_dicts` /
  :meth:`EventBus.ingest`) ships events out of pool workers on the same
  per-chunk delta path as spans and metrics, re-sequenced deterministically
  on the parent (chunk-submission order), preserving origin pid/timestamp.

The event taxonomy (see ``docs/observability.md`` for the payload schema):
``campaign_started``, ``chunk_completed``, ``job_retried``,
``pool_worker_lost``, ``pool_acquired``, ``worker_heartbeat``,
``checkpoint_written``, ``campaign_finished``, ``iteration_finished``.

Everything here is dependency-free and lock-protected; with events disabled
(the default) producers pay a single module-flag check in
:func:`repro.obs.emit_event` and never reach this module.
"""

from __future__ import annotations

import json
import os
import queue
import sys
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Union

__all__ = ["Event", "EventBus", "ConsoleProgress", "DEFAULT_BUFFER"]

#: Replay-buffer depth: enough for the whole event stream of any test-sized
#: campaign, bounded so week-long service runs cannot grow without limit.
DEFAULT_BUFFER = 1024


@dataclass
class Event:
    """One typed progress event."""

    seq: int
    type: str
    ts: float  # wall clock (time.time) at emit, for humans and ETAs
    pid: int
    payload: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "seq": self.seq,
            "type": self.type,
            "ts": self.ts,
            "pid": self.pid,
            "payload": dict(self.payload),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Event":
        return cls(
            seq=int(data.get("seq", 0)),
            type=str(data["type"]),
            ts=float(data.get("ts", 0.0)),
            pid=int(data.get("pid", 0)),
            payload=dict(data.get("payload", {})),  # type: ignore[arg-type]
        )


class EventBus:
    """Thread-safe fan-out of :class:`Event` objects with bounded replay.

    A single bus instance lives per process (module singleton in
    ``repro.obs``); pool workers emit into their own process-local bus and
    the parent re-sequences their drained events with :meth:`ingest`.
    """

    def __init__(self, buffer: int = DEFAULT_BUFFER) -> None:
        self._lock = threading.Lock()
        self._seq = 0
        self._buffer: "deque[Event]" = deque(maxlen=buffer)
        self._queues: List["queue.Queue[Event]"] = []
        self._callbacks: List[Callable[[Event], None]] = []
        self._sink = None
        self._sink_path: Optional[Path] = None
        self._status: Dict[str, object] = {}

    # -- producing ---------------------------------------------------------

    def emit(self, type_: str, payload: Optional[Mapping[str, object]] = None) -> Event:
        """Publish one event (allocating the next sequence number)."""
        return self._publish(type_, time.time(), os.getpid(), dict(payload or {}))

    def _publish(
        self, type_: str, ts: float, pid: int, payload: Dict[str, object]
    ) -> Event:
        with self._lock:
            self._seq += 1
            event = Event(seq=self._seq, type=type_, ts=ts, pid=pid, payload=payload)
            self._buffer.append(event)
            self._track_status(event)
            if self._sink is not None:
                try:
                    self._sink.write(json.dumps(event.to_dict(), sort_keys=True) + "\n")
                    self._sink.flush()
                except (OSError, ValueError):
                    self._sink = None  # dead sink: stop writing, keep emitting
            queues = list(self._queues)
            callbacks = list(self._callbacks)
        for q in queues:
            q.put(event)
        # Callbacks run outside the lock: a slow console renderer must not
        # serialize producers, and a callback that emits would deadlock.
        for callback in callbacks:
            try:
                callback(event)
            except Exception:  # noqa: BLE001 — rendering must never kill a run
                pass
        return event

    def _track_status(self, event: Event) -> None:
        """Maintain the `/healthz` campaign summary (caller holds the lock)."""
        self._status["last_seq"] = event.seq
        self._status["last_type"] = event.type
        self._status["last_ts"] = event.ts
        p = event.payload
        if event.type == "campaign_started":
            self._status["campaign"] = {
                "active": True,
                "system": p.get("system"),
                "jobs_total": p.get("jobs"),
                "jobs_done": p.get("resumed", 0),
                "eta_seconds": None,
            }
        elif event.type == "chunk_completed":
            campaign = self._status.setdefault("campaign", {"active": True})
            campaign["jobs_done"] = p.get("done")  # type: ignore[index]
            campaign["jobs_total"] = p.get("total")  # type: ignore[index]
            campaign["eta_seconds"] = p.get("eta_seconds")  # type: ignore[index]
        elif event.type == "campaign_finished":
            campaign = self._status.setdefault("campaign", {})
            campaign["active"] = False  # type: ignore[index]
            campaign["eta_seconds"] = 0.0  # type: ignore[index]
        elif event.type in ("job_submitted", "job_started", "job_finished"):
            # Analysis-service job lifecycle (repro.service): running
            # totals so `/healthz` summarises the queue without reaching
            # into the service object.
            service = self._status.setdefault(
                "service_jobs",
                {"submitted": 0, "finished": 0, "failed": 0, "cached": 0},
            )
            if event.type == "job_submitted":
                service["submitted"] += 1  # type: ignore[index]
            elif event.type == "job_finished":
                service["finished"] += 1  # type: ignore[index]
                if p.get("state") == "failed":
                    service["failed"] += 1  # type: ignore[index]
                if p.get("cached"):
                    service["cached"] += 1  # type: ignore[index]
            service["last_job"] = p.get("job")  # type: ignore[index]

    # -- consuming ---------------------------------------------------------

    def subscribe(self, since: int = 0) -> "queue.Queue[Event]":
        """A queue receiving every future event, pre-loaded with the
        buffered events whose ``seq`` is greater than ``since``."""
        q: "queue.Queue[Event]" = queue.Queue()
        with self._lock:
            for event in self._buffer:
                if event.seq > since:
                    q.put(event)
            self._queues.append(q)
        return q

    def unsubscribe(self, q: "queue.Queue[Event]") -> None:
        with self._lock:
            if q in self._queues:
                self._queues.remove(q)

    def add_callback(self, callback: Callable[[Event], None]) -> None:
        with self._lock:
            self._callbacks.append(callback)

    def remove_callback(self, callback: Callable[[Event], None]) -> None:
        with self._lock:
            if callback in self._callbacks:
                self._callbacks.remove(callback)

    def attach_jsonl(self, path: Union[str, Path]) -> Path:
        """Append every event (including the buffered backlog) to ``path``
        as JSON lines, flushed per event."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        handle = open(path, "a", encoding="utf-8")
        with self._lock:
            if self._sink is not None:
                try:
                    self._sink.close()
                except OSError:
                    pass
            for event in self._buffer:
                handle.write(json.dumps(event.to_dict(), sort_keys=True) + "\n")
            handle.flush()
            self._sink = handle
            self._sink_path = path
        return path

    def detach_jsonl(self) -> Optional[Path]:
        with self._lock:
            path, self._sink_path = self._sink_path, None
            sink, self._sink = self._sink, None
        if sink is not None:
            try:
                sink.close()
            except OSError:
                pass
        return path

    # -- worker shipping ---------------------------------------------------

    def drain_dicts(self) -> List[Dict[str, object]]:
        """Worker side: pop buffered events as picklable dicts.

        Like :func:`repro.obs.drain_worker_data`, draining clears the
        buffer — a warm-pool worker hands each chunk's events to the parent
        exactly once, never its cumulative history."""
        with self._lock:
            events = [event.to_dict() for event in self._buffer]
            self._buffer.clear()
        return events

    def ingest(self, events: List[Mapping[str, object]]) -> List[Event]:
        """Parent side: re-publish drained worker events in order.

        Sequence numbers are reallocated on this bus (worker-local seqs are
        meaningless across processes); origin ``ts`` and ``pid`` are kept,
        so heartbeats still identify which worker they came from."""
        merged: List[Event] = []
        for data in events:
            try:
                event = Event.from_dict(data)
            except (KeyError, TypeError, ValueError):
                continue
            merged.append(
                self._publish(event.type, event.ts, event.pid, dict(event.payload))
            )
        return merged

    # -- inspection / lifecycle -------------------------------------------

    def events(self, since: int = 0) -> List[Event]:
        """Buffered events with ``seq`` greater than ``since`` (replay)."""
        with self._lock:
            return [event for event in self._buffer if event.seq > since]

    def last_seq(self) -> int:
        with self._lock:
            return self._seq

    def status(self) -> Dict[str, object]:
        """A summary for `/healthz`: last event + campaign progress."""
        with self._lock:
            out = dict(self._status)
            campaign = out.get("campaign")
            if isinstance(campaign, dict):
                out["campaign"] = dict(campaign)
            return out

    def clear(self) -> None:
        """Drop buffered events, status and the sequence counter.

        Subscribers, callbacks and an attached sink survive — ``clear`` is
        the per-run reset (`obs.reset`), not a teardown."""
        with self._lock:
            self._buffer.clear()
            self._seq = 0
            self._status = {}


class ConsoleProgress:
    """An :class:`EventBus` callback rendering progress lines to a stream.

    ``chunk_completed`` lines are throttled (default two per second) except
    for the final one; heartbeats are skipped entirely.  Attach with
    ``bus.add_callback(ConsoleProgress())``; the CLI wires this behind
    ``--progress``.
    """

    #: Event types rendered; anything else (heartbeats, pool chatter) is
    #: visible in the JSONL stream / SSE feed but too noisy for a console.
    RENDERED = (
        "campaign_started",
        "chunk_completed",
        "job_retried",
        "pool_worker_lost",
        "checkpoint_written",
        "campaign_finished",
        "iteration_finished",
    )

    def __init__(self, stream=None, min_interval: float = 0.5) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval = min_interval
        self._last_progress = 0.0

    def __call__(self, event: Event) -> None:
        if event.type not in self.RENDERED:
            return
        p = event.payload
        if event.type == "chunk_completed":
            done, total = p.get("done"), p.get("total")
            final = done is not None and done == total
            now = time.monotonic()
            if not final and now - self._last_progress < self.min_interval:
                return
            self._last_progress = now
            eta = p.get("eta_seconds")
            eta_text = f" eta={eta:.1f}s" if isinstance(eta, (int, float)) else ""
            self._write(f"progress {done}/{total}{eta_text}")
        elif event.type == "campaign_started":
            self._write(
                "campaign started: system={system} analysis={analysis} "
                "jobs={jobs} workers={workers} strategy={strategy}".format(
                    system=p.get("system"), analysis=p.get("analysis"),
                    jobs=p.get("jobs"), workers=p.get("workers"),
                    strategy=p.get("strategy"),
                )
            )
        elif event.type == "campaign_finished":
            self._write(
                "campaign finished: jobs={jobs} rows={rows} "
                "wall={wall:.2f}s".format(
                    jobs=p.get("jobs"), rows=p.get("rows"),
                    wall=float(p.get("wall_seconds") or 0.0),
                )
            )
        elif event.type == "iteration_finished":
            self._write(
                "iteration {index}: spfm={spfm} asil={asil} met_target={met}".format(
                    index=p.get("index"), spfm=p.get("spfm"),
                    asil=p.get("asil"), met=p.get("met_target"),
                )
            )
        elif event.type == "job_retried":
            self._write(
                "retry job={job} attempt={attempt} error={error}".format(
                    job=p.get("job"), attempt=p.get("attempt"),
                    error=p.get("error"),
                )
            )
        elif event.type == "pool_worker_lost":
            self._write(
                "worker lost: chunk={chunk} jobs={jobs} attempt={attempt}".format(
                    chunk=p.get("chunk"), jobs=p.get("jobs"),
                    attempt=p.get("attempt"),
                )
            )
        elif event.type == "checkpoint_written":
            self._write(
                "checkpoint: +{written} outcomes -> {path}".format(
                    written=p.get("written"), path=p.get("path"),
                )
            )

    def _write(self, text: str) -> None:
        try:
            self.stream.write(f"[same] {text}\n")
            self.stream.flush()
        except (OSError, ValueError):
            pass
