"""Declarative SLOs with multi-window burn-rate alerting.

The analysis service gates *analysis* quality with ``watch-regressions``;
this module gates *service* health.  An :class:`Objective` declares either
a **ratio** SLO (good/bad counter pair — e.g. job success rate) or a
**latency** SLO (a histogram plus a threshold — "p99 of cache-hit latency
stays under 250 ms" is "at most 1% of observations exceed 250 ms", i.e. a
ratio SLO over bucket counts).  :class:`SLOEngine` evaluates objectives
against the live :class:`~repro.obs.metrics.MetricsRegistry` using the
SRE multi-window burn-rate recipe:

- every evaluation snapshots each objective's (good, bad) totals;
- the **burn rate** over a window is the window's error ratio divided by
  the error budget (``1 - target``) — burn 1.0 spends the budget exactly
  at the end of the SLO period, burn 14.4 spends a 30-day budget in 2 days;
- an objective is ``breached`` when both the short *and* long window burn
  above ``fast_burn`` (sustained fast burn, not a single blip), ``warning``
  when both exceed ``slow_burn``, else ``ok``;
- an objective with no traffic in the window is ``ok`` — an idle service
  is healthy, not failing.

The engine publishes ``service_slo_*`` metrics on every evaluation and its
report feeds the ``/healthz`` ``slo`` section, the ``same slo`` CLI verb
and the per-entry ``meta["slo"]`` stamp that the ``watch-regressions``
``slo`` rule checks.  Everything here is dependency-free; windows diff
snapshots, so evaluation never needs per-request timestamps.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs.metrics import Histogram, MetricsRegistry

__all__ = [
    "Objective",
    "SLOEngine",
    "DEFAULT_OBJECTIVES",
    "objectives_from_config",
    "render_report",
    "summarize",
]

#: Burn-rate thresholds from the SRE workbook's 30-day multi-window
#: policy: 14.4 consumes a month's budget in two days (page-worthy),
#: 6.0 in five days (ticket-worthy).
FAST_BURN = 14.4
SLOW_BURN = 6.0


@dataclass(frozen=True)
class Objective:
    """One declarative service-level objective.

    ``kind='ratio'``: ``good``/``bad`` name counters; the SLO holds while
    ``good / (good + bad) >= target``.

    ``kind='latency'``: ``histogram`` names a histogram and ``threshold``
    is the latency bound in seconds; observations above the threshold are
    the "bad" events, so ``target=0.99`` reads "p99 <= threshold".
    """

    name: str
    kind: str  # 'ratio' | 'latency'
    target: float = 0.99  # required good fraction in [0, 1)
    good: str = ""  # counter name (ratio)
    bad: str = ""  # counter name (ratio)
    histogram: str = ""  # histogram name (latency)
    threshold: float = 0.0  # seconds (latency)
    description: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ("ratio", "latency"):
            raise ValueError(f"objective kind must be ratio|latency, got {self.kind!r}")
        if not 0.0 <= self.target < 1.0:
            raise ValueError(f"objective target must be in [0, 1), got {self.target!r}")
        if self.kind == "ratio" and not (self.good and self.bad):
            raise ValueError(f"ratio objective {self.name!r} needs good+bad counters")
        if self.kind == "latency" and not self.histogram:
            raise ValueError(f"latency objective {self.name!r} needs a histogram")

    @property
    def budget(self) -> float:
        return 1.0 - self.target

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "name": self.name, "kind": self.kind, "target": self.target,
        }
        if self.kind == "ratio":
            out["good"] = self.good
            out["bad"] = self.bad
        else:
            out["histogram"] = self.histogram
            out["threshold"] = self.threshold
        if self.description:
            out["description"] = self.description
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Objective":
        return cls(
            name=str(data["name"]),
            kind=str(data.get("kind", "ratio")),
            target=float(data.get("target", 0.99)),
            good=str(data.get("good", "")),
            bad=str(data.get("bad", "")),
            histogram=str(data.get("histogram", "")),
            threshold=float(data.get("threshold", 0.0)),
            description=str(data.get("description", "")),
        )


#: The analysis service's stock objectives (see ``docs/observability.md``
#: for the declarative config schema that overrides them).
DEFAULT_OBJECTIVES: Tuple[Objective, ...] = (
    Objective(
        name="job_success_rate",
        kind="ratio",
        target=0.95,
        good="service_jobs_completed",
        bad="service_jobs_failed",
        description="at least 95% of analysis jobs complete",
    ),
    Objective(
        name="cache_hit_latency_p99",
        kind="latency",
        target=0.99,
        histogram="service_cache_hit_wall_seconds",
        threshold=0.25,
        description="p99 of cache-hit job latency stays under 250ms",
    ),
    Objective(
        name="queue_wait_p95",
        kind="latency",
        target=0.95,
        histogram="service_queue_wait_seconds",
        threshold=2.5,
        description="p95 of queue wait stays under 2.5s",
    ),
)


def objectives_from_config(
    config: Sequence[Mapping[str, object]],
) -> Tuple[Objective, ...]:
    """Parse a declarative objective list (e.g. ``--slo config.json``)."""
    return tuple(Objective.from_dict(item) for item in config)


@dataclass
class _Snapshot:
    ts: float
    counts: Dict[str, Tuple[float, float]] = field(default_factory=dict)


class SLOEngine:
    """Evaluates objectives against a registry with burn-rate windows."""

    def __init__(
        self,
        objectives: Optional[Sequence[Objective]] = None,
        registry: Optional[MetricsRegistry] = None,
        short_window: float = 300.0,
        long_window: float = 3600.0,
        fast_burn: float = FAST_BURN,
        slow_burn: float = SLOW_BURN,
        max_snapshots: int = 512,
    ) -> None:
        self.objectives: Tuple[Objective, ...] = tuple(
            objectives if objectives is not None else DEFAULT_OBJECTIVES
        )
        if registry is None:
            from repro import obs

            registry = obs.registry()
        self.registry = registry
        self.short_window = float(short_window)
        self.long_window = float(long_window)
        self.fast_burn = float(fast_burn)
        self.slow_burn = float(slow_burn)
        self._lock = threading.Lock()
        self._snapshots: "deque[_Snapshot]" = deque(maxlen=max_snapshots)

    # -- counting ----------------------------------------------------------

    def _counts(self, objective: Objective) -> Tuple[float, float]:
        """Cumulative (good, bad) event totals for one objective."""
        if objective.kind == "ratio":
            return (
                self.registry.counter(objective.good).value,
                self.registry.counter(objective.bad).value,
            )
        histogram = self.registry.histogram(objective.histogram)
        return self._latency_counts(histogram, objective.threshold)

    @staticmethod
    def _latency_counts(histogram: Histogram, threshold: float) -> Tuple[float, float]:
        """Good = observations at or under ``threshold`` (by bucket upper
        bound, conservative when the threshold falls inside a bucket)."""
        dump = histogram.snapshot()
        counts: List[int] = dump["counts"]  # type: ignore[assignment]
        bounds: List[float] = dump["bounds"]  # type: ignore[assignment]
        total = float(dump["count"])  # type: ignore[arg-type]
        good = float(
            sum(
                count
                for bound, count in zip(bounds, counts)
                if bound <= threshold
            )
        )
        return good, total - good

    def observe(self, now: Optional[float] = None) -> None:
        """Record one timestamped snapshot of every objective's totals.

        Call after state changes (the service snapshots at start and after
        every job) — windows can only be as fine as the snapshot cadence."""
        snapshot = _Snapshot(ts=time.time() if now is None else float(now))
        for objective in self.objectives:
            snapshot.counts[objective.name] = self._counts(objective)
        with self._lock:
            self._snapshots.append(snapshot)

    # -- evaluation --------------------------------------------------------

    def _baseline(self, name: str, horizon: float) -> Tuple[float, float]:
        """The newest snapshot at or before ``horizon`` (falling back to
        the oldest retained one — a young engine's windows span its whole
        life), as that objective's (good, bad) totals."""
        baseline: Optional[_Snapshot] = None
        for snapshot in self._snapshots:
            if snapshot.ts <= horizon:
                baseline = snapshot
            else:
                break
        if baseline is None and self._snapshots:
            baseline = self._snapshots[0]
        if baseline is None:
            return (0.0, 0.0)
        return baseline.counts.get(name, (0.0, 0.0))

    @staticmethod
    def _burn(
        current: Tuple[float, float], base: Tuple[float, float], budget: float
    ) -> Tuple[float, float]:
        """(burn_rate, window_total) between two cumulative snapshots."""
        good = max(0.0, current[0] - base[0])
        bad = max(0.0, current[1] - base[1])
        total = good + bad
        if total <= 0.0:
            return 0.0, 0.0
        error_ratio = bad / total
        return error_ratio / max(budget, 1e-9), total

    def evaluate(self, now: Optional[float] = None) -> Dict[str, object]:
        """Snapshot, evaluate every objective, publish ``service_slo_*``
        metrics, and return the report rendered on ``/healthz``."""
        ts = time.time() if now is None else float(now)
        self.observe(now=ts)
        objectives: List[Dict[str, object]] = []
        with self._lock:
            for objective in self.objectives:
                current = self._counts(objective)
                short = self._burn(
                    current,
                    self._baseline(objective.name, ts - self.short_window),
                    objective.budget,
                )
                long = self._burn(
                    current,
                    self._baseline(objective.name, ts - self.long_window),
                    objective.budget,
                )
                if short[1] and long[1] and min(short[0], long[0]) >= self.fast_burn:
                    status = "breached"
                elif short[1] and long[1] and min(short[0], long[0]) >= self.slow_burn:
                    status = "warning"
                else:
                    status = "ok"
                objectives.append(
                    {
                        "name": objective.name,
                        "kind": objective.kind,
                        "status": status,
                        "target": objective.target,
                        "budget": objective.budget,
                        "burn_short": round(short[0], 4),
                        "burn_long": round(long[0], 4),
                        "window_events": short[1],
                        "good": current[0],
                        "bad": current[1],
                        "description": objective.description,
                    }
                )
        order = ("ok", "warning", "breached")
        overall = max(
            (str(item["status"]) for item in objectives),
            key=order.index,
            default="ok",
        )
        report: Dict[str, object] = {
            "status": overall,
            "objectives": objectives,
            "windows": {"short": self.short_window, "long": self.long_window},
        }
        self.registry.counter("service_slo_evaluations").inc()
        self.registry.gauge("service_slo_objectives").set(len(objectives))
        self.registry.gauge("service_slo_breached").set(
            sum(1 for item in objectives if item["status"] == "breached")
        )
        self.registry.gauge("service_slo_warning").set(
            sum(1 for item in objectives if item["status"] == "warning")
        )
        return report


def summarize(report: Mapping[str, object]) -> Dict[str, object]:
    """The compact form stamped into ledger ``meta["slo"]``."""
    objectives = report.get("objectives", ())
    return {
        "status": report.get("status", "ok"),
        "breached": [
            str(item["name"])
            for item in objectives  # type: ignore[union-attr]
            if item.get("status") == "breached"
        ],
        "warning": [
            str(item["name"])
            for item in objectives  # type: ignore[union-attr]
            if item.get("status") == "warning"
        ],
    }


def render_report(report: Mapping[str, object]) -> str:
    """Human-readable rendering for the ``same slo`` CLI verb."""
    lines = [f"slo status: {report.get('status', 'ok')}"]
    for item in report.get("objectives", ()):  # type: ignore[union-attr]
        lines.append(
            "  {name:<24} {status:<8} burn(short={short}, long={long})"
            " target={target} events={events:g}".format(
                name=item.get("name"),
                status=item.get("status"),
                short=item.get("burn_short"),
                long=item.get("burn_long"),
                target=item.get("target"),
                events=float(item.get("window_events", 0) or 0),
            )
        )
    return "\n".join(lines)
