"""Hierarchical tracing spans (the ``repro.obs`` trace substrate).

A *span* is a named, timed region of execution with key/value attributes;
spans nest, forming a tree per campaign / analysis run.  Design points:

- **monotonic clocks** — durations come from :func:`time.perf_counter_ns`
  (never wall clock); a wall-clock epoch is recorded once per span only so
  exporters can align spans from different processes on a display axis;
- **thread safety** — the active-span stack is thread-local, so spans
  started on different threads nest independently; finished records are
  appended under a lock;
- **process safety** — worker processes trace into their own tracer and
  ship finished records back as plain dicts; :meth:`Tracer.ingest` remaps
  span ids and re-parents the worker roots deterministically, so a merged
  trace is identical run-to-run for a fixed chunking;
- **zero cost when disabled** — callers go through :func:`repro.obs.span`,
  which returns the module-level :data:`NOOP_SPAN` singleton without
  touching this module's machinery at all.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple


@dataclass
class SpanRecord:
    """One finished span."""

    span_id: int
    parent_id: Optional[int]
    name: str
    start_ns: int = 0  # perf_counter_ns at entry (process-local, monotonic)
    end_ns: int = 0  # perf_counter_ns at exit
    epoch_ns: int = 0  # time_ns at entry (wall; cross-process alignment only)
    attrs: Dict[str, object] = field(default_factory=dict)
    pid: int = 0
    thread: str = ""

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns

    def to_dict(self) -> Dict[str, object]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "epoch_ns": self.epoch_ns,
            "attrs": dict(self.attrs),
            "pid": self.pid,
            "thread": self.thread,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "SpanRecord":
        return cls(
            span_id=int(payload["span_id"]),
            parent_id=(
                None
                if payload.get("parent_id") is None
                else int(payload["parent_id"])  # type: ignore[arg-type]
            ),
            name=str(payload["name"]),
            start_ns=int(payload.get("start_ns", 0)),
            end_ns=int(payload.get("end_ns", 0)),
            epoch_ns=int(payload.get("epoch_ns", 0)),
            attrs=dict(payload.get("attrs", {})),  # type: ignore[arg-type]
            pid=int(payload.get("pid", 0)),
            thread=str(payload.get("thread", "")),
        )


class _NoOpSpan:
    """The do-nothing span handed out while tracing is disabled.

    A single shared instance; every method is a no-op returning ``self``,
    so instrumented code costs one flag check and one method call when
    observability is off.
    """

    __slots__ = ()

    def __enter__(self) -> "_NoOpSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set(self, **attrs: object) -> "_NoOpSpan":
        return self


#: Shared no-op singleton (see :func:`repro.obs.span`).
NOOP_SPAN = _NoOpSpan()


class Span:
    """A live span; use as a context manager."""

    __slots__ = ("_tracer", "record")

    def __init__(self, tracer: "Tracer", record: SpanRecord) -> None:
        self._tracer = tracer
        self.record = record

    def set(self, **attrs: object) -> "Span":
        """Attach/overwrite attributes on the span."""
        self.record.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        record = self.record
        stack = self._tracer._stack()
        record.parent_id = stack[-1][0] if stack else None
        stack.append((record.span_id, record.name))
        record.epoch_ns = time.time_ns()
        record.start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        record = self.record
        record.end_ns = time.perf_counter_ns()
        if exc_type is not None:
            record.attrs.setdefault("error", getattr(exc_type, "__name__", str(exc_type)))
        self._tracer._pop(record.span_id)
        self._tracer._finish(record)
        return False


class Tracer:
    """Collects finished :class:`SpanRecord` objects for one process."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: List[SpanRecord] = []
        # itertools.count.__next__ is atomic under the GIL — id allocation
        # on the span hot path needs no lock.
        self._ids = itertools.count(1)
        self._local = threading.local()
        #: Optional zero-arg callable returning the ambient correlation id
        #: (``repro.obs`` wires its correlation context here).  When set and
        #: returning a value, spans carry a ``correlation_id`` attribute —
        #: stored in ``attrs``, so it survives the worker drain/ingest
        #: re-sequencing like any other attribute.
        self.cid_provider: Optional[Callable[[], Optional[str]]] = None

    # -- the thread-local active-span stack -------------------------------
    # Entries are ``(span_id, name)`` tuples: the id drives parenting and
    # the ledger's trace_span linkage; the name lets the sampling profiler
    # label stacks without a lock or a record lookup from a signal handler.

    def _stack(self) -> List[Tuple[int, str]]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _thread_name(self) -> str:
        # Cached per thread: current_thread() is a dict lookup per call,
        # and the name cannot change out from under the running thread.
        name = getattr(self._local, "thread_name", None)
        if name is None:
            name = threading.current_thread().name
            self._local.thread_name = name
        return name

    def current_span_id(self) -> Optional[int]:
        stack = self._stack()
        return stack[-1][0] if stack else None

    def current_span_name(self) -> Optional[str]:
        stack = self._stack()
        return stack[-1][1] if stack else None

    def _push(self, span_id: int, name: str = "") -> None:
        self._stack().append((span_id, name))

    def _pop(self, span_id: int) -> None:
        stack = self._stack()
        # Tolerate exotic exits (generators suspended across spans): pop the
        # id wherever it is, rather than corrupting the stack.
        if stack and stack[-1][0] == span_id:
            stack.pop()
        else:
            for index in range(len(stack) - 1, -1, -1):
                if stack[index][0] == span_id:
                    del stack[index]
                    break

    # -- span lifecycle ---------------------------------------------------

    def span(self, name: str, attrs: Optional[Dict[str, object]] = None) -> Span:
        # The attrs dict is taken over, not copied: the facade builds it
        # fresh from keyword arguments on every call.
        if self.cid_provider is not None:
            cid = self.cid_provider()
            if cid is not None:
                if attrs is None:
                    attrs = {}
                attrs.setdefault("correlation_id", cid)
        record = SpanRecord(
            span_id=next(self._ids),
            parent_id=None,
            name=name,
            attrs=attrs if attrs is not None else {},
            pid=os.getpid(),
            thread=self._thread_name(),
        )
        return Span(self, record)

    def _finish(self, record: SpanRecord) -> None:
        # list.append is atomic under the GIL; the lock is only needed by
        # operations that swap or iterate the list (records/drain/clear).
        self._records.append(record)

    # -- access / merge ---------------------------------------------------

    def records(self) -> List[SpanRecord]:
        """A snapshot of the finished spans (finish order)."""
        with self._lock:
            return list(self._records)

    def drain(self) -> List[SpanRecord]:
        """Pop and return all finished spans (e.g. from a pool worker)."""
        with self._lock:
            records, self._records = self._records, []
            return records

    def clear(self) -> None:
        with self._lock:
            self._records = []

    def ingest(
        self,
        records: Sequence[SpanRecord],
        parent_id: Optional[int] = None,
    ) -> List[SpanRecord]:
        """Merge spans recorded elsewhere (a pool worker) into this tracer.

        Ids are remapped onto this tracer's id space (preserving the given
        order, so the merge is deterministic for a fixed chunk order) and
        parentless spans are re-parented under ``parent_id``.
        """
        with self._lock:
            mapping: Dict[int, int] = {}
            for record in records:
                mapping[record.span_id] = next(self._ids)
            merged: List[SpanRecord] = []
            for record in records:
                clone = SpanRecord(
                    span_id=mapping[record.span_id],
                    parent_id=(
                        mapping.get(record.parent_id, parent_id)
                        if record.parent_id is not None
                        else parent_id
                    ),
                    name=record.name,
                    start_ns=record.start_ns,
                    end_ns=record.end_ns,
                    epoch_ns=record.epoch_ns,
                    attrs=dict(record.attrs),
                    pid=record.pid,
                    thread=record.thread,
                )
                merged.append(clone)
                self._records.append(clone)
            return merged
