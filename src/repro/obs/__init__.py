"""``repro.obs`` — unified tracing + metrics for the whole toolchain.

One dependency-free layer gives every expensive subsystem — the MNA solver,
fault-injection campaigns, the mechanism optimiser, the DECISIVE loop — a
shared vocabulary of **spans** (hierarchical timed regions) and **metrics**
(counters / gauges / histograms), with exporters to JSONL, Prometheus text
and Chrome ``chrome://tracing`` JSON.  See ``docs/observability.md`` for
the span taxonomy and metric names.

Usage::

    from repro import obs

    obs.enable()
    with obs.span("campaign", system="System B") as sp:
        ...
        sp.set(jobs=230)
    obs.counter("campaign_jobs").inc(230)
    obs.export_jsonl("trace.jsonl")

Disabled (the default), :func:`span` returns a shared no-op singleton and
instrumented code costs a single module-flag check — the layer is designed
to stay in the hot paths permanently.

Pool workers trace into their own process-local state;
:func:`drain_worker_data` (worker side) and :func:`ingest_worker_data`
(parent side) move spans and metrics across the process boundary with
deterministic id remapping, so merged traces are reproducible.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.obs.export import (
    chrome_trace_events,
    export_chrome_trace as _export_chrome_trace,
    export_jsonl as _export_jsonl,
    export_prometheus as _export_prometheus,
    parse_prometheus_text,
    prometheus_text as _prometheus_text,
    read_jsonl,
    span_tree,
)
from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
)
from repro.obs.tracing import NOOP_SPAN, Span, SpanRecord, Tracer

__all__ = [
    "enable", "disable", "enabled", "reset",
    "span", "current_span_id", "tracer",
    "counter", "gauge", "histogram", "registry",
    "drain_worker_data", "ingest_worker_data",
    "export_jsonl", "export_prometheus", "export_chrome_trace",
    "prometheus_text", "parse_prometheus_text",
    "read_jsonl", "span_tree", "chrome_trace_events",
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "MetricError",
    "Span", "SpanRecord", "Tracer", "NOOP_SPAN", "DEFAULT_TIME_BUCKETS",
]

_ENABLED: bool = False
_TRACER = Tracer()
_REGISTRY = MetricsRegistry()


def enable() -> None:
    """Turn tracing + metrics collection on (module-wide)."""
    global _ENABLED
    _ENABLED = True


def disable() -> None:
    global _ENABLED
    _ENABLED = False


def enabled() -> bool:
    return _ENABLED


def reset() -> None:
    """Drop all collected spans and metrics (the enabled flag is kept)."""
    _TRACER.clear()
    _REGISTRY.reset()


# -- tracing ----------------------------------------------------------------


def span(name: str, **attrs: object):
    """Start a span (context manager).  No-op singleton when disabled."""
    if not _ENABLED:
        return NOOP_SPAN
    return _TRACER.span(name, attrs)


def current_span_id() -> Optional[int]:
    if not _ENABLED:
        return None
    return _TRACER.current_span_id()


def tracer() -> Tracer:
    return _TRACER


# -- metrics ----------------------------------------------------------------


def counter(name: str) -> Counter:
    return _REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    return _REGISTRY.gauge(name)


def histogram(name: str, buckets: Optional[Sequence[float]] = None) -> Histogram:
    return _REGISTRY.histogram(name, buckets)


def registry() -> MetricsRegistry:
    return _REGISTRY


# -- process-pool plumbing --------------------------------------------------


def drain_worker_data() -> Optional[Dict[str, object]]:
    """Worker side: pop this process's spans + metrics as a picklable blob.

    Returns ``None`` when observability is disabled, so the parent can skip
    the merge entirely.  Draining *clears* both stores: a long-lived worker
    (the warm campaign pool serves many chunks, possibly across campaigns)
    must hand each chunk's delta to the parent exactly once, never its
    cumulative history."""
    if not _ENABLED:
        return None
    snapshot = _REGISTRY.snapshot()
    _REGISTRY.reset()
    return {
        "spans": [record.to_dict() for record in _TRACER.drain()],
        "metrics": snapshot,
    }


def ingest_worker_data(
    payload: Optional[Mapping[str, object]],
    parent_id: Optional[int] = None,
) -> List[SpanRecord]:
    """Parent side: merge one worker blob under ``parent_id``."""
    if payload is None or not _ENABLED:
        return []
    records = [
        SpanRecord.from_dict(item)
        for item in payload.get("spans", ())  # type: ignore[union-attr]
    ]
    merged = _TRACER.ingest(records, parent_id=parent_id)
    metrics = payload.get("metrics")
    if metrics:
        _REGISTRY.merge(metrics)  # type: ignore[arg-type]
    return merged


# -- exporters (bound to the module-level tracer/registry) ------------------


def export_jsonl(path: Union[str, Path], include_metrics: bool = True) -> Path:
    return _export_jsonl(
        path, _TRACER, _REGISTRY if include_metrics else None
    )


def export_prometheus(path: Union[str, Path]) -> Path:
    return _export_prometheus(path, _REGISTRY)


def export_chrome_trace(path: Union[str, Path]) -> Path:
    return _export_chrome_trace(path, _TRACER)


def prometheus_text() -> str:
    return _prometheus_text(_REGISTRY)
