"""``repro.obs`` — unified tracing + metrics for the whole toolchain.

One dependency-free layer gives every expensive subsystem — the MNA solver,
fault-injection campaigns, the mechanism optimiser, the DECISIVE loop — a
shared vocabulary of **spans** (hierarchical timed regions) and **metrics**
(counters / gauges / histograms), with exporters to JSONL, Prometheus text
and Chrome ``chrome://tracing`` JSON.  See ``docs/observability.md`` for
the span taxonomy and metric names.

Usage::

    from repro import obs

    obs.enable()
    with obs.span("campaign", system="System B") as sp:
        ...
        sp.set(jobs=230)
    obs.counter("campaign_jobs").inc(230)
    obs.export_jsonl("trace.jsonl")

Disabled (the default), :func:`span` returns a shared no-op singleton and
instrumented code costs a single module-flag check — the layer is designed
to stay in the hot paths permanently.

Pool workers trace into their own process-local state;
:func:`drain_worker_data` (worker side) and :func:`ingest_worker_data`
(parent side) move spans and metrics across the process boundary with
deterministic id remapping, so merged traces are reproducible.

A second, independently-switched plane carries **live telemetry**: a typed
progress :class:`~repro.obs.events.EventBus` (:func:`enable_events` /
:func:`emit_event`), an HTTP server exposing ``/metrics`` ``/healthz``
``/events`` (:func:`serve_live`), and a sampling profiler
(``repro.obs.profile``).  Worker events ride the same
``drain_worker_data`` / ``ingest_worker_data`` delta path as spans.

A third plane carries **structured logs** (:func:`enable_logs` /
:func:`log`, ``repro.obs.logs``): leveled JSONL records for service
operators, again independently switched and worker-drained.

Cutting across all three planes is the **correlation context**: the
analysis service mints a ``correlation_id`` per job (the CLI per
invocation), installs it with :func:`correlation` /
:func:`set_correlation_id`, and every event, span attribute, log record
and ledger entry emitted underneath carries it — including from pool
workers, which receive the id through their initargs.  That is what makes
``/jobs/<id>/events`` per-job streams and per-job log artifacts possible
on a multi-tenant service.
"""

from __future__ import annotations

import threading
import uuid
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Union

from repro.obs.export import (
    chrome_trace_events,
    export_chrome_trace as _export_chrome_trace,
    export_jsonl as _export_jsonl,
    export_prometheus as _export_prometheus,
    parse_prometheus_text,
    prometheus_text as _prometheus_text,
    read_jsonl,
    span_tree,
)
from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
)
from repro.obs.events import ConsoleProgress, Event, EventBus
from repro.obs.logs import LogRecord, StructuredLog
from repro.obs.tracing import NOOP_SPAN, Span, SpanRecord, Tracer

__all__ = [
    "enable", "disable", "enabled", "reset",
    "enable_events", "disable_events", "events_enabled",
    "emit_event", "event_bus", "serve_live",
    "enable_logs", "disable_logs", "logs_enabled", "log", "log_plane",
    "mint_correlation_id", "set_correlation_id", "correlation_id",
    "correlation",
    "span", "current_span_id", "current_span_name", "tracer",
    "counter", "gauge", "histogram", "registry",
    "drain_worker_data", "ingest_worker_data",
    "export_jsonl", "export_prometheus", "export_chrome_trace",
    "prometheus_text", "parse_prometheus_text",
    "read_jsonl", "span_tree", "chrome_trace_events",
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "MetricError",
    "Span", "SpanRecord", "Tracer", "NOOP_SPAN", "DEFAULT_TIME_BUCKETS",
    "Event", "EventBus", "ConsoleProgress",
    "LogRecord", "StructuredLog",
]

_ENABLED: bool = False
_EVENTS_ENABLED: bool = False
_LOGS_ENABLED: bool = False
_TRACER = Tracer()
_REGISTRY = MetricsRegistry()
_BUS = EventBus()
_LOG = StructuredLog()

# -- correlation context ----------------------------------------------------
# Thread-local stack over a process-global default: the service's worker
# threads each run a different job concurrently (thread-local wins), while
# pool worker *processes* are single-job at a time and get the id installed
# once via initargs (the global default).

_CID_LOCAL = threading.local()
_CID_GLOBAL: Optional[str] = None


def mint_correlation_id() -> str:
    """A fresh 16-hex-char correlation id (collision-safe per service)."""
    return uuid.uuid4().hex[:16]


def set_correlation_id(cid: Optional[str]) -> None:
    """Install ``cid`` as the process-global default correlation id
    (``None`` clears it).  Pool workers call this from their initializer;
    the CLI calls it once per invocation."""
    global _CID_GLOBAL
    _CID_GLOBAL = None if cid is None else str(cid)


def correlation_id() -> Optional[str]:
    """The ambient correlation id: innermost :func:`correlation` scope on
    this thread, else the process-global default, else ``None``."""
    stack = getattr(_CID_LOCAL, "stack", None)
    if stack:
        return stack[-1]
    return _CID_GLOBAL


@contextmanager
def correlation(cid: Optional[str]) -> Iterator[Optional[str]]:
    """Scope ``cid`` as this thread's correlation id.  ``None`` is a
    no-op passthrough, so callers can thread an optional id untested."""
    if cid is None:
        yield None
        return
    stack = getattr(_CID_LOCAL, "stack", None)
    if stack is None:
        stack = []
        _CID_LOCAL.stack = stack
    stack.append(str(cid))
    try:
        yield str(cid)
    finally:
        stack.pop()

_TRACER.cid_provider = correlation_id


def enable() -> None:
    """Turn tracing + metrics collection on (module-wide)."""
    global _ENABLED
    _ENABLED = True


def disable() -> None:
    global _ENABLED
    _ENABLED = False


def enabled() -> bool:
    return _ENABLED


def reset() -> None:
    """Drop all collected spans, metrics, buffered events and log records
    (the enabled flags are kept; the correlation context is cleared)."""
    global _CID_GLOBAL
    _TRACER.clear()
    _REGISTRY.reset()
    _BUS.clear()
    _LOG.clear()
    _CID_GLOBAL = None


# -- the live-telemetry plane (events; independently switched) --------------


def enable_events() -> None:
    """Turn the progress event bus on (module-wide, independent of
    :func:`enable` — tracing without events and events without tracing are
    both valid configurations)."""
    global _EVENTS_ENABLED
    _EVENTS_ENABLED = True


def disable_events() -> None:
    global _EVENTS_ENABLED
    _EVENTS_ENABLED = False


def events_enabled() -> bool:
    return _EVENTS_ENABLED


def emit_event(type_: str, **payload: object):
    """Publish one typed progress event stamped with the ambient
    correlation id; ``None`` (one flag check) when the event bus is
    disabled — same hot-path discipline as :func:`span`."""
    if not _EVENTS_ENABLED:
        return None
    return _BUS.emit(type_, payload, cid=correlation_id())


def event_bus() -> EventBus:
    return _BUS


def serve_live(host: str = "127.0.0.1", port: int = 0):
    """Start the live telemetry HTTP server (``/metrics`` ``/healthz``
    ``/events``) on a daemon thread and return it.  Lazy import: the
    stdlib ``http.server`` machinery is only paid for when serving."""
    from repro.obs.live import LiveTelemetryServer

    return LiveTelemetryServer(host, port).start()


# -- the structured-log plane (independently switched) -----------------------


def enable_logs() -> None:
    """Turn the structured log plane on (module-wide, independent of
    :func:`enable` and :func:`enable_events`)."""
    global _LOGS_ENABLED
    _LOGS_ENABLED = True


def disable_logs() -> None:
    global _LOGS_ENABLED
    _LOGS_ENABLED = False


def logs_enabled() -> bool:
    return _LOGS_ENABLED


def log(level: str, message: str, **fields: object):
    """Append one structured log record stamped with the ambient
    correlation id; ``None`` (one flag check) when the plane is off."""
    if not _LOGS_ENABLED:
        return None
    return _LOG.log(level, message, cid=correlation_id(), **fields)


def log_plane() -> StructuredLog:
    return _LOG


# -- tracing ----------------------------------------------------------------


def span(name: str, **attrs: object):
    """Start a span (context manager).  No-op singleton when disabled."""
    if not _ENABLED:
        return NOOP_SPAN
    return _TRACER.span(name, attrs)


def current_span_id() -> Optional[int]:
    if not _ENABLED:
        return None
    return _TRACER.current_span_id()


def current_span_name() -> Optional[str]:
    """Name of the innermost active span on this thread (profiler hook)."""
    if not _ENABLED:
        return None
    return _TRACER.current_span_name()


def tracer() -> Tracer:
    return _TRACER


# -- metrics ----------------------------------------------------------------


def counter(name: str) -> Counter:
    return _REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    return _REGISTRY.gauge(name)


def histogram(name: str, buckets: Optional[Sequence[float]] = None) -> Histogram:
    return _REGISTRY.histogram(name, buckets)


def registry() -> MetricsRegistry:
    return _REGISTRY


# -- process-pool plumbing --------------------------------------------------


def drain_worker_data() -> Optional[Dict[str, object]]:
    """Worker side: pop this process's spans + metrics (+ events) as a
    picklable blob.

    Returns ``None`` when observability is entirely disabled, so the parent
    can skip the merge.  Draining *clears* the stores: a long-lived worker
    (the warm campaign pool serves many chunks, possibly across campaigns)
    must hand each chunk's delta to the parent exactly once, never its
    cumulative history."""
    if not _ENABLED and not _EVENTS_ENABLED and not _LOGS_ENABLED:
        return None
    payload: Dict[str, object] = {}
    if _ENABLED:
        snapshot = _REGISTRY.snapshot()
        _REGISTRY.reset()
        payload["spans"] = [record.to_dict() for record in _TRACER.drain()]
        payload["metrics"] = snapshot
    if _EVENTS_ENABLED:
        payload["events"] = _BUS.drain_dicts()
    if _LOGS_ENABLED:
        payload["logs"] = _LOG.drain_dicts()
    return payload


def ingest_worker_data(
    payload: Optional[Mapping[str, object]],
    parent_id: Optional[int] = None,
) -> List[SpanRecord]:
    """Parent side: merge one worker blob under ``parent_id``.

    Spans/metrics merge when tracing is enabled; drained worker events are
    re-sequenced onto the parent bus when the event plane is enabled — each
    plane honours its own flag, so a parent with only ``--progress`` does
    not silently accumulate trace state."""
    if payload is None:
        return []
    merged: List[SpanRecord] = []
    if _ENABLED:
        records = [
            SpanRecord.from_dict(item)
            for item in payload.get("spans", ())  # type: ignore[union-attr]
        ]
        merged = _TRACER.ingest(records, parent_id=parent_id)
        metrics = payload.get("metrics")
        if metrics:
            _REGISTRY.merge(metrics)  # type: ignore[arg-type]
    if _EVENTS_ENABLED:
        events = payload.get("events")
        if events:
            _BUS.ingest(events)  # type: ignore[arg-type]
    if _LOGS_ENABLED:
        records = payload.get("logs")
        if records:
            _LOG.ingest(records)  # type: ignore[arg-type]
    return merged


# -- exporters (bound to the module-level tracer/registry) ------------------


def export_jsonl(path: Union[str, Path], include_metrics: bool = True) -> Path:
    return _export_jsonl(
        path, _TRACER, _REGISTRY if include_metrics else None
    )


def export_prometheus(path: Union[str, Path]) -> Path:
    return _export_prometheus(path, _REGISTRY)


def export_chrome_trace(path: Union[str, Path]) -> Path:
    return _export_chrome_trace(path, _TRACER)


def prometheus_text() -> str:
    return _prometheus_text(_REGISTRY)
