"""Structured, leveled JSONL logs (the third ``repro.obs`` plane).

Spans time regions, events drive progress UIs, metrics aggregate — but
operating the analysis service also needs plain *narrative*: "job X
retried after TimeoutError", "warm pool discarded (fingerprint changed)",
"checkpoint flushed 128 outcomes".  :class:`StructuredLog` collects those
as small typed records that always carry the ambient ``correlation_id``
(see ``repro.obs.correlation``), the emitting pid, and free-form fields —
so one job's log lines can be pulled out of a multi-tenant service run
and attached to its ledger entry as an artifact.

The plane is independently switched (``obs.enable_logs``) and follows the
same discipline as the other planes:

- disabled (the default), producers pay one module-flag check in
  :func:`repro.obs.log` and never reach this module;
- records land in a bounded ring buffer (:data:`DEFAULT_BUFFER`) with an
  optional always-flushed JSONL sink for ``tail -f``;
- pool workers log into their own process-local :class:`StructuredLog`
  and the parent re-sequences drained records via :meth:`ingest` on the
  same per-chunk delta path as spans/metrics/events.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Union

__all__ = ["LogRecord", "StructuredLog", "LEVELS", "DEFAULT_BUFFER"]

#: Severity order (index = rank).  Unknown levels coerce to ``info``:
#: a typo'd level must never crash an instrumented hot path.
LEVELS = ("debug", "info", "warning", "error")

#: Ring depth — mirrors the event bus: ample for any test-sized run,
#: bounded so week-long service runs cannot grow without limit.
DEFAULT_BUFFER = 4096


def _coerce_level(level: str) -> str:
    level = str(level).lower()
    return level if level in LEVELS else "info"


@dataclass
class LogRecord:
    """One structured log line."""

    seq: int
    ts: float  # wall clock (time.time) at emit
    level: str  # one of LEVELS
    message: str
    pid: int
    cid: Optional[str] = None  # correlation id (None when uncorrelated)
    fields: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "seq": self.seq,
            "ts": self.ts,
            "level": self.level,
            "message": self.message,
            "pid": self.pid,
        }
        if self.cid is not None:
            out["correlation_id"] = self.cid
        if self.fields:
            out["fields"] = dict(self.fields)
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "LogRecord":
        cid = data.get("correlation_id", data.get("cid"))
        return cls(
            seq=int(data.get("seq", 0)),
            ts=float(data.get("ts", 0.0)),
            level=_coerce_level(str(data.get("level", "info"))),
            message=str(data.get("message", "")),
            pid=int(data.get("pid", 0)),
            cid=None if cid is None else str(cid),
            fields=dict(data.get("fields", {})),  # type: ignore[arg-type]
        )


class StructuredLog:
    """Thread-safe bounded collector of :class:`LogRecord` objects.

    One instance lives per process (module singleton in ``repro.obs``);
    pool workers drain theirs with :meth:`drain_dicts` and the parent
    re-sequences with :meth:`ingest`, preserving origin ts/pid/cid.
    """

    def __init__(self, buffer: int = DEFAULT_BUFFER) -> None:
        self._lock = threading.Lock()
        self._seq = 0
        self._buffer: "deque[LogRecord]" = deque(maxlen=buffer)
        self._sink = None
        self._sink_path: Optional[Path] = None

    # -- producing ---------------------------------------------------------

    def log(
        self,
        level: str,
        message: str,
        cid: Optional[str] = None,
        **fields: object,
    ) -> LogRecord:
        """Append one leveled record stamped with ``cid`` and this pid."""
        return self._append(
            time.time(), _coerce_level(level), str(message), os.getpid(), cid,
            dict(fields),
        )

    def _append(
        self,
        ts: float,
        level: str,
        message: str,
        pid: int,
        cid: Optional[str],
        fields: Dict[str, object],
    ) -> LogRecord:
        with self._lock:
            self._seq += 1
            record = LogRecord(
                seq=self._seq, ts=ts, level=level, message=message,
                pid=pid, cid=cid, fields=fields,
            )
            self._buffer.append(record)
            if self._sink is not None:
                try:
                    self._sink.write(
                        json.dumps(record.to_dict(), sort_keys=True) + "\n"
                    )
                    self._sink.flush()
                except (OSError, ValueError):
                    self._sink = None  # dead sink: stop writing, keep logging
        return record

    # -- consuming ---------------------------------------------------------

    def records(
        self,
        cid: Optional[str] = None,
        min_level: str = "debug",
        since: int = 0,
    ) -> List[LogRecord]:
        """Buffered records, optionally filtered to one correlation stream
        and/or at least ``min_level`` severity."""
        rank = LEVELS.index(_coerce_level(min_level))
        with self._lock:
            return [
                record
                for record in self._buffer
                if record.seq > since
                and (cid is None or record.cid == cid)
                and LEVELS.index(record.level) >= rank
            ]

    def last_seq(self) -> int:
        with self._lock:
            return self._seq

    # -- sinks / export ----------------------------------------------------

    def attach_jsonl(self, path: Union[str, Path]) -> Path:
        """Append every record (including the buffered backlog) to ``path``
        as JSON lines, flushed per record."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        handle = open(path, "a", encoding="utf-8")
        with self._lock:
            if self._sink is not None:
                try:
                    self._sink.close()
                except OSError:
                    pass
            for record in self._buffer:
                handle.write(json.dumps(record.to_dict(), sort_keys=True) + "\n")
            handle.flush()
            self._sink = handle
            self._sink_path = path
        return path

    def detach_jsonl(self) -> Optional[Path]:
        with self._lock:
            path, self._sink_path = self._sink_path, None
            sink, self._sink = self._sink, None
        if sink is not None:
            try:
                sink.close()
            except OSError:
                pass
        return path

    def write_jsonl(self, path: Union[str, Path], cid: Optional[str] = None) -> Path:
        """Write the buffered records (optionally one correlation stream)
        to ``path`` — the per-job ledger-artifact export."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        records = self.records(cid=cid)
        with open(path, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record.to_dict(), sort_keys=True) + "\n")
        return path

    # -- worker shipping ---------------------------------------------------

    def drain_dicts(self) -> List[Dict[str, object]]:
        """Worker side: pop buffered records as picklable dicts (clears the
        buffer — each chunk's delta ships exactly once)."""
        with self._lock:
            records = [record.to_dict() for record in self._buffer]
            self._buffer.clear()
        return records

    def ingest(self, records: Iterable[Mapping[str, object]]) -> List[LogRecord]:
        """Parent side: re-sequence drained worker records onto this log,
        preserving origin ts/pid/cid."""
        merged: List[LogRecord] = []
        for data in records:
            try:
                record = LogRecord.from_dict(data)
            except (KeyError, TypeError, ValueError):
                continue
            merged.append(
                self._append(
                    record.ts, record.level, record.message, record.pid,
                    record.cid, dict(record.fields),
                )
            )
        return merged

    # -- lifecycle ---------------------------------------------------------

    def clear(self) -> None:
        """Drop buffered records and the sequence counter (sink survives —
        this is the per-run reset, not a teardown)."""
        with self._lock:
            self._buffer.clear()
            self._seq = 0
