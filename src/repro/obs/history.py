"""The iteration observatory — diffing and watching the analysis ledger.

:mod:`repro.obs.ledger` records what every analysis run computed; this
module answers the questions reviewers actually ask of that history:

- :func:`diff_entries` — the full delta between any two ledger entries:
  input-provenance changes (model / reliability / config digests),
  row-level FME(D)A deltas (built on :mod:`repro.safety.compare`),
  SPFM / diagnostic-coverage movement, ASIL verdict flips, and new or
  resolved single-point faults;
- :func:`watch_regressions` — the CI-facing gate: given a baseline and a
  candidate entry, report SPFM drops, fresh single-point faults and
  wall-time regressions beyond a budget;
- :func:`render_history` — the ``repro history`` table;
- :func:`stale_entries` — which recorded evidence no longer matches the
  current model digest (the assurance layer builds its stale-evidence
  check on this).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from datetime import datetime, timezone
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.ledger import AnalysisLedger, LedgerEntry

_Key = Tuple[str, str]


def _result_from_entry(entry: LedgerEntry):
    """Rebuild a comparable FMEA/FMEDA result from an entry's row payload."""
    from repro.safety.compare import (
        rows_from_payload_fmea,
        rows_from_payload_fmeda,
    )
    from repro.safety.fmea import FmeaResult
    from repro.safety.fmeda import FmedaResult

    if entry.kind in ("fmeda", "optimizer"):
        result = FmedaResult(
            system=entry.system,
            rows=rows_from_payload_fmeda(entry.rows),
            spfm=entry.spfm if entry.spfm is not None else math.nan,
            asil=entry.asil or "?",
            total_cost=float(entry.metrics.get("total_cost", 0.0) or 0.0),
        )
        return result
    result = FmeaResult(system=entry.system, method="ledger")
    result.rows = rows_from_payload_fmea(entry.rows)
    return result


def _diagnostic_coverage(entry: LedgerEntry) -> Optional[float]:
    recorded = entry.metrics.get("diagnostic_coverage")
    if isinstance(recorded, (int, float)):
        return float(recorded)
    if entry.kind != "fmeda":
        return None
    try:
        return _result_from_entry(entry).diagnostic_coverage
    except (TypeError, ValueError):
        return None


def _wall_time(entry: LedgerEntry) -> Optional[float]:
    value = entry.metrics.get("wall_time")
    return float(value) if isinstance(value, (int, float)) else None


@dataclass
class LedgerDiff:
    """Everything that changed between two ledger entries."""

    before: LedgerEntry
    after: LedgerEntry
    model_changed: bool = False
    reliability_changed: bool = False
    config_changed: bool = False
    added_rows: List[_Key] = field(default_factory=list)
    removed_rows: List[_Key] = field(default_factory=list)
    changed_rows: List[object] = field(default_factory=list)  # RowDelta
    #: (component, failure mode) keys that became / stopped being
    #: single-point-fault contributors between the two entries.
    new_single_points: List[_Key] = field(default_factory=list)
    resolved_single_points: List[_Key] = field(default_factory=list)
    dc_before: Optional[float] = None
    dc_after: Optional[float] = None

    @property
    def identical(self) -> bool:
        """Byte-identical analyses (same content digest)."""
        return self.before.content_digest == self.after.content_digest

    @property
    def spfm_delta(self) -> Optional[float]:
        if self.before.spfm is None or self.after.spfm is None:
            return None
        return self.after.spfm - self.before.spfm

    @property
    def asil_flipped(self) -> bool:
        return (self.before.asil or "") != (self.after.asil or "")

    @property
    def dc_delta(self) -> Optional[float]:
        if self.dc_before is None or self.dc_after is None:
            return None
        return self.dc_after - self.dc_before

    @property
    def wall_delta_pct(self) -> Optional[float]:
        """Wall-time movement in percent of the baseline (None if either
        entry carries no timing — timings never affect ``identical``)."""
        before, after = _wall_time(self.before), _wall_time(self.after)
        if not before or after is None:
            return None
        return (after - before) / before * 100.0

    @property
    def unchanged(self) -> bool:
        """No analysis-content change (timings may still differ)."""
        return self.identical or (
            not self.model_changed
            and not self.reliability_changed
            and not self.config_changed
            and not self.added_rows
            and not self.removed_rows
            and not self.changed_rows
            and not self.asil_flipped
            and not (self.spfm_delta or 0.0)
        )

    def summary(self) -> str:
        a, b = self.before.entry_id, self.after.entry_id
        if self.unchanged:
            return f"no changes between {a} and {b}"
        lines = [f"diff {a} -> {b}"]
        if self.model_changed:
            lines.append(
                f"model   : {self.before.model_digest[:12] or '-'} -> "
                f"{self.after.model_digest[:12] or '-'}"
            )
        if self.reliability_changed:
            lines.append(
                f"reliability: {self.before.reliability_digest[:12] or '-'}"
                f" -> {self.after.reliability_digest[:12] or '-'}"
            )
        if self.config_changed:
            lines.append("config  : changed")
        if self.before.spfm is not None or self.after.spfm is not None:
            before = "-" if self.before.spfm is None else f"{self.before.spfm:.2%}"
            after = "-" if self.after.spfm is None else f"{self.after.spfm:.2%}"
            delta = (
                ""
                if self.spfm_delta is None
                else f" ({self.spfm_delta:+.2%})"
            )
            lines.append(f"SPFM    : {before} -> {after}{delta}")
        if self.asil_flipped:
            lines.append(
                f"ASIL    : {self.before.asil} -> {self.after.asil}  ** verdict flip **"
            )
        if self.dc_delta is not None and abs(self.dc_delta) > 1e-12:
            lines.append(
                f"DC      : {self.dc_before:.2%} -> {self.dc_after:.2%} "
                f"({self.dc_delta:+.2%})"
            )
        if self.added_rows:
            lines.append(f"rows +  : {self.added_rows}")
        if self.removed_rows:
            lines.append(f"rows -  : {self.removed_rows}")
        for delta in self.changed_rows:
            lines.append(
                f"changed {delta.component}/{delta.failure_mode}: "
                f"{'; '.join(delta.changes)}"
            )
        if self.new_single_points:
            lines.append(f"new single points     : {self.new_single_points}")
        if self.resolved_single_points:
            lines.append(
                f"resolved single points: {self.resolved_single_points}"
            )
        wall = self.wall_delta_pct
        if wall is not None:
            lines.append(f"wall    : {wall:+.1f}% vs baseline")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "before": self.before.entry_id,
            "after": self.after.entry_id,
            "identical": self.identical,
            "unchanged": self.unchanged,
            "model_changed": self.model_changed,
            "reliability_changed": self.reliability_changed,
            "config_changed": self.config_changed,
            "spfm_before": self.before.spfm,
            "spfm_after": self.after.spfm,
            "spfm_delta": self.spfm_delta,
            "asil_before": self.before.asil,
            "asil_after": self.after.asil,
            "asil_flipped": self.asil_flipped,
            "dc_before": self.dc_before,
            "dc_after": self.dc_after,
            "dc_delta": self.dc_delta,
            "added_rows": [list(key) for key in self.added_rows],
            "removed_rows": [list(key) for key in self.removed_rows],
            "changed_rows": [
                {
                    "component": delta.component,
                    "failure_mode": delta.failure_mode,
                    "changes": list(delta.changes),
                }
                for delta in self.changed_rows
            ],
            "new_single_points": [
                list(key) for key in self.new_single_points
            ],
            "resolved_single_points": [
                list(key) for key in self.resolved_single_points
            ],
            "wall_delta_pct": self.wall_delta_pct,
        }


def _single_points(entry: LedgerEntry) -> List[_Key]:
    """Keys contributing residual single-point risk in an entry."""
    keys: List[_Key] = []
    for row in entry.rows:
        if not row.get("safety_related"):
            continue
        if entry.kind == "fmeda":
            residual = row.get("residual_rate")
            if isinstance(residual, (int, float)) and residual <= 1e-12:
                continue  # fully covered by a mechanism
        keys.append((str(row.get("component")), str(row.get("failure_mode"))))
    return sorted(keys)


def diff_entries(before: LedgerEntry, after: LedgerEntry) -> LedgerDiff:
    """The full delta between two ledger entries.

    Entries of different kinds still diff (the row comparison degrades to
    key-level add/remove), but like-for-like diffs are the intended use.
    """
    from repro.safety.compare import compare_fmea, compare_fmeda

    diff = LedgerDiff(
        before=before,
        after=after,
        model_changed=before.model_digest != after.model_digest,
        reliability_changed=(
            before.reliability_digest != after.reliability_digest
        ),
        config_changed=before.config != after.config,
        dc_before=_diagnostic_coverage(before),
        dc_after=_diagnostic_coverage(after),
    )
    if before.kind == "fmeda" and after.kind == "fmeda":
        comparison = compare_fmeda(
            _result_from_entry(before), _result_from_entry(after)
        )
    else:
        comparison = compare_fmea(
            _result_from_entry(before), _result_from_entry(after)
        )
    diff.added_rows = list(comparison.added_rows)
    diff.removed_rows = list(comparison.removed_rows)
    diff.changed_rows = list(comparison.changed_rows)
    before_sp, after_sp = (
        set(_single_points(before)),
        set(_single_points(after)),
    )
    diff.new_single_points = sorted(after_sp - before_sp)
    diff.resolved_single_points = sorted(before_sp - after_sp)
    return diff


# -- regression watching ----------------------------------------------------


@dataclass
class Regression:
    """One detected regression between a baseline and a candidate entry."""

    kind: str  # 'spfm'|'single-point'|'wall-time'|'asil'|'strategy'|'slo'|'scaling'
    message: str


def _strategy_timings(entry: LedgerEntry) -> Dict[str, float]:
    """Per-strategy wall times recorded by the injection benchmark
    (``meta.timings`` — e.g. ``{"naive": ..., "parallel": ...}``)."""
    timings = entry.meta.get("timings")
    if not isinstance(timings, dict):
        return {}
    return {
        str(label): float(value)
        for label, value in timings.items()
        if isinstance(value, (int, float))
    }


def watch_regressions(
    diff: LedgerDiff,
    max_spfm_drop: float = 0.0,
    max_walltime_pct: Optional[float] = 25.0,
) -> List[Regression]:
    """Regressions in ``diff``, for the ``repro watch-regressions`` gate.

    Flags an SPFM drop beyond ``max_spfm_drop`` (absolute, default: any
    drop), a downgraded ASIL verdict, any new single-point fault, a
    wall-time regression beyond ``max_walltime_pct`` percent of the
    baseline (``None`` disables the timing gate), a strategy
    inversion — the candidate entry's recorded per-strategy timings
    (``meta.timings``, written by the injection benchmark) showing a
    batched strategy running slower than naive re-assembly — a
    latency-scaling bust: the candidate's recorded scaling probes
    (``meta.scaling``, written by the service benchmark as
    ``{name: {"ratio": ..., "budget": ...}}``) showing a ratio above its
    budget — and an SLO breach: the candidate was recorded by the
    analysis service while its error budget was burning (``meta.slo``,
    stamped at record time by
    :class:`~repro.service.jobs.AnalysisService`).
    """
    regressions: List[Regression] = []
    delta = diff.spfm_delta
    if delta is not None and delta < -abs(max_spfm_drop) - 1e-12:
        regressions.append(
            Regression(
                "spfm",
                f"SPFM dropped {delta:+.2%} "
                f"({diff.before.spfm:.2%} -> {diff.after.spfm:.2%})",
            )
        )
    if diff.asil_flipped and _asil_rank(diff.after.asil) < _asil_rank(
        diff.before.asil
    ):
        regressions.append(
            Regression(
                "asil",
                f"ASIL verdict downgraded {diff.before.asil} -> "
                f"{diff.after.asil}",
            )
        )
    for key in diff.new_single_points:
        regressions.append(
            Regression(
                "single-point",
                f"new single-point fault {key[0]}/{key[1]}",
            )
        )
    wall = diff.wall_delta_pct
    if (
        max_walltime_pct is not None
        and wall is not None
        and wall > max_walltime_pct
    ):
        regressions.append(
            Regression(
                "wall-time",
                f"wall time regressed {wall:+.1f}% "
                f"(budget {max_walltime_pct:g}%)",
            )
        )
    timings = _strategy_timings(diff.after)
    naive = timings.get("naive")
    if naive:
        for label in ("incremental", "parallel"):
            batched = timings.get(label)
            if batched is not None and batched > naive:
                regressions.append(
                    Regression(
                        "strategy",
                        f"{label} strategy slower than naive "
                        f"({batched:.3f}s vs {naive:.3f}s)",
                    )
                )
    scaling = diff.after.meta.get("scaling")
    if isinstance(scaling, dict):
        # Written by the service benchmark: per-probe latency-scaling
        # ratios with their budgets, e.g. cache-hit p99 at a 10k-entry
        # ledger over a 100-entry one. Ratio above budget means a lookup
        # path went super-constant again.
        for name in sorted(scaling):
            probe = scaling[name]
            if not isinstance(probe, dict):
                continue
            try:
                ratio = float(probe["ratio"])
                budget = float(probe["budget"])
            except (KeyError, TypeError, ValueError):
                continue
            if ratio > budget:
                regressions.append(
                    Regression(
                        "scaling",
                        f"{name} latency scaling {ratio:.2f}x exceeds "
                        f"budget {budget:g}x",
                    )
                )
    slo = diff.after.meta.get("slo")
    if isinstance(slo, dict) and slo.get("status") == "breached":
        breached = [str(name) for name in slo.get("breached", [])]
        regressions.append(
            Regression(
                "slo",
                "candidate recorded while service SLOs were breached"
                + (f" ({', '.join(breached)})" if breached else ""),
            )
        )
    return regressions


_ASIL_ORDER = ("QM", "ASIL-A", "ASIL-B", "ASIL-C", "ASIL-D")


def _asil_rank(asil: Optional[str]) -> int:
    try:
        return _ASIL_ORDER.index(asil or "QM")
    except ValueError:
        return -1


def baseline_for(
    ledger: AnalysisLedger, candidate: LedgerEntry
) -> Optional[LedgerEntry]:
    """The most recent earlier entry comparable to ``candidate`` (same
    kind and system) — the default baseline of ``watch-regressions``."""
    best: Optional[LedgerEntry] = None
    for entry in ledger.entries(kind=candidate.kind, system=candidate.system):
        if entry.seq < candidate.seq:
            best = entry
    return best


# -- presentation ------------------------------------------------------------


def _timestamp_text(entry: LedgerEntry) -> str:
    if not entry.timestamp:
        return "-"
    return datetime.fromtimestamp(
        entry.timestamp, tz=timezone.utc
    ).strftime("%Y-%m-%d %H:%M:%S")


def history_rows(entries: Sequence[LedgerEntry]) -> List[Dict[str, object]]:
    """History table rows (shared by the CLI and the workbook sheet)."""
    rows: List[Dict[str, object]] = []
    for entry in entries:
        wall = _wall_time(entry)
        rows.append(
            {
                "Seq": entry.seq,
                "Entry": entry.entry_id,
                "Kind": entry.kind,
                "System": entry.system,
                "SPFM": (
                    f"{entry.spfm:.2%}" if entry.spfm is not None else ""
                ),
                "ASIL": entry.asil or "",
                "Rows": len(entry.rows),
                "Wall_s": f"{wall:.3f}" if wall is not None else "",
                "Git": entry.git,
                "Timestamp_UTC": _timestamp_text(entry),
            }
        )
    return rows


def render_history(entries: Sequence[LedgerEntry]) -> str:
    """The ``repro history`` listing as an aligned text table."""
    if not entries:
        return "(ledger has no entries)"
    from repro.drivers.table import Sheet
    from repro.safety.report import render_text_table

    sheet = Sheet("History", history_rows(entries))
    return render_text_table(sheet)


# -- stale evidence ----------------------------------------------------------


def stale_entries(
    ledger: AnalysisLedger, current_model_digest: str
) -> List[LedgerEntry]:
    """Entries whose recorded model digest no longer matches the model.

    The assurance layer (:func:`repro.assurance.evaluation.
    check_evidence_freshness`) uses this to flag evidence artifacts whose
    generating analysis predates a design change.
    """
    return [
        entry
        for entry in ledger.entries()
        if entry.model_digest
        and current_model_digest
        and entry.model_digest != current_model_digest
    ]
