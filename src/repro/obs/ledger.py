"""The analysis ledger — append-only provenance for every safety analysis.

The paper's end state (§8) has FMEDA results serving as assurance-case
evidence with machine-executable queries *re-evaluated on change*.  That
requires knowing, for every analysis result, exactly which model and
configuration produced it, whether it is stale, and what changed between
iterations.  This module supplies the storage half of that story:

- :class:`LedgerEntry` — one provenance record: kind of analysis, content
  digests of the model and reliability data, the campaign fingerprint
  (reused from :func:`repro.safety.resilience.campaign_fingerprint`), the
  analysis configuration, per-row outcome digests, the SPFM/ASIL verdict, a
  snapshot of key execution metrics, the repo's ``git describe``, and a
  pointer into the trace file when ``--trace`` was on;
- :class:`AnalysisLedger` — an append-only JSONL store of entries, tolerant
  of corrupt lines (a crash mid-write must not poison history), with
  reference resolution (entry id, unique id prefix, ``@N`` sequence,
  negative indices) and artifact attachment records that link an entry to
  the workbook exported from it;
- :class:`LedgerIndex` — a persistent sidecar index (``<ledger>.idx``) of
  byte offsets keyed by entry id, ``meta.service_cache_key`` and
  ``(kind, system)``, appended incrementally on every write and validated
  against a (size, line-count, tail-digest) stamp on load — so lookups
  seek straight to the lines they need instead of re-parsing the whole
  history, and the cost of a cache hit stays O(1) as the ledger grows;
- ``record_fmea`` / ``record_fmeda`` / ``record_optimizer`` /
  ``record_iteration`` — builders that derive an entry from an analysis
  result plus its inputs.

Entries are deterministic modulo timestamps: the :attr:`~LedgerEntry.
content_digest` covers only what the analysis *computed* (digests, config,
verdicts, per-row outcomes), never when or how fast it ran, so re-running
the same model + config appends an entry with an identical digest and
``repro diff`` between the two reports no changes.

Every ``append`` emits a zero-duration ``ledger.record`` span carrying the
entry id (when observability is enabled), and the entry stores the id of
the span that was current at record time — a trace file and its ledger
entry are mutually resolvable.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import threading
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import (
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro import obs

#: Ledger line schema version.
_VERSION = 1

#: Float fields are digested after rounding to this many significant
#: decimals, so a verdict re-derived through a different (but numerically
#: equivalent) code path cannot flip the content digest on noise.
_DIGEST_DECIMALS = 9


class LedgerError(Exception):
    """Raised for unreadable ledgers or unresolvable entry references."""


def _canonical(value: object) -> object:
    """JSON-stable view of digest inputs (sorted keys, primitive types)."""
    if isinstance(value, Mapping):
        return {
            str(k): _canonical(v)
            for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))
        }
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, float):
        return round(value, _DIGEST_DECIMALS)
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    return repr(value)


def content_digest_of(payload: object) -> str:
    """SHA-256 over the canonical JSON form of ``payload``."""
    blob = json.dumps(
        _canonical(payload), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def model_digest(model: object) -> str:
    """Content hash of a design model, or ``""`` when not serialisable.

    Accepts anything with a ``to_dict`` method (:class:`SimulinkModel`,
    :class:`SSAMModel`) and falls back to the metamodel serializer for raw
    SSAM elements — the same notion of identity the DECISIVE loop uses for
    its FMEA cache.
    """
    if model is None:
        return ""
    payload = None
    to_dict = getattr(model, "to_dict", None)
    if callable(to_dict):
        try:
            payload = to_dict()
        except Exception:  # noqa: BLE001 — digesting must never abort a run
            payload = None
    if payload is None:
        try:
            from repro.metamodel import MetamodelError, ModelResource

            payload = ModelResource().to_dict(model)
        except Exception:  # noqa: BLE001
            return ""
    try:
        return content_digest_of(payload)
    except (TypeError, ValueError):
        return ""


def reliability_digest(reliability: object) -> str:
    """Content hash of a reliability model's entries, or ``""``."""
    if reliability is None:
        return ""
    try:
        payload = [
            {
                "class": entry.component_class,
                "fit": entry.fit,
                "modes": [
                    (m.name, m.distribution, m.nature)
                    for m in entry.failure_modes
                ],
            }
            for entry in sorted(
                reliability.entries(), key=lambda e: e.component_class
            )
        ]
    except Exception:  # noqa: BLE001
        return ""
    return content_digest_of(payload)


_GIT_DESCRIBE: Optional[str] = None


def git_describe() -> str:
    """``git describe --always --dirty`` of the working tree (cached)."""
    global _GIT_DESCRIBE
    if _GIT_DESCRIBE is None:
        try:
            out = subprocess.run(
                ["git", "describe", "--always", "--dirty"],
                capture_output=True,
                text=True,
                timeout=5,
            )
            _GIT_DESCRIBE = out.stdout.strip() if out.returncode == 0 else ""
        except (OSError, subprocess.SubprocessError):
            _GIT_DESCRIBE = ""
    return _GIT_DESCRIBE


# -- entries -----------------------------------------------------------------


@dataclass
class LedgerEntry:
    """One provenance record: what produced an analysis result, and what
    the result was.  ``metrics``, ``timestamp``, ``git``, ``trace`` and
    ``artifacts`` are execution circumstances and deliberately excluded
    from the content digest."""

    kind: str  # 'fmea' | 'fmeda' | 'optimizer' | 'decisive-iteration' | ...
    system: str
    spfm: Optional[float] = None
    asil: Optional[str] = None
    model_digest: str = ""
    reliability_digest: str = ""
    fingerprint: str = ""  # campaign fingerprint ('' for graph analyses)
    config: Dict[str, object] = field(default_factory=dict)
    rows: List[Dict[str, object]] = field(default_factory=list)
    row_digests: Dict[str, str] = field(default_factory=dict)
    metrics: Dict[str, object] = field(default_factory=dict)
    git: str = ""
    timestamp: float = 0.0
    trace: str = ""
    trace_span: Optional[int] = None
    artifacts: List[str] = field(default_factory=list)
    meta: Dict[str, object] = field(default_factory=dict)
    #: Position in the ledger file; assigned on append/read, not digested.
    seq: int = -1

    @property
    def content_digest(self) -> str:
        """Digest over everything the analysis *determined* (not timing)."""
        return content_digest_of(
            {
                "kind": self.kind,
                "system": self.system,
                "spfm": self.spfm,
                "asil": self.asil,
                "model": self.model_digest,
                "reliability": self.reliability_digest,
                "fingerprint": self.fingerprint,
                "config": self.config,
                "row_digests": self.row_digests,
            }
        )

    @property
    def entry_id(self) -> str:
        return f"{self.kind}-{self.content_digest[:12]}"

    def to_dict(self) -> Dict[str, object]:
        payload = asdict(self)
        payload.pop("seq")
        payload["v"] = _VERSION
        payload["type"] = "entry"
        payload["id"] = self.entry_id
        payload["digest"] = self.content_digest
        return payload

    @classmethod
    def from_dict(cls, data: Mapping[str, object], seq: int = -1) -> "LedgerEntry":
        fields = {
            key: data[key]
            for key in (
                "kind", "system", "spfm", "asil", "model_digest",
                "reliability_digest", "fingerprint", "config", "rows",
                "row_digests", "metrics", "git", "timestamp", "trace",
                "trace_span", "artifacts", "meta",
            )
            if key in data
        }
        entry = cls(**fields)  # type: ignore[arg-type]
        entry.seq = seq
        return entry


def _row_digests(rows: Sequence[Mapping[str, object]]) -> Dict[str, str]:
    """``component/failure_mode`` -> short digest of the row's outcome."""
    digests: Dict[str, str] = {}
    for row in rows:
        key = f"{row.get('component')}/{row.get('failure_mode')}"
        digests[key] = content_digest_of(row)[:12]
    return digests


def fmea_rows_payload(result) -> List[Dict[str, object]]:
    """Compact, diffable row records for an :class:`FmeaResult`."""
    return [
        {
            "component": row.component,
            "component_class": row.component_class,
            "failure_mode": row.failure_mode,
            "fit": row.fit,
            "distribution": row.distribution,
            "safety_related": row.safety_related,
            "impact": row.impact,
            "effect": row.effect,
            "warning": row.warning,
        }
        for row in result.rows
    ]


def fmeda_rows_payload(result) -> List[Dict[str, object]]:
    """Compact, diffable row records for an :class:`FmedaResult`."""
    return [
        {
            "component": row.component,
            "failure_mode": row.failure_mode,
            "fit": row.fit,
            "distribution": row.distribution,
            "safety_related": row.safety_related,
            "safety_mechanism": row.safety_mechanism,
            "sm_coverage": row.sm_coverage,
            "residual_rate": row.residual_rate,
        }
        for row in result.rows
    ]


def _stats_metrics(result) -> Dict[str, object]:
    """Key execution-metric snapshot off ``result.stats`` (may be empty)."""
    stats = getattr(result, "stats", None)
    if stats is None:
        return {}
    out: Dict[str, object] = {}
    for name in (
        "wall_time", "baseline_time", "jobs", "rows", "solves", "workers",
        "retries", "timeouts", "job_failures", "resumed_jobs",
        "solver_backend", "direct_solves", "batched_columns", "pool_reused",
    ):
        value = getattr(stats, name, None)
        if value is not None:
            out[name] = value
    return out


# -- the sidecar index -------------------------------------------------------


#: Short digest of a ledger line's raw bytes, stamped on its index record.
def _line_digest(raw: bytes) -> str:
    return hashlib.sha256(raw).hexdigest()[:12]


class LedgerIndex:
    """Persistent byte-offset index over a ledger file (``<ledger>.idx``).

    The sidecar holds one compact JSONL record per ledger line, carrying
    the line's byte offset and length plus the keys lookups need — entry
    id, content digest, kind, system and ``meta.service_cache_key`` — so
    ``entries(kind=...)``, ``latest()``, ``resolve()``, cache-key lookups
    and artifact folding seek straight to the lines that matter instead
    of re-parsing the whole history.  Artifact records are resolved to
    their target entry *at index time* (the latest entry with that id so
    far, exactly the fold rule the scan applies), so folding costs no
    file reads at all.

    Every record doubles as a stamp: it stores the ledger size after its
    line (``z``) and a digest of the line's bytes (``d``); the line count
    is the record count.  On load the last record's stamp is checked
    against the ledger file — size shrunk or tail bytes changed means the
    ledger was rewritten and the index **rebuilds** from scratch; size
    grown means another process appended and the index **extends**
    incrementally, parsing only the new tail.  A corrupt or truncated
    sidecar also rebuilds.  The ledger file itself is never trusted less
    than before: the scan path remains intact as a differential fallback.

    Record keys (kept one or two characters to bound sidecar growth):
    ``o`` offset, ``n`` length, ``t`` line type (``e`` entry / ``a``
    artifact / ``x`` junk), ``z``/``d``/``u`` the stamp (size after,
    line digest, unterminated-tail flag), and for entries ``id``, ``g``
    (content digest), ``k`` (kind), ``s`` (system), ``c`` (service cache
    key), ``q`` (entry sequence number); for artifacts ``tq`` (resolved
    target entry sequence), ``p`` (path), ``ak`` (artifact kind).
    """

    def __init__(self, ledger_path: Union[str, Path]) -> None:
        self.ledger_path = Path(ledger_path)
        self.sidecar = Path(str(ledger_path) + ".idx")
        self.loaded = False
        #: Sidecar size as of our last write/load; -1 = unknown.  Appends
        #: land only when the file is where we left it — another writer
        #: moving it triggers an atomic full rewrite instead, so two
        #: ledger handles over one file never interleave duplicates.
        self._sidecar_bytes = -1
        self._clear()

    # -- in-memory state ---------------------------------------------------

    def _clear(self) -> None:
        #: One record per ledger line, in file order.
        self.records: List[Dict[str, object]] = []
        #: Entry records only; position == entry sequence number.
        self.entries: List[Dict[str, object]] = []
        self.by_id: Dict[str, List[int]] = {}
        self.by_cache_key: Dict[str, List[int]] = {}
        self.by_kind: Dict[str, List[int]] = {}
        self.by_system: Dict[str, List[int]] = {}
        self.by_kind_system: Dict[Tuple[str, str], List[int]] = {}
        #: entry seq -> artifact paths folded into it, in file order.
        self.artifacts_by_seq: Dict[int, List[str]] = {}
        #: Ledger bytes covered by the index.
        self.size = 0
        #: The last indexed line had no trailing newline (interrupted
        #: write): its length may still grow, so any ledger growth forces
        #: a rebuild instead of an extend.
        self.tail_open = False

    def _register(self, record: Dict[str, object]) -> None:
        self.records.append(record)
        kind = record["t"]
        if kind == "e":
            seq = int(record["q"])  # type: ignore[arg-type]
            self.entries.append(record)
            self.by_id.setdefault(str(record["id"]), []).append(seq)
            cache_key = record.get("c")
            if cache_key:
                self.by_cache_key.setdefault(str(cache_key), []).append(seq)
            self.by_kind.setdefault(str(record["k"]), []).append(seq)
            self.by_system.setdefault(str(record["s"]), []).append(seq)
            self.by_kind_system.setdefault(
                (str(record["k"]), str(record["s"])), []
            ).append(seq)
        elif kind == "a":
            self.artifacts_by_seq.setdefault(
                int(record["tq"]), []  # type: ignore[arg-type]
            ).append(str(record["p"]))

    # -- classification ----------------------------------------------------

    def _index_line(
        self,
        raw: bytes,
        offset: int,
        payload: Optional[Mapping[str, object]] = None,
    ) -> Dict[str, object]:
        """The index record for one raw ledger line.

        Classification mirrors the scan exactly: an entry line must parse,
        be ``type == "entry"`` with a ``kind``, and round-trip through
        :meth:`LedgerEntry.from_dict`; an artifact line must name a known
        entry and a path — anything else is junk (``x``) and only its
        offsets are kept.  The content digest is *recomputed* from the
        payload (never trusted from the line) so indexed ``resolve()``
        matches the scan even on hand-written lines.
        """
        record: Dict[str, object] = {
            "o": offset,
            "n": len(raw),
            "t": "x",
            "z": offset + len(raw),
            "d": _line_digest(raw),
        }
        if not raw.endswith(b"\n"):
            record["u"] = 1
        if payload is None:
            try:
                decoded = json.loads(raw.decode("utf-8").strip() or "null")
            except (ValueError, UnicodeDecodeError):
                decoded = None
            payload = decoded if isinstance(decoded, dict) else None
        if payload is None:
            return record
        if payload.get("type") == "entry" and "kind" in payload:
            try:
                entry = LedgerEntry.from_dict(payload)
            except (TypeError, ValueError, KeyError):
                return record
            record.update(
                t="e",
                id=entry.entry_id,
                g=entry.content_digest,
                k=entry.kind,
                s=entry.system,
                q=len(self.entries),
            )
            meta = payload.get("meta")
            cache_key = (
                meta.get("service_cache_key")
                if isinstance(meta, Mapping)
                else None
            )
            if isinstance(cache_key, str) and cache_key:
                record["c"] = cache_key
        elif payload.get("type") == "artifact" and payload.get("path"):
            targets = self.by_id.get(str(payload.get("entry")), [])
            if targets:
                record.update(t="a", tq=targets[-1], p=str(payload["path"]))
                if payload.get("kind"):
                    record["ak"] = str(payload["kind"])
        return record

    # -- persistence -------------------------------------------------------

    def _ledger_size(self) -> int:
        try:
            return self.ledger_path.stat().st_size
        except OSError:
            return 0

    def _persist_append(self, records: Sequence[Mapping[str, object]]) -> None:
        if not records:
            return
        blob = b"".join(
            json.dumps(record, sort_keys=True).encode("utf-8") + b"\n"
            for record in records
        )
        try:
            actual = self.sidecar.stat().st_size
        except OSError:
            actual = 0 if not self.sidecar.exists() else -2
        if actual != self._sidecar_bytes:
            # Another handle wrote the sidecar since we last did; our
            # in-memory state (which already includes ``records``) is the
            # freshest view — replace the file wholesale, atomically.
            self._rewrite_sidecar()
            return
        with open(self.sidecar, "ab") as handle:
            handle.write(blob)
        self._sidecar_bytes += len(blob)

    def _rewrite_sidecar(self) -> None:
        tmp = self.sidecar.with_name(self.sidecar.name + ".tmp")
        blob = b"".join(
            json.dumps(record, sort_keys=True).encode("utf-8") + b"\n"
            for record in self.records
        )
        with open(tmp, "wb") as handle:
            handle.write(blob)
        os.replace(tmp, self.sidecar)
        self._sidecar_bytes = len(blob)

    def _load_sidecar(self) -> bool:
        """Adopt the on-disk sidecar if its stamp matches the ledger."""
        self._clear()
        if not self.sidecar.exists():
            return self._ledger_size() == 0
        try:
            data = self.sidecar.read_bytes()
            text = data.decode("utf-8")
        except (OSError, UnicodeDecodeError):
            return False
        records: List[Dict[str, object]] = []
        for line in text.splitlines():
            try:
                record = json.loads(line)
            except ValueError:
                return False
            if (
                not isinstance(record, dict)
                or not all(key in record for key in ("o", "n", "t", "z", "d"))
            ):
                return False
            records.append(record)
        size = self._ledger_size()
        if not records:
            return size == 0
        last = records[-1]
        end = int(last["z"])  # type: ignore[arg-type]
        if end > size:
            return False  # ledger truncated or rewritten shorter
        try:
            with open(self.ledger_path, "rb") as handle:
                handle.seek(int(last["o"]))  # type: ignore[arg-type]
                raw = handle.read(int(last["n"]))  # type: ignore[arg-type]
        except OSError:
            return False
        if _line_digest(raw) != last["d"]:
            return False  # tail rewritten in place
        for record in records:
            if record["t"] == "e" and record.get("q") != len(self.entries):
                self._clear()
                return False  # sequence numbering corrupted
            self._register(record)
        self.size = end
        self.tail_open = bool(last.get("u"))
        self._sidecar_bytes = len(data)
        if size > end:
            if self.tail_open:
                self._clear()
                return False  # the open tail line may have grown: reparse
            self._extend()
        return True

    def _parse_region(self, start: int) -> List[Dict[str, object]]:
        """Index every ledger line from byte ``start`` to EOF."""
        records: List[Dict[str, object]] = []
        with open(self.ledger_path, "rb") as handle:
            handle.seek(start)
            offset = start
            for raw in iter(handle.readline, b""):
                record = self._index_line(raw, offset)
                self._register(record)
                records.append(record)
                offset += len(raw)
        self.size = offset if records else start
        self.tail_open = bool(records and records[-1].get("u"))
        return records

    def _extend(self) -> None:
        """Catch up with lines another writer appended past our stamp.

        The last indexed line is re-digested first: growth caused by a
        rewrite rather than an append fails the stamp and rebuilds."""
        if self.records:
            last = self.records[-1]
            with open(self.ledger_path, "rb") as handle:
                handle.seek(int(last["o"]))  # type: ignore[arg-type]
                raw = handle.read(int(last["n"]))  # type: ignore[arg-type]
            if _line_digest(raw) != last["d"]:
                self._rebuild()
                return
        added = self._parse_region(self.size)
        self._persist_append(added)
        obs.counter("ledger_index_extensions").inc()

    def _rebuild(self) -> None:
        """Re-derive the whole index from the ledger file."""
        self._clear()
        if self.ledger_path.exists():
            self._parse_region(0)
        self._rewrite_sidecar()
        obs.counter("ledger_index_rebuilds").inc()

    # -- the sync protocol -------------------------------------------------

    def sync(self) -> "LedgerIndex":
        """Make the in-memory index current; the caller holds the lock.

        First use loads the sidecar (or rebuilds it); afterwards a single
        ``stat`` validates per call — same size means nothing to do, grown
        means an incremental extend, shrunk (or growth past an
        unterminated tail line) means a rebuild.
        """
        if not self.loaded:
            self.loaded = True
            if not self._load_sidecar():
                self._rebuild()
            return self
        size = self._ledger_size()
        if size == self.size:
            return self
        if size < self.size or self.tail_open:
            self._rebuild()
        else:
            self._extend()
        return self

    def note_line(
        self, raw: bytes, offset: int, payload: Mapping[str, object]
    ) -> None:
        """Index one line this process just appended (no re-parse)."""
        record = self._index_line(raw, offset, payload=payload)
        self._register(record)
        self._persist_append([record])
        self.size = offset + len(raw)
        self.tail_open = False

    def status(self) -> Dict[str, object]:
        return {
            "sidecar": str(self.sidecar),
            "lines": len(self.records),
            "entries": len(self.entries),
            "artifacts": sum(
                len(paths) for paths in self.artifacts_by_seq.values()
            ),
            "cache_keys": len(self.by_cache_key),
            "bytes_covered": self.size,
            "tail_open": self.tail_open,
        }


# -- the ledger --------------------------------------------------------------


class AnalysisLedger:
    """Append-only JSONL store of :class:`LedgerEntry` records.

    Two line types share the file: ``{"type": "entry", ...}`` (a full
    provenance record) and ``{"type": "artifact", "entry": <id>, "path":
    ...}`` (appended when a workbook is exported from an already-recorded
    result — the append-only discipline means entries are never rewritten).
    Loading tolerates corrupt or truncated lines.

    Reads go through the :class:`LedgerIndex` sidecar by default, making
    ``latest()``, ``resolve()``, ``latest_by_cache_key()`` and filtered
    ``entries()`` O(1) in history size (one dict lookup + one line seek)
    instead of a full-file parse.  ``use_index=False`` keeps the original
    scan semantics — the differential reference the index is tested
    against — and any index failure (unwritable sidecar, races with an
    external rewrite mid-read) transparently falls back to the scan.
    All mutation and index access is serialised by an internal lock, so
    concurrent appends and lookups from service worker threads are safe.
    """

    def __init__(self, path: Union[str, Path], use_index: bool = True) -> None:
        self.path = Path(path)
        self._use_index = bool(use_index)
        self._index: Optional[LedgerIndex] = None
        self._lock = threading.RLock()

    # -- index plumbing ----------------------------------------------------

    def _indexed(self) -> Optional["LedgerIndex"]:
        """The synced index, or ``None`` when disabled or broken.

        A failure to build or persist the index permanently disables it
        for this ledger object (counted by ``ledger_index_fallbacks``) —
        the scan path serves every later read, never an exception.
        """
        if not self._use_index:
            return None
        try:
            if self._index is None:
                self._index = LedgerIndex(self.path)
            return self._index.sync()
        except (OSError, ValueError, KeyError, TypeError):
            obs.counter("ledger_index_fallbacks").inc()
            self._index = None
            self._use_index = False
            return None

    def _materialize(
        self, index: "LedgerIndex", seq: int, handle=None
    ) -> LedgerEntry:
        """Parse the single ledger line behind entry ``seq`` and fold its
        index-resolved artifacts in."""
        record = index.entries[seq]
        if handle is None:
            with open(self.path, "rb") as own:
                own.seek(int(record["o"]))  # type: ignore[arg-type]
                raw = own.read(int(record["n"]))  # type: ignore[arg-type]
        else:
            handle.seek(int(record["o"]))  # type: ignore[arg-type]
            raw = handle.read(int(record["n"]))  # type: ignore[arg-type]
        entry = LedgerEntry.from_dict(
            json.loads(raw.decode("utf-8")), seq=seq
        )
        for path in index.artifacts_by_seq.get(seq, ()):
            if path not in entry.artifacts:
                entry.artifacts.append(path)
        obs.counter("ledger_index_seeks").inc()
        return entry

    def _entry_seqs(
        self,
        index: "LedgerIndex",
        kind: Optional[str],
        system: Optional[str],
    ) -> Sequence[int]:
        if kind is not None and system is not None:
            return index.by_kind_system.get((kind, system), [])
        if kind is not None:
            return index.by_kind.get(kind, [])
        if system is not None:
            return index.by_system.get(system, [])
        return range(len(index.entries))

    def index_status(self) -> Dict[str, object]:
        """Sidecar-index health for ``same ledger-index``."""
        with self._lock:
            index = self._indexed()
            if index is None:
                return {"enabled": False, "path": str(self.path)}
            status = index.status()
        status.update(enabled=True, path=str(self.path))
        return status

    def rebuild_index(self) -> Dict[str, object]:
        """Force a from-scratch rebuild of the sidecar index."""
        with self._lock:
            if not self._use_index:
                return {"enabled": False, "path": str(self.path)}
            if self._index is None:
                self._index = LedgerIndex(self.path)
            try:
                self._index._rebuild()
                self._index.loaded = True
            except OSError as exc:
                raise LedgerError(
                    f"cannot rebuild ledger index for {self.path}: {exc}"
                ) from exc
        return self.index_status()

    # -- writing ----------------------------------------------------------

    def append(self, entry: LedgerEntry) -> LedgerEntry:
        """Record one entry (stamping time + git) and return it.

        With observability enabled a zero-duration ``ledger.record`` span
        carrying the entry id is emitted under the current span, and the
        entry remembers that parent span id — a trace file and the ledger
        are mutually resolvable.
        """
        if not entry.timestamp:
            entry.timestamp = time.time()
        if not entry.git:
            entry.git = git_describe()
        if entry.trace_span is None:
            entry.trace_span = obs.current_span_id()
        # Provenance, like trace_span/timestamp: which run produced this
        # entry.  Lives in meta, which the content digest excludes, so
        # identical analyses still dedupe/diff as identical.
        cid = obs.correlation_id()
        if cid is not None:
            entry.meta.setdefault("correlation_id", cid)
        with self._lock:
            entry.seq = self._next_seq()
            with obs.span(
                "ledger.record", entry=entry.entry_id, kind=entry.kind
            ):
                self._append_line(entry.to_dict())
        return entry

    def attach_artifact(
        self,
        entry: Union[LedgerEntry, str],
        path: Union[str, Path],
        kind: Optional[str] = None,
    ) -> None:
        """Link an exported artifact (e.g. a workbook, an event log or a
        profile) to an entry; ``kind`` tags what the artifact is."""
        entry_id = entry.entry_id if isinstance(entry, LedgerEntry) else entry
        record = {
            "v": _VERSION,
            "type": "artifact",
            "entry": entry_id,
            "path": str(path),
        }
        if kind:
            record["kind"] = kind
        with self._lock:
            self._append_line(record)
        if isinstance(entry, LedgerEntry):
            entry.artifacts.append(str(path))

    def _append_line(self, payload: Mapping[str, object]) -> None:
        """Write one line and index it; the caller holds the lock.

        The index is synced *before* the write (catching any external
        append so offsets stay truthful) and told about the new line
        afterwards, so an append costs one stat + two small writes — no
        re-scan.  When the file ends in an interrupted, unterminated line
        a newline is healed in first, keeping line boundaries exactly
        where the index recorded them.  Index persistence failures
        degrade to scan mode; they never lose the ledger line itself.
        """
        index = self._indexed()
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            raw = (
                json.dumps(payload, sort_keys=True) + "\n"
            ).encode("utf-8")
            with open(self.path, "ab") as handle:
                if index is not None and index.tail_open:
                    handle.write(b"\n")
                offset = handle.tell()
                handle.write(raw)
        except OSError as exc:
            raise LedgerError(
                f"cannot write analysis ledger {self.path}: {exc}"
            ) from exc
        if index is not None:
            try:
                index.note_line(raw, offset, payload)
            except (OSError, ValueError, KeyError, TypeError):
                obs.counter("ledger_index_fallbacks").inc()
                self._index = None
                self._use_index = False

    def _next_seq(self) -> int:
        with self._lock:
            index = self._indexed()
            if index is not None:
                return len(index.entries)
        return sum(1 for _ in self._raw_entries())

    # -- reading ----------------------------------------------------------

    def _raw_lines(self) -> Iterator[Mapping[str, object]]:
        if not self.path.exists():
            return
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except (ValueError, TypeError):
                    continue  # truncated/corrupt line: skip, don't abort
                if isinstance(record, dict):
                    yield record

    def _raw_entries(self) -> Iterator[Mapping[str, object]]:
        for record in self._raw_lines():
            if record.get("type") == "entry" and "kind" in record:
                yield record

    def entries(
        self,
        kind: Optional[str] = None,
        system: Optional[str] = None,
    ) -> List[LedgerEntry]:
        """Entries in file order, artifact records folded in.

        With the index, a filtered query parses only the matching lines
        (seq numbers stay global, as the scan assigns them); without it,
        the original full scan runs.
        """
        with self._lock:
            index = self._indexed()
            if index is not None:
                try:
                    seqs = list(self._entry_seqs(index, kind, system))
                    if not seqs:
                        return []
                    with open(self.path, "rb") as handle:
                        return [
                            self._materialize(index, seq, handle)
                            for seq in seqs
                        ]
                except (OSError, ValueError, KeyError, TypeError):
                    obs.counter("ledger_index_fallbacks").inc()
        return self._entries_scan(kind, system)

    def _entries_scan(
        self,
        kind: Optional[str] = None,
        system: Optional[str] = None,
    ) -> List[LedgerEntry]:
        """The index-free reference read: parse every line, fold, filter."""
        entries: List[LedgerEntry] = []
        by_id: Dict[str, List[LedgerEntry]] = {}
        for record in self._raw_lines():
            if record.get("type") == "entry" and "kind" in record:
                try:
                    entry = LedgerEntry.from_dict(record, seq=len(entries))
                except (TypeError, ValueError, KeyError):
                    continue
                entries.append(entry)
                by_id.setdefault(entry.entry_id, []).append(entry)
            elif record.get("type") == "artifact":
                # Attach to the *latest* entry with that id so far.
                targets = by_id.get(str(record.get("entry")), [])
                if targets and record.get("path"):
                    path = str(record["path"])
                    if path not in targets[-1].artifacts:
                        targets[-1].artifacts.append(path)
        return [
            entry
            for entry in entries
            if (kind is None or entry.kind == kind)
            and (system is None or entry.system == system)
        ]

    def latest(
        self,
        kind: Optional[str] = None,
        system: Optional[str] = None,
    ) -> Optional[LedgerEntry]:
        """The most recent matching entry — one index lookup + one seek."""
        with self._lock:
            index = self._indexed()
            if index is not None:
                try:
                    seqs = self._entry_seqs(index, kind, system)
                    if not seqs:
                        return None
                    return self._materialize(index, seqs[-1])
                except (OSError, ValueError, KeyError, TypeError):
                    obs.counter("ledger_index_fallbacks").inc()
        matching = self._entries_scan(kind=kind, system=system)
        return matching[-1] if matching else None

    def latest_by_cache_key(self, cache_key: str) -> Optional[LedgerEntry]:
        """The newest entry whose ``meta.service_cache_key`` matches.

        The analysis service's cache hit: a dict lookup plus one line
        seek, O(1) in ledger size.  Without the index this degrades to
        the reverse scan the service originally performed.
        """
        if not cache_key:
            return None
        with self._lock:
            index = self._indexed()
            if index is not None:
                try:
                    seqs = index.by_cache_key.get(cache_key, [])
                    if not seqs:
                        return None
                    return self._materialize(index, seqs[-1])
                except (OSError, ValueError, KeyError, TypeError):
                    obs.counter("ledger_index_fallbacks").inc()
        for entry in reversed(self._entries_scan()):
            if entry.meta.get("service_cache_key") == cache_key:
                return entry
        return None

    def resolve(self, ref: str) -> LedgerEntry:
        """Resolve an entry reference.

        Accepted forms: ``@N`` / plain integer (file-order sequence,
        negatives count from the end), ``latest``/``HEAD``, a full entry
        id, or a unique id/digest prefix.  When several entries share an
        identical id (byte-identical re-runs) the latest wins.  With the
        index, id and digest matching runs over the in-memory key maps
        and only the winning entry's line is parsed.
        """
        with self._lock:
            index = self._indexed()
            if index is not None:
                try:
                    return self._resolve_indexed(index, ref)
                except LedgerError:
                    raise
                except (OSError, ValueError, KeyError, TypeError):
                    obs.counter("ledger_index_fallbacks").inc()
        return self._resolve_scan(ref)

    @staticmethod
    def _parse_ref(ref: str) -> Tuple[str, Optional[int]]:
        text = ref.strip()
        index_text = text[1:] if text.startswith("@") else text
        try:
            return text, int(index_text)
        except ValueError:
            return text, None

    def _resolve_indexed(self, index: "LedgerIndex", ref: str) -> LedgerEntry:
        count = len(index.entries)
        if not count:
            raise LedgerError(f"ledger {self.path} has no entries")
        text, position = self._parse_ref(ref)
        if position is not None:
            seq = position if position >= 0 else count + position
            if not 0 <= seq < count:
                raise LedgerError(
                    f"entry index {position} out of range "
                    f"(ledger has {count} entries)"
                )
            return self._materialize(index, seq)
        if text.lower() in ("latest", "head"):
            return self._materialize(index, count - 1)
        matches = [
            record
            for record in index.entries
            if record["id"] == text
            or str(record["id"]).startswith(text)
            or str(record["g"]).startswith(text)
        ]
        if not matches:
            raise LedgerError(f"no ledger entry matches {ref!r}")
        distinct = {str(record["id"]) for record in matches}
        if len(distinct) > 1:
            raise LedgerError(
                f"ambiguous reference {ref!r}: matches {sorted(distinct)}"
            )
        return self._materialize(index, int(matches[-1]["q"]))  # type: ignore[arg-type]

    def _resolve_scan(self, ref: str) -> LedgerEntry:
        entries = self._entries_scan()
        if not entries:
            raise LedgerError(f"ledger {self.path} has no entries")
        text, index = self._parse_ref(ref)
        if index is not None:
            try:
                return entries[index]
            except IndexError:
                raise LedgerError(
                    f"entry index {index} out of range "
                    f"(ledger has {len(entries)} entries)"
                ) from None
        if text.lower() in ("latest", "head"):
            return entries[-1]
        matches = [
            entry
            for entry in entries
            if entry.entry_id == text
            or entry.entry_id.startswith(text)
            or entry.content_digest.startswith(text)
        ]
        if not matches:
            raise LedgerError(f"no ledger entry matches {ref!r}")
        distinct = {entry.entry_id for entry in matches}
        if len(distinct) > 1:
            raise LedgerError(
                f"ambiguous reference {ref!r}: matches {sorted(distinct)}"
            )
        return matches[-1]


# -- recorders ---------------------------------------------------------------


def _campaign_fingerprint_for(
    model, reliability, config: Mapping[str, object]
) -> str:
    """The campaign fingerprint of an injection analysis, or ``""``.

    Imported lazily: the ledger must stay importable without dragging the
    whole safety package in (and vice versa).
    """
    try:
        from repro.safety.resilience import campaign_fingerprint

        return campaign_fingerprint(
            model,
            reliability,
            str(config.get("analysis", "dc")),
            float(config.get("t_stop", 5e-3)),  # type: ignore[arg-type]
            float(config.get("dt", 5e-5)),  # type: ignore[arg-type]
            config.get("behavior_overrides"),  # type: ignore[arg-type]
        )
    except Exception:  # noqa: BLE001 — provenance must not abort analyses
        return ""


def record_fmea(
    ledger: AnalysisLedger,
    result,
    model=None,
    reliability=None,
    spfm: Optional[float] = None,
    asil: Optional[str] = None,
    config: Optional[Mapping[str, object]] = None,
    trace: str = "",
    meta: Optional[Mapping[str, object]] = None,
) -> LedgerEntry:
    """Record an FMEA run (injection or graph) as a ledger entry."""
    config = dict(config or {})
    rows = fmea_rows_payload(result)
    fingerprint = ""
    if getattr(result, "method", "") == "injection" and model is not None:
        fingerprint = _campaign_fingerprint_for(model, reliability, config)
    entry = LedgerEntry(
        kind="fmea",
        system=result.system,
        spfm=spfm,
        asil=asil,
        model_digest=model_digest(model),
        reliability_digest=reliability_digest(reliability),
        fingerprint=fingerprint,
        config=config,
        rows=rows,
        row_digests=_row_digests(rows),
        metrics=_stats_metrics(result),
        trace=trace,
        meta=dict(meta or {"method": getattr(result, "method", "")}),
    )
    return ledger.append(entry)


def record_fmeda(
    ledger: AnalysisLedger,
    result,
    model=None,
    reliability=None,
    config: Optional[Mapping[str, object]] = None,
    trace: str = "",
    meta: Optional[Mapping[str, object]] = None,
) -> LedgerEntry:
    """Record an FMEDA (rows + SPFM/ASIL verdict) as a ledger entry."""
    config = dict(config or {})
    config.setdefault(
        "deployments",
        [
            {
                "component": d.component,
                "failure_mode": d.failure_mode,
                "mechanism": d.mechanism,
                "coverage": d.coverage,
                "cost": d.cost,
            }
            for d in result.deployments
        ],
    )
    rows = fmeda_rows_payload(result)
    entry = LedgerEntry(
        kind="fmeda",
        system=result.system,
        spfm=result.spfm,
        asil=result.asil,
        model_digest=model_digest(model),
        reliability_digest=reliability_digest(reliability),
        config=config,
        rows=rows,
        row_digests=_row_digests(rows),
        metrics={
            "total_cost": result.total_cost,
            "diagnostic_coverage": getattr(
                result, "diagnostic_coverage", None
            ),
        },
        trace=trace,
        meta=dict(meta or {}),
    )
    return ledger.append(entry)


def record_optimizer(
    ledger: AnalysisLedger,
    plan,
    system: str,
    model=None,
    reliability=None,
    config: Optional[Mapping[str, object]] = None,
    meta: Optional[Mapping[str, object]] = None,
) -> LedgerEntry:
    """Record a mechanism-search outcome (a :class:`DeploymentPlan`)."""
    rows = [
        {
            "component": d.component,
            "failure_mode": d.failure_mode,
            "mechanism": d.mechanism,
            "coverage": d.coverage,
            "cost": d.cost,
        }
        for d in plan.deployments
    ]
    entry = LedgerEntry(
        kind="optimizer",
        system=system,
        spfm=plan.spfm,
        asil=plan.asil,
        model_digest=model_digest(model),
        reliability_digest=reliability_digest(reliability),
        config=dict(config or {}),
        rows=rows,
        row_digests=_row_digests(rows),
        metrics={"cost": plan.cost, "deployments": len(plan.deployments)},
        meta=dict(meta or {}),
    )
    return ledger.append(entry)


def record_iteration(
    ledger: AnalysisLedger,
    fmea,
    index: int,
    spfm: float,
    asil: str,
    deployments: Sequence[object] = (),
    model_digest_value: str = "",
    reliability=None,
    config: Optional[Mapping[str, object]] = None,
    meta: Optional[Mapping[str, object]] = None,
) -> LedgerEntry:
    """Record one DECISIVE Step 4 iteration as a ledger entry."""
    config = dict(config or {})
    config["iteration"] = index
    config["deployments"] = [
        {
            "component": d.component,
            "failure_mode": d.failure_mode,
            "mechanism": d.mechanism,
            "coverage": d.coverage,
            "cost": d.cost,
        }
        for d in deployments
    ]
    rows = fmea_rows_payload(fmea)
    entry = LedgerEntry(
        kind="decisive-iteration",
        system=fmea.system,
        spfm=spfm,
        asil=asil,
        model_digest=model_digest_value,
        reliability_digest=reliability_digest(reliability),
        config=config,
        rows=rows,
        row_digests=_row_digests(rows),
        metrics=_stats_metrics(fmea),
        meta=dict(meta or {}),
    )
    return ledger.append(entry)
