"""The analysis ledger — append-only provenance for every safety analysis.

The paper's end state (§8) has FMEDA results serving as assurance-case
evidence with machine-executable queries *re-evaluated on change*.  That
requires knowing, for every analysis result, exactly which model and
configuration produced it, whether it is stale, and what changed between
iterations.  This module supplies the storage half of that story:

- :class:`LedgerEntry` — one provenance record: kind of analysis, content
  digests of the model and reliability data, the campaign fingerprint
  (reused from :func:`repro.safety.resilience.campaign_fingerprint`), the
  analysis configuration, per-row outcome digests, the SPFM/ASIL verdict, a
  snapshot of key execution metrics, the repo's ``git describe``, and a
  pointer into the trace file when ``--trace`` was on;
- :class:`AnalysisLedger` — an append-only JSONL store of entries, tolerant
  of corrupt lines (a crash mid-write must not poison history), with
  reference resolution (entry id, unique id prefix, ``@N`` sequence,
  negative indices) and artifact attachment records that link an entry to
  the workbook exported from it;
- ``record_fmea`` / ``record_fmeda`` / ``record_optimizer`` /
  ``record_iteration`` — builders that derive an entry from an analysis
  result plus its inputs.

Entries are deterministic modulo timestamps: the :attr:`~LedgerEntry.
content_digest` covers only what the analysis *computed* (digests, config,
verdicts, per-row outcomes), never when or how fast it ran, so re-running
the same model + config appends an entry with an identical digest and
``repro diff`` between the two reports no changes.

Every ``append`` emits a zero-duration ``ledger.record`` span carrying the
entry id (when observability is enabled), and the entry stores the id of
the span that was current at record time — a trace file and its ledger
entry are mutually resolvable.
"""

from __future__ import annotations

import hashlib
import json
import subprocess
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Union

from repro import obs

#: Ledger line schema version.
_VERSION = 1

#: Float fields are digested after rounding to this many significant
#: decimals, so a verdict re-derived through a different (but numerically
#: equivalent) code path cannot flip the content digest on noise.
_DIGEST_DECIMALS = 9


class LedgerError(Exception):
    """Raised for unreadable ledgers or unresolvable entry references."""


def _canonical(value: object) -> object:
    """JSON-stable view of digest inputs (sorted keys, primitive types)."""
    if isinstance(value, Mapping):
        return {
            str(k): _canonical(v)
            for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))
        }
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, float):
        return round(value, _DIGEST_DECIMALS)
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    return repr(value)


def content_digest_of(payload: object) -> str:
    """SHA-256 over the canonical JSON form of ``payload``."""
    blob = json.dumps(
        _canonical(payload), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def model_digest(model: object) -> str:
    """Content hash of a design model, or ``""`` when not serialisable.

    Accepts anything with a ``to_dict`` method (:class:`SimulinkModel`,
    :class:`SSAMModel`) and falls back to the metamodel serializer for raw
    SSAM elements — the same notion of identity the DECISIVE loop uses for
    its FMEA cache.
    """
    if model is None:
        return ""
    payload = None
    to_dict = getattr(model, "to_dict", None)
    if callable(to_dict):
        try:
            payload = to_dict()
        except Exception:  # noqa: BLE001 — digesting must never abort a run
            payload = None
    if payload is None:
        try:
            from repro.metamodel import MetamodelError, ModelResource

            payload = ModelResource().to_dict(model)
        except Exception:  # noqa: BLE001
            return ""
    try:
        return content_digest_of(payload)
    except (TypeError, ValueError):
        return ""


def reliability_digest(reliability: object) -> str:
    """Content hash of a reliability model's entries, or ``""``."""
    if reliability is None:
        return ""
    try:
        payload = [
            {
                "class": entry.component_class,
                "fit": entry.fit,
                "modes": [
                    (m.name, m.distribution, m.nature)
                    for m in entry.failure_modes
                ],
            }
            for entry in sorted(
                reliability.entries(), key=lambda e: e.component_class
            )
        ]
    except Exception:  # noqa: BLE001
        return ""
    return content_digest_of(payload)


_GIT_DESCRIBE: Optional[str] = None


def git_describe() -> str:
    """``git describe --always --dirty`` of the working tree (cached)."""
    global _GIT_DESCRIBE
    if _GIT_DESCRIBE is None:
        try:
            out = subprocess.run(
                ["git", "describe", "--always", "--dirty"],
                capture_output=True,
                text=True,
                timeout=5,
            )
            _GIT_DESCRIBE = out.stdout.strip() if out.returncode == 0 else ""
        except (OSError, subprocess.SubprocessError):
            _GIT_DESCRIBE = ""
    return _GIT_DESCRIBE


# -- entries -----------------------------------------------------------------


@dataclass
class LedgerEntry:
    """One provenance record: what produced an analysis result, and what
    the result was.  ``metrics``, ``timestamp``, ``git``, ``trace`` and
    ``artifacts`` are execution circumstances and deliberately excluded
    from the content digest."""

    kind: str  # 'fmea' | 'fmeda' | 'optimizer' | 'decisive-iteration' | ...
    system: str
    spfm: Optional[float] = None
    asil: Optional[str] = None
    model_digest: str = ""
    reliability_digest: str = ""
    fingerprint: str = ""  # campaign fingerprint ('' for graph analyses)
    config: Dict[str, object] = field(default_factory=dict)
    rows: List[Dict[str, object]] = field(default_factory=list)
    row_digests: Dict[str, str] = field(default_factory=dict)
    metrics: Dict[str, object] = field(default_factory=dict)
    git: str = ""
    timestamp: float = 0.0
    trace: str = ""
    trace_span: Optional[int] = None
    artifacts: List[str] = field(default_factory=list)
    meta: Dict[str, object] = field(default_factory=dict)
    #: Position in the ledger file; assigned on append/read, not digested.
    seq: int = -1

    @property
    def content_digest(self) -> str:
        """Digest over everything the analysis *determined* (not timing)."""
        return content_digest_of(
            {
                "kind": self.kind,
                "system": self.system,
                "spfm": self.spfm,
                "asil": self.asil,
                "model": self.model_digest,
                "reliability": self.reliability_digest,
                "fingerprint": self.fingerprint,
                "config": self.config,
                "row_digests": self.row_digests,
            }
        )

    @property
    def entry_id(self) -> str:
        return f"{self.kind}-{self.content_digest[:12]}"

    def to_dict(self) -> Dict[str, object]:
        payload = asdict(self)
        payload.pop("seq")
        payload["v"] = _VERSION
        payload["type"] = "entry"
        payload["id"] = self.entry_id
        payload["digest"] = self.content_digest
        return payload

    @classmethod
    def from_dict(cls, data: Mapping[str, object], seq: int = -1) -> "LedgerEntry":
        fields = {
            key: data[key]
            for key in (
                "kind", "system", "spfm", "asil", "model_digest",
                "reliability_digest", "fingerprint", "config", "rows",
                "row_digests", "metrics", "git", "timestamp", "trace",
                "trace_span", "artifacts", "meta",
            )
            if key in data
        }
        entry = cls(**fields)  # type: ignore[arg-type]
        entry.seq = seq
        return entry


def _row_digests(rows: Sequence[Mapping[str, object]]) -> Dict[str, str]:
    """``component/failure_mode`` -> short digest of the row's outcome."""
    digests: Dict[str, str] = {}
    for row in rows:
        key = f"{row.get('component')}/{row.get('failure_mode')}"
        digests[key] = content_digest_of(row)[:12]
    return digests


def fmea_rows_payload(result) -> List[Dict[str, object]]:
    """Compact, diffable row records for an :class:`FmeaResult`."""
    return [
        {
            "component": row.component,
            "component_class": row.component_class,
            "failure_mode": row.failure_mode,
            "fit": row.fit,
            "distribution": row.distribution,
            "safety_related": row.safety_related,
            "impact": row.impact,
            "effect": row.effect,
            "warning": row.warning,
        }
        for row in result.rows
    ]


def fmeda_rows_payload(result) -> List[Dict[str, object]]:
    """Compact, diffable row records for an :class:`FmedaResult`."""
    return [
        {
            "component": row.component,
            "failure_mode": row.failure_mode,
            "fit": row.fit,
            "distribution": row.distribution,
            "safety_related": row.safety_related,
            "safety_mechanism": row.safety_mechanism,
            "sm_coverage": row.sm_coverage,
            "residual_rate": row.residual_rate,
        }
        for row in result.rows
    ]


def _stats_metrics(result) -> Dict[str, object]:
    """Key execution-metric snapshot off ``result.stats`` (may be empty)."""
    stats = getattr(result, "stats", None)
    if stats is None:
        return {}
    out: Dict[str, object] = {}
    for name in (
        "wall_time", "baseline_time", "jobs", "rows", "solves", "workers",
        "retries", "timeouts", "job_failures", "resumed_jobs",
        "solver_backend", "direct_solves", "batched_columns", "pool_reused",
    ):
        value = getattr(stats, name, None)
        if value is not None:
            out[name] = value
    return out


# -- the ledger --------------------------------------------------------------


class AnalysisLedger:
    """Append-only JSONL store of :class:`LedgerEntry` records.

    Two line types share the file: ``{"type": "entry", ...}`` (a full
    provenance record) and ``{"type": "artifact", "entry": <id>, "path":
    ...}`` (appended when a workbook is exported from an already-recorded
    result — the append-only discipline means entries are never rewritten).
    Loading tolerates corrupt or truncated lines.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)

    # -- writing ----------------------------------------------------------

    def append(self, entry: LedgerEntry) -> LedgerEntry:
        """Record one entry (stamping time + git) and return it.

        With observability enabled a zero-duration ``ledger.record`` span
        carrying the entry id is emitted under the current span, and the
        entry remembers that parent span id — a trace file and the ledger
        are mutually resolvable.
        """
        if not entry.timestamp:
            entry.timestamp = time.time()
        if not entry.git:
            entry.git = git_describe()
        if entry.trace_span is None:
            entry.trace_span = obs.current_span_id()
        # Provenance, like trace_span/timestamp: which run produced this
        # entry.  Lives in meta, which the content digest excludes, so
        # identical analyses still dedupe/diff as identical.
        cid = obs.correlation_id()
        if cid is not None:
            entry.meta.setdefault("correlation_id", cid)
        entry.seq = self._next_seq()
        with obs.span(
            "ledger.record", entry=entry.entry_id, kind=entry.kind
        ):
            self._append_line(entry.to_dict())
        return entry

    def attach_artifact(
        self,
        entry: Union[LedgerEntry, str],
        path: Union[str, Path],
        kind: Optional[str] = None,
    ) -> None:
        """Link an exported artifact (e.g. a workbook, an event log or a
        profile) to an entry; ``kind`` tags what the artifact is."""
        entry_id = entry.entry_id if isinstance(entry, LedgerEntry) else entry
        record = {
            "v": _VERSION,
            "type": "artifact",
            "entry": entry_id,
            "path": str(path),
        }
        if kind:
            record["kind"] = kind
        self._append_line(record)
        if isinstance(entry, LedgerEntry):
            entry.artifacts.append(str(path))

    def _append_line(self, payload: Mapping[str, object]) -> None:
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(json.dumps(payload, sort_keys=True) + "\n")
        except OSError as exc:
            raise LedgerError(
                f"cannot write analysis ledger {self.path}: {exc}"
            ) from exc

    def _next_seq(self) -> int:
        return sum(1 for _ in self._raw_entries())

    # -- reading ----------------------------------------------------------

    def _raw_lines(self) -> Iterator[Mapping[str, object]]:
        if not self.path.exists():
            return
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except (ValueError, TypeError):
                    continue  # truncated/corrupt line: skip, don't abort
                if isinstance(record, dict):
                    yield record

    def _raw_entries(self) -> Iterator[Mapping[str, object]]:
        for record in self._raw_lines():
            if record.get("type") == "entry" and "kind" in record:
                yield record

    def entries(
        self,
        kind: Optional[str] = None,
        system: Optional[str] = None,
    ) -> List[LedgerEntry]:
        """All entries in file order, artifact records folded in."""
        entries: List[LedgerEntry] = []
        by_id: Dict[str, List[LedgerEntry]] = {}
        for record in self._raw_lines():
            if record.get("type") == "entry" and "kind" in record:
                try:
                    entry = LedgerEntry.from_dict(record, seq=len(entries))
                except (TypeError, ValueError, KeyError):
                    continue
                entries.append(entry)
                by_id.setdefault(entry.entry_id, []).append(entry)
            elif record.get("type") == "artifact":
                # Attach to the *latest* entry with that id so far.
                targets = by_id.get(str(record.get("entry")), [])
                if targets and record.get("path"):
                    path = str(record["path"])
                    if path not in targets[-1].artifacts:
                        targets[-1].artifacts.append(path)
        return [
            entry
            for entry in entries
            if (kind is None or entry.kind == kind)
            and (system is None or entry.system == system)
        ]

    def latest(
        self,
        kind: Optional[str] = None,
        system: Optional[str] = None,
    ) -> Optional[LedgerEntry]:
        matching = self.entries(kind=kind, system=system)
        return matching[-1] if matching else None

    def resolve(self, ref: str) -> LedgerEntry:
        """Resolve an entry reference.

        Accepted forms: ``@N`` / plain integer (file-order sequence,
        negatives count from the end), ``latest``/``HEAD``, a full entry
        id, or a unique id/digest prefix.  When several entries share an
        identical id (byte-identical re-runs) the latest wins.
        """
        entries = self.entries()
        if not entries:
            raise LedgerError(f"ledger {self.path} has no entries")
        text = ref.strip()
        index_text = text[1:] if text.startswith("@") else text
        try:
            index = int(index_text)
        except ValueError:
            index = None
        if index is not None:
            try:
                return entries[index]
            except IndexError:
                raise LedgerError(
                    f"entry index {index} out of range "
                    f"(ledger has {len(entries)} entries)"
                ) from None
        if text.lower() in ("latest", "head"):
            return entries[-1]
        matches = [
            entry
            for entry in entries
            if entry.entry_id == text
            or entry.entry_id.startswith(text)
            or entry.content_digest.startswith(text)
        ]
        if not matches:
            raise LedgerError(f"no ledger entry matches {ref!r}")
        distinct = {entry.entry_id for entry in matches}
        if len(distinct) > 1:
            raise LedgerError(
                f"ambiguous reference {ref!r}: matches {sorted(distinct)}"
            )
        return matches[-1]


# -- recorders ---------------------------------------------------------------


def _campaign_fingerprint_for(
    model, reliability, config: Mapping[str, object]
) -> str:
    """The campaign fingerprint of an injection analysis, or ``""``.

    Imported lazily: the ledger must stay importable without dragging the
    whole safety package in (and vice versa).
    """
    try:
        from repro.safety.resilience import campaign_fingerprint

        return campaign_fingerprint(
            model,
            reliability,
            str(config.get("analysis", "dc")),
            float(config.get("t_stop", 5e-3)),  # type: ignore[arg-type]
            float(config.get("dt", 5e-5)),  # type: ignore[arg-type]
            config.get("behavior_overrides"),  # type: ignore[arg-type]
        )
    except Exception:  # noqa: BLE001 — provenance must not abort analyses
        return ""


def record_fmea(
    ledger: AnalysisLedger,
    result,
    model=None,
    reliability=None,
    spfm: Optional[float] = None,
    asil: Optional[str] = None,
    config: Optional[Mapping[str, object]] = None,
    trace: str = "",
    meta: Optional[Mapping[str, object]] = None,
) -> LedgerEntry:
    """Record an FMEA run (injection or graph) as a ledger entry."""
    config = dict(config or {})
    rows = fmea_rows_payload(result)
    fingerprint = ""
    if getattr(result, "method", "") == "injection" and model is not None:
        fingerprint = _campaign_fingerprint_for(model, reliability, config)
    entry = LedgerEntry(
        kind="fmea",
        system=result.system,
        spfm=spfm,
        asil=asil,
        model_digest=model_digest(model),
        reliability_digest=reliability_digest(reliability),
        fingerprint=fingerprint,
        config=config,
        rows=rows,
        row_digests=_row_digests(rows),
        metrics=_stats_metrics(result),
        trace=trace,
        meta=dict(meta or {"method": getattr(result, "method", "")}),
    )
    return ledger.append(entry)


def record_fmeda(
    ledger: AnalysisLedger,
    result,
    model=None,
    reliability=None,
    config: Optional[Mapping[str, object]] = None,
    trace: str = "",
    meta: Optional[Mapping[str, object]] = None,
) -> LedgerEntry:
    """Record an FMEDA (rows + SPFM/ASIL verdict) as a ledger entry."""
    config = dict(config or {})
    config.setdefault(
        "deployments",
        [
            {
                "component": d.component,
                "failure_mode": d.failure_mode,
                "mechanism": d.mechanism,
                "coverage": d.coverage,
                "cost": d.cost,
            }
            for d in result.deployments
        ],
    )
    rows = fmeda_rows_payload(result)
    entry = LedgerEntry(
        kind="fmeda",
        system=result.system,
        spfm=result.spfm,
        asil=result.asil,
        model_digest=model_digest(model),
        reliability_digest=reliability_digest(reliability),
        config=config,
        rows=rows,
        row_digests=_row_digests(rows),
        metrics={
            "total_cost": result.total_cost,
            "diagnostic_coverage": getattr(
                result, "diagnostic_coverage", None
            ),
        },
        trace=trace,
        meta=dict(meta or {}),
    )
    return ledger.append(entry)


def record_optimizer(
    ledger: AnalysisLedger,
    plan,
    system: str,
    model=None,
    reliability=None,
    config: Optional[Mapping[str, object]] = None,
    meta: Optional[Mapping[str, object]] = None,
) -> LedgerEntry:
    """Record a mechanism-search outcome (a :class:`DeploymentPlan`)."""
    rows = [
        {
            "component": d.component,
            "failure_mode": d.failure_mode,
            "mechanism": d.mechanism,
            "coverage": d.coverage,
            "cost": d.cost,
        }
        for d in plan.deployments
    ]
    entry = LedgerEntry(
        kind="optimizer",
        system=system,
        spfm=plan.spfm,
        asil=plan.asil,
        model_digest=model_digest(model),
        reliability_digest=reliability_digest(reliability),
        config=dict(config or {}),
        rows=rows,
        row_digests=_row_digests(rows),
        metrics={"cost": plan.cost, "deployments": len(plan.deployments)},
        meta=dict(meta or {}),
    )
    return ledger.append(entry)


def record_iteration(
    ledger: AnalysisLedger,
    fmea,
    index: int,
    spfm: float,
    asil: str,
    deployments: Sequence[object] = (),
    model_digest_value: str = "",
    reliability=None,
    config: Optional[Mapping[str, object]] = None,
    meta: Optional[Mapping[str, object]] = None,
) -> LedgerEntry:
    """Record one DECISIVE Step 4 iteration as a ledger entry."""
    config = dict(config or {})
    config["iteration"] = index
    config["deployments"] = [
        {
            "component": d.component,
            "failure_mode": d.failure_mode,
            "mechanism": d.mechanism,
            "coverage": d.coverage,
            "cost": d.cost,
        }
        for d in deployments
    ]
    rows = fmea_rows_payload(fmea)
    entry = LedgerEntry(
        kind="decisive-iteration",
        system=fmea.system,
        spfm=spfm,
        asil=asil,
        model_digest=model_digest_value,
        reliability_digest=reliability_digest(reliability),
        config=config,
        rows=rows,
        row_digests=_row_digests(rows),
        metrics=_stats_metrics(fmea),
        meta=dict(meta or {}),
    )
    return ledger.append(entry)
