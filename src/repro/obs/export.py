"""Exporters for the observability layer.

Three formats, matched to three consumers:

- **JSONL event log** (:func:`export_jsonl` / :func:`read_jsonl`) — one
  JSON object per line (``{"type": "span", ...}`` and
  ``{"type": "metric", ...}``), lossless, grep-able, and round-trippable
  back into span trees;
- **Prometheus text** (:func:`prometheus_text` / :func:`export_prometheus`)
  — the classic exposition format, so campaign counters can be scraped or
  diffed between runs;
- **Chrome trace JSON** (:func:`export_chrome_trace`) — complete ``"X"``
  duration events loadable in ``chrome://tracing`` / Perfetto, one lane
  per (process, thread).
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.tracing import SpanRecord, Tracer


# -- JSONL event log --------------------------------------------------------


def _metric_events(registry: MetricsRegistry) -> List[Dict[str, object]]:
    events: List[Dict[str, object]] = []
    for metric in registry.metrics():
        if isinstance(metric, Counter):
            events.append(
                {"type": "metric", "kind": "counter",
                 "name": metric.name, "value": metric.value}
            )
        elif isinstance(metric, Gauge):
            events.append(
                {"type": "metric", "kind": "gauge",
                 "name": metric.name, "value": metric.value}
            )
        elif isinstance(metric, Histogram):
            events.append(
                {"type": "metric", "kind": "histogram", "name": metric.name,
                 "bounds": list(metric.bounds),
                 "counts": metric.bucket_counts(),
                 "sum": metric.sum, "count": metric.count}
            )
    return events


def export_jsonl(
    path: Union[str, Path],
    tracer: Tracer,
    registry: Optional[MetricsRegistry] = None,
) -> Path:
    """Write spans (and, optionally, a metrics snapshot) as JSON lines."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lines: List[str] = []
    for record in tracer.records():
        event = record.to_dict()
        event["type"] = "span"
        lines.append(json.dumps(event, sort_keys=True))
    if registry is not None:
        for event in _metric_events(registry):
            lines.append(json.dumps(event, sort_keys=True))
    path.write_text("\n".join(lines) + ("\n" if lines else ""), encoding="utf-8")
    return path


def read_jsonl(
    path: Union[str, Path],
) -> Tuple[List[SpanRecord], List[Dict[str, object]]]:
    """Parse a JSONL event log back into (span records, metric events)."""
    spans: List[SpanRecord] = []
    metrics: List[Dict[str, object]] = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        event = json.loads(line)
        if event.get("type") == "span":
            spans.append(SpanRecord.from_dict(event))
        elif event.get("type") == "metric":
            metrics.append(event)
    return spans, metrics


def span_tree(records: Sequence[SpanRecord]) -> List[Dict[str, object]]:
    """Nest span records into ``{"name", "attrs", "span_id", "children"}``
    dicts.  Roots and children keep *start order* (monotonic within a
    process), so a tree built from a round-tripped JSONL file compares
    equal to one built from the in-memory records."""
    nodes: Dict[int, Dict[str, object]] = {}
    for record in records:
        nodes[record.span_id] = {
            "span_id": record.span_id,
            "name": record.name,
            "attrs": dict(record.attrs),
            "duration_ns": record.duration_ns,
            "children": [],
        }
    roots: List[Tuple[Tuple[int, int], Dict[str, object]]] = []
    children: Dict[int, List[Tuple[Tuple[int, int], Dict[str, object]]]] = {}
    for record in records:
        key = (record.start_ns, record.span_id)
        if record.parent_id is not None and record.parent_id in nodes:
            children.setdefault(record.parent_id, []).append(
                (key, nodes[record.span_id])
            )
        else:
            roots.append((key, nodes[record.span_id]))
    for parent_id, ordered in children.items():
        nodes[parent_id]["children"] = [
            node for _, node in sorted(ordered, key=lambda item: item[0])
        ]
    return [node for _, node in sorted(roots, key=lambda item: item[0])]


# -- Prometheus exposition format -------------------------------------------


def _prom_name(name: str) -> str:
    out = []
    for ch in name:
        out.append(ch if (ch.isalnum() or ch in "_:") else "_")
    text = "".join(out)
    return "_" + text if text[:1].isdigit() else text


def _prom_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def prometheus_text(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format."""
    lines: List[str] = []
    for metric in registry.metrics():
        name = _prom_name(metric.name)
        if isinstance(metric, Counter):
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name} {_prom_value(metric.value)}")
        elif isinstance(metric, Gauge):
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {_prom_value(metric.value)}")
        elif isinstance(metric, Histogram):
            lines.append(f"# TYPE {name} histogram")
            for bound, cumulative in metric.cumulative():
                lines.append(
                    f'{name}_bucket{{le="{_prom_value(bound)}"}} {cumulative}'
                )
            lines.append(f"{name}_sum {repr(metric.sum)}")
            lines.append(f"{name}_count {metric.count}")
    return "\n".join(lines) + ("\n" if lines else "")


def export_prometheus(path: Union[str, Path], registry: MetricsRegistry) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(prometheus_text(registry), encoding="utf-8")
    return path


# -- Chrome trace JSON ------------------------------------------------------


def chrome_trace_events(records: Sequence[SpanRecord]) -> List[Dict[str, object]]:
    """Complete-duration (``"ph": "X"``) events for ``chrome://tracing``.

    Timestamps are microseconds relative to the earliest span's wall-clock
    epoch, so spans from pool workers land on the same display axis as the
    parent process; durations stay monotonic-clock exact.
    """
    if not records:
        return []
    base_epoch = min(r.epoch_ns for r in records)
    tids: Dict[Tuple[int, str], int] = {}
    events: List[Dict[str, object]] = []
    for record in records:
        key = (record.pid, record.thread)
        tid = tids.setdefault(key, len(tids) + 1)
        events.append(
            {
                "name": record.name,
                "cat": record.name.split(".", 1)[0],
                "ph": "X",
                "ts": (record.epoch_ns - base_epoch) / 1000.0,
                "dur": record.duration_ns / 1000.0,
                "pid": record.pid,
                "tid": tid,
                "args": dict(record.attrs),
            }
        )
    events.sort(key=lambda e: (e["ts"], e["pid"], e["tid"]))
    return events


def export_chrome_trace(path: Union[str, Path], tracer: Tracer) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {"traceEvents": chrome_trace_events(tracer.records())}
    path.write_text(json.dumps(payload, indent=1), encoding="utf-8")
    return path
