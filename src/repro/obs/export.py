"""Exporters for the observability layer.

Three formats, matched to three consumers:

- **JSONL event log** (:func:`export_jsonl` / :func:`read_jsonl`) — one
  JSON object per line (``{"type": "span", ...}`` and
  ``{"type": "metric", ...}``), lossless, grep-able, and round-trippable
  back into span trees;
- **Prometheus text** (:func:`prometheus_text` / :func:`export_prometheus`)
  — the classic exposition format, so campaign counters can be scraped or
  diffed between runs;
- **Chrome trace JSON** (:func:`export_chrome_trace`) — complete ``"X"``
  duration events loadable in ``chrome://tracing`` / Perfetto, one lane
  per (process, thread).
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.tracing import SpanRecord, Tracer


# -- JSONL event log --------------------------------------------------------


def _metric_events(registry: MetricsRegistry) -> List[Dict[str, object]]:
    events: List[Dict[str, object]] = []
    for metric in registry.metrics():
        if isinstance(metric, Counter):
            events.append(
                {"type": "metric", "kind": "counter",
                 "name": metric.name, "value": metric.value}
            )
        elif isinstance(metric, Gauge):
            events.append(
                {"type": "metric", "kind": "gauge",
                 "name": metric.name, "value": metric.value}
            )
        elif isinstance(metric, Histogram):
            dump = metric.snapshot()  # one lock: counts/sum/count coherent
            events.append(
                {"type": "metric", "kind": "histogram", "name": metric.name,
                 "bounds": dump["bounds"], "counts": dump["counts"],
                 "sum": dump["sum"], "count": dump["count"]}
            )
    return events


def export_jsonl(
    path: Union[str, Path],
    tracer: Tracer,
    registry: Optional[MetricsRegistry] = None,
) -> Path:
    """Write spans (and, optionally, a metrics snapshot) as JSON lines."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lines: List[str] = []
    for record in tracer.records():
        event = record.to_dict()
        event["type"] = "span"
        lines.append(json.dumps(event, sort_keys=True))
    if registry is not None:
        for event in _metric_events(registry):
            lines.append(json.dumps(event, sort_keys=True))
    path.write_text("\n".join(lines) + ("\n" if lines else ""), encoding="utf-8")
    return path


def read_jsonl(
    path: Union[str, Path],
) -> Tuple[List[SpanRecord], List[Dict[str, object]]]:
    """Parse a JSONL event log back into (span records, metric events)."""
    spans: List[SpanRecord] = []
    metrics: List[Dict[str, object]] = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        event = json.loads(line)
        if event.get("type") == "span":
            spans.append(SpanRecord.from_dict(event))
        elif event.get("type") == "metric":
            metrics.append(event)
    return spans, metrics


def span_tree(records: Sequence[SpanRecord]) -> List[Dict[str, object]]:
    """Nest span records into ``{"name", "attrs", "span_id", "children"}``
    dicts.  Roots and children keep *start order* (monotonic within a
    process), so a tree built from a round-tripped JSONL file compares
    equal to one built from the in-memory records."""
    nodes: Dict[int, Dict[str, object]] = {}
    for record in records:
        nodes[record.span_id] = {
            "span_id": record.span_id,
            "name": record.name,
            "attrs": dict(record.attrs),
            "duration_ns": record.duration_ns,
            "children": [],
        }
    roots: List[Tuple[Tuple[int, int], Dict[str, object]]] = []
    children: Dict[int, List[Tuple[Tuple[int, int], Dict[str, object]]]] = {}
    for record in records:
        key = (record.start_ns, record.span_id)
        if record.parent_id is not None and record.parent_id in nodes:
            children.setdefault(record.parent_id, []).append(
                (key, nodes[record.span_id])
            )
        else:
            roots.append((key, nodes[record.span_id]))
    for parent_id, ordered in children.items():
        nodes[parent_id]["children"] = [
            node for _, node in sorted(ordered, key=lambda item: item[0])
        ]
    return [node for _, node in sorted(roots, key=lambda item: item[0])]


# -- Prometheus exposition format -------------------------------------------


def _prom_name(name: str) -> str:
    out = []
    for ch in name:
        out.append(ch if (ch.isalnum() or ch in "_:") else "_")
    text = "".join(out)
    return "_" + text if text[:1].isdigit() else text


def _prom_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


#: ``# HELP`` text for the metrics the layers publish; anything else gets
#: a generic line (the exposition format requires HELP/TYPE per family).
_METRIC_HELP = {
    "campaign_jobs": "Fault-injection simulations requested.",
    "campaign_rows": "FMEA rows produced (jobs + uninjectable warnings).",
    "campaign_solves": "MNA system solves performed.",
    "campaign_newton_iterations": "Newton iterations across nonlinear solves.",
    "campaign_factorization_reuses": "LU factorizations reused across faults.",
    "campaign_smw_solves": "Sherman-Morrison-Woodbury low-rank fault solves.",
    "campaign_full_rebuilds": "Faults requiring full matrix re-assembly.",
    "campaign_baseline_reuses": "No-op faults served from the healthy baseline.",
    "campaign_retries": "Transient-failure retries (job- and chunk-level).",
    "campaign_timeouts": "Jobs killed by the per-job wall-clock budget.",
    "campaign_job_failures": "Jobs recorded as structured failures.",
    "campaign_resumed_jobs": "Jobs skipped thanks to a checkpoint.",
    "campaign_parallel_fallbacks": "Campaigns degraded from pool to serial.",
    "campaign_wall_seconds": "Wall time of the last campaign, seconds.",
    "campaign_baseline_seconds": "Healthy baseline solve time, seconds.",
    "campaign_workers": "Workers actually used by the last campaign.",
    "campaign_requested_workers": "Workers requested for the last campaign.",
    "campaign_job_seconds": "Per-injection execution time, seconds.",
    "campaign_job_wall_seconds":
        "Per-job wall time including retries and backoff, seconds.",
    "campaign_pool_reuses": "Campaigns served by the warm worker pool.",
    "campaign_pool_reuse": "Whether the last campaign reused the warm pool.",
    "decisive_fmea_reuses": "DECISIVE Step 4a evaluations served from cache.",
}


def _prom_help(name: str) -> str:
    return _METRIC_HELP.get(name, f"repro.obs metric {name}.")


def prometheus_text(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format.

    Each metric family carries ``# HELP`` and ``# TYPE`` lines; histograms
    expose cumulative ``_bucket`` series ending in ``le="+Inf"`` whose
    count equals ``_count``, plus ``_sum`` — the invariants
    :func:`parse_prometheus_text` checks on the way back in.
    """
    lines: List[str] = []
    for metric in registry.metrics():
        name = _prom_name(metric.name)
        if isinstance(metric, Counter):
            lines.append(f"# HELP {name} {_prom_help(metric.name)}")
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name} {_prom_value(metric.value)}")
        elif isinstance(metric, Gauge):
            lines.append(f"# HELP {name} {_prom_help(metric.name)}")
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {_prom_value(metric.value)}")
        elif isinstance(metric, Histogram):
            lines.append(f"# HELP {name} {_prom_help(metric.name)}")
            lines.append(f"# TYPE {name} histogram")
            # One atomic snapshot per histogram: buckets, _sum and _count
            # come from the same instant, so a live scrape racing observe()
            # still satisfies the +Inf == _count invariant.
            dump = metric.snapshot()
            running = 0
            for bound, count in zip(dump["bounds"], dump["counts"]):
                running += count
                lines.append(
                    f'{name}_bucket{{le="{_prom_value(bound)}"}} {running}'
                )
            lines.append(
                f'{name}_bucket{{le="+Inf"}} {dump["count"]}'
            )
            lines.append(f"{name}_sum {repr(dump['sum'])}")
            lines.append(f"{name}_count {dump['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


def parse_prometheus_text(text: str) -> Dict[str, Dict[str, object]]:
    """Parse exposition text back into metric families, with validation.

    Returns ``{family: {"type", "help", "value" | ("buckets", "sum",
    "count")}}``.  Raises ``ValueError`` when the text violates the
    format's invariants: samples without a preceding ``# TYPE``, histogram
    buckets that are not cumulative, a missing ``le="+Inf"`` bucket, or an
    ``+Inf`` bucket disagreeing with ``_count``.
    """
    families: Dict[str, Dict[str, object]] = {}

    def family_of(sample: str) -> Optional[str]:
        for suffix in ("_bucket", "_sum", "_count"):
            base = sample[: -len(suffix)] if sample.endswith(suffix) else None
            if base and families.get(base, {}).get("type") == "histogram":
                return base
        return sample if sample in families else None

    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            families.setdefault(name, {})["help"] = help_text
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            families.setdefault(name, {})["type"] = kind.strip()
            continue
        if line.startswith("#"):
            continue
        sample, _, value_text = line.rpartition(" ")
        labels = ""
        if "{" in sample:
            sample, _, labels = sample.partition("{")
            labels = labels.rstrip("}")
        family = family_of(sample)
        if family is None:
            raise ValueError(f"sample {sample!r} has no # TYPE line")
        record = families[family]
        value = float(value_text)
        if record.get("type") == "histogram":
            if sample.endswith("_bucket"):
                le = labels.partition("=")[2].strip('"')
                bound = math.inf if le == "+Inf" else float(le)
                buckets = record.setdefault("buckets", [])
                if buckets and value < buckets[-1][1]:
                    raise ValueError(
                        f"{family}: bucket counts not cumulative at le={le}"
                    )
                buckets.append((bound, int(value)))
            elif sample.endswith("_sum"):
                record["sum"] = value
            elif sample.endswith("_count"):
                record["count"] = int(value)
        else:
            record["value"] = value
    for family, record in families.items():
        if record.get("type") != "histogram":
            continue
        buckets = record.get("buckets", [])
        if not buckets or buckets[-1][0] != math.inf:
            raise ValueError(f'{family}: missing le="+Inf" bucket')
        if "count" in record and buckets[-1][1] != record["count"]:
            raise ValueError(
                f"{family}: +Inf bucket {buckets[-1][1]} != "
                f"_count {record['count']}"
            )
    return families


def export_prometheus(path: Union[str, Path], registry: MetricsRegistry) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(prometheus_text(registry), encoding="utf-8")
    return path


# -- Chrome trace JSON ------------------------------------------------------


def chrome_trace_events(records: Sequence[SpanRecord]) -> List[Dict[str, object]]:
    """Complete-duration (``"ph": "X"``) events for ``chrome://tracing``.

    Timestamps are microseconds relative to the earliest span's wall-clock
    epoch, so spans from pool workers land on the same display axis as the
    parent process; durations stay monotonic-clock exact.
    """
    if not records:
        return []
    base_epoch = min(r.epoch_ns for r in records)
    tids: Dict[Tuple[int, str], int] = {}
    events: List[Dict[str, object]] = []
    for record in records:
        key = (record.pid, record.thread)
        tid = tids.setdefault(key, len(tids) + 1)
        events.append(
            {
                "name": record.name,
                "cat": record.name.split(".", 1)[0],
                "ph": "X",
                "ts": (record.epoch_ns - base_epoch) / 1000.0,
                "dur": record.duration_ns / 1000.0,
                "pid": record.pid,
                "tid": tid,
                "args": dict(record.attrs),
            }
        )
    events.sort(key=lambda e: (e["ts"], e["pid"], e["tid"]))
    return events


def export_chrome_trace(path: Union[str, Path], tracer: Tracer) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {"traceEvents": chrome_trace_events(tracer.records())}
    path.write_text(json.dumps(payload, indent=1), encoding="utf-8")
    return path
