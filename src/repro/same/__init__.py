"""SAME — the Safety Analysis Management Environment (tool facade).

The paper's SAME is an Eclipse-based workbench; its *functions* — importing
Simulink models, transforming to SSAM, invoking automated FME(D)A from the
editor, computing metrics, searching mechanism deployments, exporting the
Excel FMEA table, federating external data — are exposed here as a
programmatic facade (:class:`SAME`) over the underlying packages, plus a
:class:`Workspace` for artefact management on disk.
"""

from repro.same.environment import SAME
from repro.same.workspace import Workspace
from repro.same.render import (
    render_architecture,
    render_architecture_mermaid,
    render_hazard_log,
    render_requirements,
)

__all__ = [
    "SAME",
    "Workspace",
    "render_architecture",
    "render_architecture_mermaid",
    "render_hazard_log",
    "render_requirements",
]
