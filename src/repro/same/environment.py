"""The SAME facade — every editor function as one method.

The methods map one-to-one to the operations SAME's GUI offers in the
paper's working process (Fig. 10): import a Simulink model, transform it to
SSAM, invoke automated FME(D)A, compute SPFM/ASIL, deploy safety
mechanisms (by hand or by search), export the FMEA workbook, generate
runtime monitors, and run the full DECISIVE loop.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro import obs
from repro.decisive.process import DecisiveProcess, ProcessLog
from repro.monitor import RuntimeMonitor, generate_monitor
from repro.reliability import ReliabilityModel, load_reliability_table
from repro.safety import (
    DeploymentPlan,
    FmeaResult,
    FmedaResult,
    run_fmeda,
    run_simulink_fmea,
    run_ssam_fmea,
    save_fmea_workbook,
    save_fmeda_workbook,
    search_for_target,
    pareto_front,
)
from repro.safety.mechanisms import (
    Deployment,
    SafetyMechanismModel,
    load_mechanism_table,
)
from repro.safety.metrics import asil_from_spfm, spfm
from repro.simulink import SimulinkModel
from repro.ssam import SSAMModel
from repro.transform import (
    propagate_mechanisms_to_simulink,
    simulink_to_ssam,
    ssam_to_simulink,
)


class SAME:
    """Programmatic workbench: holds the loaded models and catalogues."""

    def __init__(self) -> None:
        self.simulink_model: Optional[SimulinkModel] = None
        self.ssam_model: Optional[SSAMModel] = None
        self.reliability: Optional[ReliabilityModel] = None
        self.mechanisms: Optional[SafetyMechanismModel] = None
        self.deployments: List[Deployment] = []
        self.last_fmea: Optional[FmeaResult] = None
        self.last_fmeda: Optional[FmedaResult] = None
        #: Optional provenance ledger (see :mod:`repro.obs.ledger`): when
        #: set, every analysis records an entry and every export attaches
        #: the produced artifact to the entry it came from.
        self.ledger = None
        self._ledger_entries: dict = {}
        #: Workbench-scoped correlation id: stamped on every span, event,
        #: log record and ledger entry an analysis on this workbench
        #: produces when no ambient id is installed (a service job or a
        #: CLI invocation installs its own, which wins).
        self.correlation_id = obs.mint_correlation_id()

    def _correlated(self):
        """Correlation scope for one analysis run on this workbench."""
        return obs.correlation(obs.correlation_id() or self.correlation_id)

    def set_ledger(self, ledger: Union[str, Path, object]):
        """Attach an analysis ledger (a path or an ``AnalysisLedger``)."""
        from repro.obs.ledger import AnalysisLedger

        self.ledger = (
            ledger
            if isinstance(ledger, AnalysisLedger)
            else AnalysisLedger(ledger)
        )
        return self.ledger

    # -- loading ------------------------------------------------------------

    def open_simulink(self, source: Union[str, Path, SimulinkModel]) -> SimulinkModel:
        self.simulink_model = (
            source
            if isinstance(source, SimulinkModel)
            else SimulinkModel.load(source)
        )
        return self.simulink_model

    def open_ssam(self, source: Union[str, Path, SSAMModel]) -> SSAMModel:
        self.ssam_model = (
            source if isinstance(source, SSAMModel) else SSAMModel.load(source)
        )
        return self.ssam_model

    def load_reliability(
        self, source: Union[str, Path, ReliabilityModel]
    ) -> ReliabilityModel:
        self.reliability = (
            source
            if isinstance(source, ReliabilityModel)
            else load_reliability_table(source)
        )
        return self.reliability

    def load_mechanisms(
        self, source: Union[str, Path, SafetyMechanismModel]
    ) -> SafetyMechanismModel:
        self.mechanisms = (
            source
            if isinstance(source, SafetyMechanismModel)
            else load_mechanism_table(source)
        )
        return self.mechanisms

    # -- transformation -------------------------------------------------------

    def import_simulink(self, anchor_boundaries: bool = False) -> SSAMModel:
        """Transform the open Simulink model to SSAM (the editor's import)."""
        self._require("simulink_model")
        with obs.span("same.transform", model=self.simulink_model.name):
            self.ssam_model = simulink_to_ssam(
                self.simulink_model, self.reliability, anchor_boundaries
            )
        return self.ssam_model

    def export_simulink(self) -> SimulinkModel:
        self._require("ssam_model")
        return ssam_to_simulink(self.ssam_model)

    def propagate_changes(self) -> int:
        """Propagate SSAM-side safety mechanisms back to the Simulink model."""
        self._require("ssam_model")
        self._require("simulink_model")
        return propagate_mechanisms_to_simulink(
            self.ssam_model, self.simulink_model
        )

    # -- analysis ---------------------------------------------------------------

    def run_fmea_simulink(
        self,
        sensors: Optional[Sequence[str]] = None,
        threshold: float = 0.2,
        assume_stable: Iterable[str] = (),
        workers: int = 1,
        strategy: str = "fixed",
        max_retries: int = 2,
        job_timeout: Optional[float] = None,
        checkpoint: Optional[str] = None,
        resume: bool = False,
        solver_backend: Optional[str] = None,
    ) -> FmeaResult:
        """Injection-based FMEA of the Simulink model.

        ``workers``/``strategy``/``max_retries``/``job_timeout``/
        ``checkpoint``/``resume``/``solver_backend`` are forwarded to
        :class:`~repro.safety.campaign.FaultInjectionCampaign` so iterative
        SAME workflows get the same execution strategy, fault tolerance,
        checkpoint–resume behaviour and solver backend as the CLI.
        """
        self._require("simulink_model")
        self._require("reliability")
        with self._correlated(), obs.span(
            "same.fmea", method="injection"
        ) as sp:
            self.last_fmea = run_simulink_fmea(
                self.simulink_model,
                self.reliability,
                sensors=sensors,
                threshold=threshold,
                assume_stable=assume_stable,
                workers=workers,
                strategy=strategy,
                max_retries=max_retries,
                job_timeout=job_timeout,
                checkpoint=checkpoint,
                resume=resume,
                solver_backend=solver_backend,
            )
            self._ledger_fmea(
                self.last_fmea,
                self.simulink_model,
                sp,
                config={"threshold": threshold, "strategy": strategy},
            )
        return self.last_fmea

    def run_fmea_ssam(self, component=None) -> FmeaResult:
        self._require("ssam_model")
        target = component
        if target is None:
            tops = self.ssam_model.top_components()
            if not tops:
                raise ValueError("SSAM model has no top-level component")
            target = tops[0]
        with self._correlated(), obs.span("same.fmea", method="graph") as sp:
            self.last_fmea = run_ssam_fmea(target, self.reliability)
            self._ledger_fmea(self.last_fmea, target, sp, config={})
        return self.last_fmea

    def calculate_spfm(self) -> Tuple[float, str]:
        self._require("last_fmea")
        with obs.span("same.metric_check") as sp:
            value = spfm(self.last_fmea, self.deployments)
            asil = asil_from_spfm(value)
            sp.set(spfm=value, asil=asil)
        return value, asil

    def run_fmeda(self) -> FmedaResult:
        self._require("last_fmea")
        with self._correlated(), obs.span(
            "same.fmeda", deployments=len(self.deployments)
        ) as sp:
            self.last_fmeda = run_fmeda(self.last_fmea, self.deployments)
            if self.ledger is not None:
                from repro.obs.ledger import record_fmeda

                entry = record_fmeda(
                    self.ledger,
                    self.last_fmeda,
                    model=self.simulink_model or self.ssam_model,
                    reliability=self.reliability,
                    meta={"facade": "same"},
                )
                self._ledger_entries["fmeda"] = entry
                sp.set(ledger_entry=entry.entry_id)
        return self.last_fmeda

    # -- mechanisms ----------------------------------------------------------------

    def deploy(
        self, component: str, failure_mode: str, mechanism: Optional[str] = None
    ) -> Deployment:
        """Deploy a catalogue mechanism on one component's failure mode."""
        self._require("mechanisms")
        self._require("last_fmea")
        row = next(
            (
                r
                for r in self.last_fmea.rows
                if r.component == component and r.failure_mode == failure_mode
            ),
            None,
        )
        if row is None:
            raise ValueError(
                f"FMEA has no row for {component!r}/{failure_mode!r}"
            )
        deployment = self.mechanisms.deploy(
            component, row.component_class, failure_mode, mechanism
        )
        self.deployments.append(deployment)
        return deployment

    def search_deployment(
        self, target_asil: str, strategy: str = "dp"
    ) -> Optional[DeploymentPlan]:
        """Let SAME determine the solution for the target safety level.

        ``strategy`` selects the optimizer backend: the exact separable
        Pareto DP (default), ``"greedy"``, or the legacy bounded
        ``"exhaustive"`` enumeration.
        """
        self._require("mechanisms")
        self._require("last_fmea")
        with self._correlated(), obs.span(
            "same.search_deployment", target=target_asil, strategy=strategy
        ) as sp:
            plan = search_for_target(
                self.last_fmea, self.mechanisms, target_asil,
                strategy=strategy,
            )
            if plan is not None and self.ledger is not None:
                from repro.obs.ledger import record_optimizer

                entry = record_optimizer(
                    self.ledger,
                    plan,
                    system=self.last_fmea.system,
                    model=self.simulink_model or self.ssam_model,
                    reliability=self.reliability,
                    config={"target": target_asil, "strategy": strategy},
                    meta={"facade": "same"},
                )
                sp.set(ledger_entry=entry.entry_id)
        if plan is not None:
            self.deployments = list(plan.deployments)
        return plan

    def pareto(self, strategy: str = "dp") -> List[DeploymentPlan]:
        """The Pareto front of (cost, SPFM) deployment trade-offs."""
        self._require("mechanisms")
        self._require("last_fmea")
        return pareto_front(self.last_fmea, self.mechanisms, strategy=strategy)

    # -- outputs ------------------------------------------------------------------

    def export_fmea(self, location: Union[str, Path]) -> Path:
        self._require("last_fmea")
        path = save_fmea_workbook(self.last_fmea, location)
        self._attach_artifact("fmea", path)
        return path

    def export_fmeda(self, location: Union[str, Path]) -> Path:
        if self.last_fmeda is None:
            self.run_fmeda()
        path = save_fmeda_workbook(self.last_fmeda, location)
        self._attach_artifact("fmeda", path)
        return path

    def generate_runtime_monitor(self, debounce: int = 1) -> RuntimeMonitor:
        self._require("ssam_model")
        return generate_monitor(self.ssam_model, debounce)

    def derive_runtime_monitor(self, debounce: int = 3) -> RuntimeMonitor:
        """Monitor derived from the last injection FMEA's baselines."""
        self._require("last_fmea")
        from repro.monitor import monitor_from_fmea

        return monitor_from_fmea(self.last_fmea, debounce=debounce)

    def analyze_uncertainty(
        self, target_asil: str = "ASIL-B", samples: int = 2000, **kwargs
    ):
        """Monte Carlo robustness of the SPFM verdict to the data."""
        self._require("last_fmea")
        from repro.safety.uncertainty import spfm_uncertainty

        return spfm_uncertainty(
            self.last_fmea,
            self.deployments,
            target_asil=target_asil,
            samples=samples,
            **kwargs,
        )

    def export_fault_tree(
        self, location: Union[str, Path], fmt: str = "dot"
    ) -> Path:
        """Synthesize the SSAM model's fault tree and export it
        (``fmt``: ``dot`` or ``openpsa``)."""
        self._require("ssam_model")
        from repro.fta import synthesize_fault_tree, to_dot, to_open_psa

        tops = self.ssam_model.top_components()
        if not tops:
            raise ValueError("SSAM model has no top-level component")
        tree = synthesize_fault_tree(tops[0])
        renderers = {"dot": to_dot, "openpsa": to_open_psa}
        try:
            text = renderers[fmt](tree)
        except KeyError:
            raise ValueError(
                f"unknown format {fmt!r}; expected one of {sorted(renderers)}"
            ) from None
        path = Path(location)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text, encoding="utf-8")
        return path

    def build_assurance_case(
        self, concept, fmeda_location: str
    ):
        """Instantiate the hazard-directed GSN pattern over a safety concept."""
        from repro.assurance import case_from_safety_concept

        return case_from_safety_concept(concept, fmeda_location)

    # -- the analysis service --------------------------------------------------------

    def serve_analysis(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        checkpoint_dir: Optional[Union[str, Path]] = None,
    ):
        """Start the always-on analysis service over this workbench's
        ledger (``set_ledger`` first) and return the running
        :class:`~repro.service.AnalysisServiceServer`.

        The service shares the ledger with the facade: analyses recorded
        here (``run_fmea_simulink`` etc.) seed the service's result cache,
        and service-computed entries show up in ``history``/``diff``.
        """
        self._require("ledger")
        from repro.service import AnalysisService, AnalysisServiceServer

        service = AnalysisService(
            self.ledger, workers=workers, checkpoint_dir=checkpoint_dir
        )
        return AnalysisServiceServer(service, host, port).start()

    # -- the whole methodology -------------------------------------------------------

    def run_decisive(
        self,
        target_asil: str = "ASIL-B",
        max_iterations: int = 10,
        search_strategy: str = "dp",
    ) -> ProcessLog:
        self._require("ssam_model")
        self._require("reliability")
        self._require("mechanisms")
        process = DecisiveProcess(
            self.ssam_model,
            self.reliability,
            self.mechanisms,
            target_asil,
            ledger=self.ledger,
            search_strategy=search_strategy,
        )
        with self._correlated(), obs.span("same.decisive", target=target_asil):
            log = process.run(max_iterations)
        self.deployments = list(process.deployments)
        self.last_fmea, _, _ = process.step4a_evaluate()
        self.last_fmeda = log.concept.fmeda if log.concept else None
        return log

    # -- internals ----------------------------------------------------------------------

    def _ledger_fmea(self, result, model, sp, config: dict) -> None:
        """Record an FMEA run in the attached ledger (no-op without one)."""
        if self.ledger is None:
            return
        from repro.obs.ledger import record_fmea

        value = spfm(result, self.deployments)
        entry = record_fmea(
            self.ledger,
            result,
            model=model,
            reliability=self.reliability,
            spfm=value,
            asil=asil_from_spfm(value),
            config=config,
            meta={"facade": "same", "method": result.method},
        )
        self._ledger_entries["fmea"] = entry
        sp.set(ledger_entry=entry.entry_id)

    def _attach_artifact(self, kind: str, path: Path) -> None:
        """Link an exported workbook to the entry its analysis recorded."""
        if self.ledger is None:
            return
        entry = self._ledger_entries.get(kind)
        if entry is None:
            entry = self.ledger.latest(kind=kind)
        if entry is not None:
            self.ledger.attach_artifact(entry, path)

    def _require(self, attribute: str) -> None:
        if getattr(self, attribute) is None:
            hints = {
                "simulink_model": "open_simulink()",
                "ssam_model": "open_ssam() or import_simulink()",
                "reliability": "load_reliability()",
                "mechanisms": "load_mechanisms()",
                "last_fmea": "run_fmea_simulink() or run_fmea_ssam()",
            }
            raise ValueError(
                f"no {attribute.replace('_', ' ')} loaded; "
                f"call {hints.get(attribute, 'the loader')} first"
            )
