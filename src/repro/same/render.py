"""Diagram rendering — the textual stand-in for SAME's Sirius editors.

Three renderers, mirroring the hierarchical editors of Section IV-B6:

- :func:`render_architecture` — the system-design view: components with
  FIT / class / flags, failure modes, mechanisms, and the wiring;
- :func:`render_architecture_mermaid` — the same structure as a Mermaid
  ``flowchart`` (paste into any Mermaid renderer for the graphical view);
- :func:`render_hazard_log` / :func:`render_requirements` — the hazard and
  requirement editors' tree views.
"""

from __future__ import annotations

from typing import List, Optional

from repro.metamodel import ModelObject
from repro.ssam import SSAMModel
from repro.ssam.base import text_of


def _component_label(component: ModelObject) -> str:
    name = text_of(component) or component.get("id")
    bits = [component.get("componentClass") or "?"]
    fit = component.get("fit") or 0.0
    if fit:
        bits.append(f"{fit:g} FIT")
    if component.get("safetyRelated"):
        bits.append("SR")
    if component.get("dynamic"):
        bits.append("dynamic")
    return f"{name} [{', '.join(bits)}]"


def _render_component(component: ModelObject, depth: int, lines: List[str]) -> None:
    pad = "  " * depth
    lines.append(f"{pad}{_component_label(component)}")
    for node in component.get("ioNodes"):
        limits = ""
        lower, upper = node.get("lowerLimit"), node.get("upperLimit")
        if lower is not None or upper is not None:
            limits = f" limits=[{lower}, {upper}]"
        lines.append(
            f"{pad}  io {text_of(node)} ({node.get('direction')}){limits}"
        )
    for mode in component.get("failureModes"):
        marker = "!" if mode.get("safetyRelated") else " "
        lines.append(
            f"{pad}  fm{marker}{text_of(mode)} "
            f"({mode.get('nature')}, {float(mode.get('distribution') or 0) * 100:g}%)"
        )
    for mechanism in component.get("safetyMechanisms"):
        covers = ", ".join(text_of(m) for m in mechanism.get("covers"))
        lines.append(
            f"{pad}  sm {text_of(mechanism)} "
            f"(cov {float(mechanism.get('coverage') or 0) * 100:g}%"
            + (f", covers {covers}" if covers else "")
            + ")"
        )
    for rel in component.get("relationships"):
        source = rel.get("source")
        target = rel.get("target")
        src = "[in]" if source is component else text_of(source)
        dst = "[out]" if target is component else text_of(target)
        lines.append(f"{pad}  wire {src} -> {dst} ({rel.get('kind')})")
    for sub in component.get("subcomponents"):
        _render_component(sub, depth + 1, lines)


def render_architecture(model: SSAMModel) -> str:
    """Indented text view of every component package."""
    lines: List[str] = []
    for package in model.component_packages:
        lines.append(f"package {text_of(package)}")
        for component in package.get("components"):
            _render_component(component, 1, lines)
    return "\n".join(lines)


def _mermaid_id(name: str) -> str:
    return "".join(ch if ch.isalnum() else "_" for ch in name)


def render_architecture_mermaid(
    model: SSAMModel, composite: Optional[ModelObject] = None
) -> str:
    """A Mermaid flowchart of one composite's wiring (top component when
    ``composite`` is omitted)."""
    if composite is None:
        tops = model.top_components()
        if not tops:
            return "flowchart LR\n  empty[no architecture]"
        composite = tops[0]
    lines = ["flowchart LR"]
    comp_name = text_of(composite) or composite.get("id")
    lines.append(f"  __in__([{comp_name} in])")
    lines.append(f"  __out__([{comp_name} out])")
    for sub in composite.get("subcomponents"):
        name = text_of(sub) or sub.get("id")
        shape = f"{{{{{name}}}}}" if sub.get("safetyRelated") else f"[{name}]"
        lines.append(f"  {_mermaid_id(name)}{shape}")
    for rel in composite.get("relationships"):
        source = rel.get("source")
        target = rel.get("target")
        src = (
            "__in__"
            if source is composite
            else _mermaid_id(text_of(source) or source.get("id"))
        )
        dst = (
            "__out__"
            if target is composite
            else _mermaid_id(text_of(target) or target.get("id"))
        )
        lines.append(f"  {src} --> {dst}")
    return "\n".join(lines)


def render_hazard_log(model: SSAMModel) -> str:
    """Tree view of the hazard packages."""
    lines: List[str] = []
    for package in model.hazard_packages:
        lines.append(f"hazard log {text_of(package)}")
        for element in package.get("elements"):
            if not element.is_kind_of("Hazard"):
                continue
            lines.append(
                f"  {text_of(element)} [{element.get('integrityTarget')}]: "
                f"{element.get('text')}"
            )
            for situation in element.get("situations"):
                lines.append(
                    f"    situation {text_of(situation)} "
                    f"(S={situation.get('severity')}, "
                    f"E={situation.get('exposure')}, "
                    f"C={situation.get('controllability')})"
                )
                for cause in situation.get("causes"):
                    lines.append(f"      cause: {cause.get('text')}")
                for measure in situation.get("controlMeasures"):
                    lines.append(f"      measure: {text_of(measure)}")
    return "\n".join(lines)


def render_requirements(model: SSAMModel) -> str:
    """Tree view of the requirement packages."""
    lines: List[str] = []
    for package in model.requirement_packages:
        lines.append(f"requirements {text_of(package)}")
        for element in package.get("elements"):
            if element.is_kind_of("RequirementRelationship"):
                source = element.get("source")
                target = element.get("target")
                lines.append(
                    f"  {text_of(source)} --{element.get('kind')}--> "
                    f"{text_of(target)}"
                )
                continue
            level = ""
            if element.is_kind_of("SafetyRequirement"):
                level = f" [{element.get('integrityLevel')}]"
            lines.append(
                f"  {text_of(element)}{level}: {element.get('text')}"
            )
    return "\n".join(lines)
