"""Workspace — artefact management for SAME.

A workspace is a directory holding the models and generated artefacts of
one DECISIVE campaign: Simulink models, SSAM models, reliability and
safety-mechanism workbooks, FMEA/FMEDA outputs.  Files are tracked with
their kind so the working-process steps (Fig. 10) can find each other's
outputs.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.reliability import ReliabilityModel, load_reliability_table
from repro.safety.mechanisms import SafetyMechanismModel, load_mechanism_table
from repro.simulink import SimulinkModel
from repro.ssam import SSAMModel


class WorkspaceError(Exception):
    """Raised for missing artefacts or index corruption."""


_INDEX_NAME = "workspace.json"


class Workspace:
    """A directory of tracked artefacts."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._index: Dict[str, Dict[str, str]] = {}
        self._load_index()

    # -- index ------------------------------------------------------------

    @property
    def _index_path(self) -> Path:
        return self.root / _INDEX_NAME

    def _load_index(self) -> None:
        if self._index_path.is_file():
            with open(self._index_path, encoding="utf-8") as handle:
                self._index = json.load(handle)

    def _save_index(self) -> None:
        with open(self._index_path, "w", encoding="utf-8") as handle:
            json.dump(self._index, handle, indent=2)

    def register(self, name: str, kind: str, relative_path: str) -> None:
        self._index[name] = {"kind": kind, "path": relative_path}
        self._save_index()

    def artefacts(self, kind: Optional[str] = None) -> List[str]:
        return [
            name
            for name, entry in self._index.items()
            if kind is None or entry["kind"] == kind
        ]

    def path_of(self, name: str) -> Path:
        try:
            return self.root / self._index[name]["path"]
        except KeyError:
            raise WorkspaceError(
                f"no artefact {name!r}; known: {sorted(self._index)}"
            ) from None

    def kind_of(self, name: str) -> str:
        try:
            return self._index[name]["kind"]
        except KeyError:
            raise WorkspaceError(f"no artefact {name!r}") from None

    # -- typed save/load ----------------------------------------------------

    def save_simulink(self, name: str, model: SimulinkModel) -> Path:
        relative = f"{name}.slx.json"
        model.save(self.root / relative)
        self.register(name, "simulink", relative)
        return self.root / relative

    def load_simulink(self, name: str) -> SimulinkModel:
        return SimulinkModel.load(self.path_of(name))

    def save_ssam(self, name: str, model: SSAMModel) -> Path:
        relative = f"{name}.ssam.json"
        model.save(self.root / relative)
        self.register(name, "ssam", relative)
        return self.root / relative

    def load_ssam(self, name: str) -> SSAMModel:
        return SSAMModel.load(self.path_of(name))

    def load_reliability(self, name: str) -> ReliabilityModel:
        return load_reliability_table(self.path_of(name))

    def load_mechanisms(self, name: str) -> SafetyMechanismModel:
        return load_mechanism_table(self.path_of(name))

    def import_file(self, name: str, kind: str, source: Union[str, Path]) -> Path:
        """Copy an external file into the workspace and track it."""
        source = Path(source)
        if not source.exists():
            raise WorkspaceError(f"no such file: {source}")
        relative = source.name
        destination = self.root / relative
        if source.is_dir():
            import shutil

            shutil.copytree(source, destination, dirs_exist_ok=True)
        else:
            destination.write_bytes(source.read_bytes())
        self.register(name, kind, relative)
        return destination
