"""DECISIVE — DEsigning CrItical Systems with IteratiVe automated safEty analysis.

A reproduction of the DAC 2022 paper "DECISIVE: Designing Critical Systems
with Iterative Automated Safety Analysis" (Wei et al.).  The package provides:

- :mod:`repro.metamodel` — a small metamodelling kernel (EMF/Ecore substitute);
- :mod:`repro.ssam` — the Structured System Architecture Metamodel (SSAM);
- :mod:`repro.drivers` — Epsilon-style model drivers and a query language;
- :mod:`repro.simulink` — a Simulink/Simscape-like block-diagram substrate;
- :mod:`repro.circuit` — an MNA-based analogue circuit simulator;
- :mod:`repro.reliability` — component reliability modelling (FIT, failure modes);
- :mod:`repro.safety` — automated FMEA / FMEDA, metrics (SPFM), ASIL, optimiser;
- :mod:`repro.transform` — model-to-model transformation (Simulink → SSAM);
- :mod:`repro.federation` — heterogeneous model federation;
- :mod:`repro.assurance` — SACM/GSN assurance cases with executable queries;
- :mod:`repro.fta` — fault tree analysis (future-work extension);
- :mod:`repro.monitor` — runtime monitor generation (future-work extension);
- :mod:`repro.decisive` — the five-step DECISIVE process orchestration;
- :mod:`repro.same` — the SAME tool facade;
- :mod:`repro.casestudies` — the paper's case studies and dataset generators.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
