"""Automated assurance-case evaluation.

Support propagates bottom-up through the goal structure:

- a **Solution** is SUPPORTED when its artifact's acceptance check passes
  (a solution without an artifact is UNDEVELOPED — evidence was promised
  but nothing machine-checkable backs it);
- a **Strategy** is SUPPORTED when it has subgoals and all are supported;
- a **Goal** is SUPPORTED when it has support and all of it is supported;
  goals explicitly flagged ``undeveloped`` are UNDEVELOPED.

Re-running :func:`evaluate_case` after the design (and hence the generated
FMEDA artefacts) changed is exactly the paper's "automated validation of
system assurance cases".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.assurance.gsn import Goal, Solution, Strategy
from repro.assurance.sacm import ArtifactError


class NodeStatus(enum.Enum):
    SUPPORTED = "supported"
    UNSUPPORTED = "unsupported"
    UNDEVELOPED = "undeveloped"
    ERROR = "error"


@dataclass
class CaseEvaluation:
    """Per-node statuses plus an overall verdict."""

    statuses: Dict[str, NodeStatus] = field(default_factory=dict)
    messages: Dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return all(
            status == NodeStatus.SUPPORTED for status in self.statuses.values()
        )

    def status(self, identifier: str) -> NodeStatus:
        return self.statuses[identifier]

    def failures(self) -> List[str]:
        return [
            identifier
            for identifier, status in self.statuses.items()
            if status != NodeStatus.SUPPORTED
        ]


def evaluate_case(
    root: Goal, base_dir: Optional[Path] = None
) -> CaseEvaluation:
    """Evaluate the case rooted at ``root`` (executing artifact queries)."""
    evaluation = CaseEvaluation()
    _evaluate(root, base_dir, evaluation, set())
    return evaluation


def _evaluate(node, base_dir, evaluation: CaseEvaluation, visiting: set) -> NodeStatus:
    if node.identifier in evaluation.statuses:
        return evaluation.statuses[node.identifier]
    if id(node) in visiting:
        evaluation.statuses[node.identifier] = NodeStatus.ERROR
        evaluation.messages[node.identifier] = "cycle in goal structure"
        return NodeStatus.ERROR
    visiting.add(id(node))
    try:
        status = _evaluate_inner(node, base_dir, evaluation, visiting)
    finally:
        visiting.discard(id(node))
    evaluation.statuses[node.identifier] = status
    return status


def _evaluate_inner(node, base_dir, evaluation, visiting) -> NodeStatus:
    if isinstance(node, Solution):
        if node.artifact is None:
            evaluation.messages[node.identifier] = "no artifact attached"
            return NodeStatus.UNDEVELOPED
        try:
            passed = node.artifact.check(base_dir)
        except ArtifactError as exc:
            evaluation.messages[node.identifier] = str(exc)
            return NodeStatus.ERROR
        if passed:
            return NodeStatus.SUPPORTED
        evaluation.messages[node.identifier] = (
            f"acceptance expression {node.artifact.acceptance!r} is false"
        )
        return NodeStatus.UNSUPPORTED
    if isinstance(node, Strategy):
        if not node.supported_by:
            evaluation.messages[node.identifier] = "strategy has no subgoals"
            return NodeStatus.UNDEVELOPED
        children = [
            _evaluate(child, base_dir, evaluation, visiting)
            for child in node.supported_by
        ]
        return _combine(children)
    if isinstance(node, Goal):
        if node.undeveloped:
            return NodeStatus.UNDEVELOPED
        if not node.supported_by:
            evaluation.messages[node.identifier] = "goal has no support"
            return NodeStatus.UNDEVELOPED
        children = [
            _evaluate(child, base_dir, evaluation, visiting)
            for child in node.supported_by
        ]
        return _combine(children)
    # Context / assumption / justification do not gate support.
    return NodeStatus.SUPPORTED


def _combine(children: List[NodeStatus]) -> NodeStatus:
    if any(status == NodeStatus.ERROR for status in children):
        return NodeStatus.ERROR
    if any(status == NodeStatus.UNSUPPORTED for status in children):
        return NodeStatus.UNSUPPORTED
    if any(status == NodeStatus.UNDEVELOPED for status in children):
        return NodeStatus.UNDEVELOPED
    return NodeStatus.SUPPORTED


# -- evidence freshness -------------------------------------------------------


@dataclass
class EvidenceFreshness:
    """One Solution artifact's provenance status against the ledger."""

    solution: str
    artifact: str
    entry: str = ""  # backing ledger entry id ('' when none matched)
    recorded_digest: str = ""
    current_digest: str = ""

    @property
    def status(self) -> str:
        """``fresh`` | ``stale`` | ``unknown``.

        ``unknown`` means the ledger holds no entry for this artifact (or
        digests are unavailable) — the evidence cannot be vouched for, but
        neither is it provably outdated.
        """
        if not self.entry or not self.recorded_digest or not self.current_digest:
            return "unknown"
        if self.recorded_digest == self.current_digest:
            return "fresh"
        return "stale"


@dataclass
class FreshnessReport:
    """Freshness of every evidence artifact in a goal structure."""

    current_model_digest: str
    items: List[EvidenceFreshness] = field(default_factory=list)

    @property
    def stale(self) -> List[EvidenceFreshness]:
        return [item for item in self.items if item.status == "stale"]

    @property
    def ok(self) -> bool:
        return not self.stale

    def summary(self) -> str:
        if not self.items:
            return "(case has no evidence artifacts)"
        lines = []
        for item in self.items:
            lines.append(
                f"{item.status.upper():8s} {item.solution}: {item.artifact}"
                + (f"  ({item.entry})" if item.entry else "")
            )
        return "\n".join(lines)


def _solutions(node, seen: set, out: List[Solution]) -> None:
    if id(node) in seen:
        return
    seen.add(id(node))
    if isinstance(node, Solution) and node.artifact is not None:
        out.append(node)
    for child in getattr(node, "supported_by", ()) or ():
        _solutions(child, seen, out)


def _artifact_matches(recorded: str, location: str, base_dir) -> bool:
    if recorded == location:
        return True
    rec, loc = Path(recorded), Path(location)
    if base_dir is not None and not loc.is_absolute():
        loc = Path(base_dir) / loc
    try:
        if rec.resolve() == loc.resolve():
            return True
    except OSError:
        pass
    return rec.name == loc.name and rec.name != ""


def check_evidence_freshness(
    root: Goal,
    ledger,
    model=None,
    current_model_digest: Optional[str] = None,
    base_dir: Optional[Path] = None,
) -> FreshnessReport:
    """Which of the case's evidence artifacts are stale against the model?

    For every Solution artifact, the most recent ledger entry that
    exported that artifact is looked up; evidence whose recorded model
    digest no longer matches the current design's digest is **stale** —
    the analysis that produced it predates a design change and must be
    re-run before the assurance case can be trusted (the paper's §8
    "re-evaluated on change" obligation, made checkable).

    ``ledger`` is a :class:`repro.obs.ledger.AnalysisLedger`; pass either
    ``model`` (digested here) or a precomputed ``current_model_digest``.
    """
    if current_model_digest is None:
        from repro.obs.ledger import model_digest

        current_model_digest = model_digest(model)
    report = FreshnessReport(current_model_digest=current_model_digest)
    solutions: List[Solution] = []
    _solutions(root, set(), solutions)
    entries = ledger.entries()
    for solution in solutions:
        item = EvidenceFreshness(
            solution=solution.identifier,
            artifact=solution.artifact.location,
            current_digest=current_model_digest,
        )
        for entry in entries:  # later entries win: the latest re-run counts
            if any(
                _artifact_matches(recorded, solution.artifact.location, base_dir)
                for recorded in entry.artifacts
            ):
                item.entry = entry.entry_id
                item.recorded_digest = entry.model_digest
        report.items.append(item)
    return report
