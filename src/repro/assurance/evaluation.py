"""Automated assurance-case evaluation.

Support propagates bottom-up through the goal structure:

- a **Solution** is SUPPORTED when its artifact's acceptance check passes
  (a solution without an artifact is UNDEVELOPED — evidence was promised
  but nothing machine-checkable backs it);
- a **Strategy** is SUPPORTED when it has subgoals and all are supported;
- a **Goal** is SUPPORTED when it has support and all of it is supported;
  goals explicitly flagged ``undeveloped`` are UNDEVELOPED.

Re-running :func:`evaluate_case` after the design (and hence the generated
FMEDA artefacts) changed is exactly the paper's "automated validation of
system assurance cases".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.assurance.gsn import Goal, Solution, Strategy
from repro.assurance.sacm import ArtifactError


class NodeStatus(enum.Enum):
    SUPPORTED = "supported"
    UNSUPPORTED = "unsupported"
    UNDEVELOPED = "undeveloped"
    ERROR = "error"


@dataclass
class CaseEvaluation:
    """Per-node statuses plus an overall verdict."""

    statuses: Dict[str, NodeStatus] = field(default_factory=dict)
    messages: Dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return all(
            status == NodeStatus.SUPPORTED for status in self.statuses.values()
        )

    def status(self, identifier: str) -> NodeStatus:
        return self.statuses[identifier]

    def failures(self) -> List[str]:
        return [
            identifier
            for identifier, status in self.statuses.items()
            if status != NodeStatus.SUPPORTED
        ]


def evaluate_case(
    root: Goal, base_dir: Optional[Path] = None
) -> CaseEvaluation:
    """Evaluate the case rooted at ``root`` (executing artifact queries)."""
    evaluation = CaseEvaluation()
    _evaluate(root, base_dir, evaluation, set())
    return evaluation


def _evaluate(node, base_dir, evaluation: CaseEvaluation, visiting: set) -> NodeStatus:
    if node.identifier in evaluation.statuses:
        return evaluation.statuses[node.identifier]
    if id(node) in visiting:
        evaluation.statuses[node.identifier] = NodeStatus.ERROR
        evaluation.messages[node.identifier] = "cycle in goal structure"
        return NodeStatus.ERROR
    visiting.add(id(node))
    try:
        status = _evaluate_inner(node, base_dir, evaluation, visiting)
    finally:
        visiting.discard(id(node))
    evaluation.statuses[node.identifier] = status
    return status


def _evaluate_inner(node, base_dir, evaluation, visiting) -> NodeStatus:
    if isinstance(node, Solution):
        if node.artifact is None:
            evaluation.messages[node.identifier] = "no artifact attached"
            return NodeStatus.UNDEVELOPED
        try:
            passed = node.artifact.check(base_dir)
        except ArtifactError as exc:
            evaluation.messages[node.identifier] = str(exc)
            return NodeStatus.ERROR
        if passed:
            return NodeStatus.SUPPORTED
        evaluation.messages[node.identifier] = (
            f"acceptance expression {node.artifact.acceptance!r} is false"
        )
        return NodeStatus.UNSUPPORTED
    if isinstance(node, Strategy):
        if not node.supported_by:
            evaluation.messages[node.identifier] = "strategy has no subgoals"
            return NodeStatus.UNDEVELOPED
        children = [
            _evaluate(child, base_dir, evaluation, visiting)
            for child in node.supported_by
        ]
        return _combine(children)
    if isinstance(node, Goal):
        if node.undeveloped:
            return NodeStatus.UNDEVELOPED
        if not node.supported_by:
            evaluation.messages[node.identifier] = "goal has no support"
            return NodeStatus.UNDEVELOPED
        children = [
            _evaluate(child, base_dir, evaluation, visiting)
            for child in node.supported_by
        ]
        return _combine(children)
    # Context / assumption / justification do not gate support.
    return NodeStatus.SUPPORTED


def _combine(children: List[NodeStatus]) -> NodeStatus:
    if any(status == NodeStatus.ERROR for status in children):
        return NodeStatus.ERROR
    if any(status == NodeStatus.UNSUPPORTED for status in children):
        return NodeStatus.UNSUPPORTED
    if any(status == NodeStatus.UNDEVELOPED for status in children):
        return NodeStatus.UNDEVELOPED
    return NodeStatus.SUPPORTED
