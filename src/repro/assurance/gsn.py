"""Goal Structuring Notation elements.

The node kinds follow the GSN standard (whose founding authors include the
paper's last author): goals are claims, strategies decompose goals,
solutions are evidence (here: artifact-backed, machine-checkable), and
context / assumption / justification annotate the argument.

Structure rules enforced on linking:

- ``supportedBy``: Goal → {Goal, Strategy, Solution}; Strategy → {Goal};
- ``inContextOf``: Goal/Strategy → {Context, Assumption, Justification}.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

from repro.assurance.sacm import ArtifactReference


class GsnError(Exception):
    """Raised for malformed goal structures."""


@dataclass
class _Node:
    identifier: str
    text: str

    @property
    def kind(self) -> str:
        return type(self).__name__


@dataclass
class Context(_Node):
    """Contextual information scoping a goal or strategy."""


@dataclass
class Assumption(_Node):
    """An assumption the argument rests on."""


@dataclass
class Justification(_Node):
    """A rationale for an argument step."""


@dataclass
class Solution(_Node):
    """Evidence: optionally backed by a machine-checkable artifact."""

    artifact: Optional[ArtifactReference] = None


@dataclass
class Strategy(_Node):
    """An argument step decomposing a goal into subgoals."""

    supported_by: List["Goal"] = field(default_factory=list)
    in_context_of: List[Union[Context, Assumption, Justification]] = field(
        default_factory=list
    )

    def add_goal(self, goal: "Goal") -> "Goal":
        self.supported_by.append(goal)
        return goal

    def add_context(
        self, node: Union[Context, Assumption, Justification]
    ) -> Union[Context, Assumption, Justification]:
        self.in_context_of.append(node)
        return node


@dataclass
class Goal(_Node):
    """A claim, supported by subgoals, strategies or solutions."""

    undeveloped: bool = False
    supported_by: List[Union["Goal", Strategy, Solution]] = field(
        default_factory=list
    )
    in_context_of: List[Union[Context, Assumption, Justification]] = field(
        default_factory=list
    )

    def add_support(
        self, node: Union["Goal", Strategy, Solution]
    ) -> Union["Goal", Strategy, Solution]:
        if not isinstance(node, (Goal, Strategy, Solution)):
            raise GsnError(
                f"a Goal may only be supported by Goal/Strategy/Solution, "
                f"got {type(node).__name__}"
            )
        self.supported_by.append(node)
        return node

    def add_context(
        self, node: Union[Context, Assumption, Justification]
    ) -> Union[Context, Assumption, Justification]:
        if not isinstance(node, (Context, Assumption, Justification)):
            raise GsnError(
                f"context links accept Context/Assumption/Justification, "
                f"got {type(node).__name__}"
            )
        self.in_context_of.append(node)
        return node


def _walk(node, depth: int, lines: List[str], seen: set) -> None:
    marker = {
        "Goal": "G",
        "Strategy": "S",
        "Solution": "Sn",
        "Context": "C",
        "Assumption": "A",
        "Justification": "J",
    }[node.kind]
    suffix = ""
    if isinstance(node, Goal) and node.undeveloped:
        suffix = " [undeveloped]"
    if isinstance(node, Solution) and node.artifact is not None:
        suffix = f" [artifact: {node.artifact.name}]"
    lines.append(f"{'  ' * depth}{marker} {node.identifier}: {node.text}{suffix}")
    if id(node) in seen:
        lines.append(f"{'  ' * (depth + 1)}(shared subtree, already shown)")
        return
    seen.add(id(node))
    for context in getattr(node, "in_context_of", []):
        _walk(context, depth + 1, lines, seen)
    for child in getattr(node, "supported_by", []):
        _walk(child, depth + 1, lines, seen)


def render_goal_structure(root: Goal) -> str:
    """An indented text rendering of the goal structure."""
    lines: List[str] = []
    _walk(root, 0, lines, set())
    return "\n".join(lines)


def iter_nodes(root: Goal):
    """All nodes of the structure, depth-first, each once."""
    seen = set()
    stack = [root]
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        yield node
        stack.extend(getattr(node, "in_context_of", []))
        stack.extend(getattr(node, "supported_by", []))
