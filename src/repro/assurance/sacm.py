"""SACM-facing artifact layer.

An :class:`ArtifactReference` is the reproduction of ACME's ``Artifact``
class instance (Structured Assurance Case Metamodel): it names an external
artefact (by location / driver type / metadata), an extraction query, and a
machine-checkable *acceptance expression* evaluated over the query result.

In the paper's example the artefact is the generated FMEDA workbook, the
query computes the SPFM and the acceptance expression checks it against the
target ASIL's threshold — re-running the evaluation after a design change
re-validates the assurance case automatically.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Optional

from repro.drivers import QueryError, evaluate_query, open_model
from repro.drivers.base import DriverError


class ArtifactError(Exception):
    """Raised when an artifact cannot be opened, queried or checked."""


@dataclass
class ArtifactReference:
    """An external artefact with an extraction query and acceptance check.

    ``query`` is an RQL expression over the opened artefact (``rows()``
    etc.); ``acceptance`` is an RQL expression over ``result`` (the query's
    value) that must evaluate truthy for the artifact to support its claim.
    """

    name: str
    location: str
    driver_type: str = "table"
    metadata: str = ""
    query: str = ""
    acceptance: str = ""
    description: str = ""

    def fetch(self, base_dir: Optional[Path] = None) -> Any:
        """Open the artefact and run the extraction query."""
        path = Path(self.location)
        if base_dir is not None and not path.is_absolute():
            path = Path(base_dir) / path
        try:
            driver = open_model(path, self.driver_type, self.metadata)
        except DriverError as exc:
            raise ArtifactError(
                f"artifact {self.name!r}: cannot open {path}: {exc}"
            ) from exc
        if not self.query.strip():
            return driver
        try:
            return evaluate_query(self.query, driver)
        except QueryError as exc:
            raise ArtifactError(
                f"artifact {self.name!r}: query failed: {exc}"
            ) from exc

    def check(self, base_dir: Optional[Path] = None) -> bool:
        """Fetch and evaluate the acceptance expression.

        An artifact without an acceptance expression supports its claim by
        mere existence (the fetch must succeed).
        """
        result = self.fetch(base_dir)
        if not self.acceptance.strip():
            return True
        try:
            return bool(
                evaluate_query(self.acceptance, variables={"result": result})
            )
        except QueryError as exc:
            raise ArtifactError(
                f"artifact {self.name!r}: acceptance check failed: {exc}"
            ) from exc
