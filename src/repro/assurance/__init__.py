"""Model-based assurance cases (the ACME substitute; paper Section V-C).

The paper integrates DECISIVE's artefacts into a model-based assurance case
(ACME, built on the Structured Assurance Case Metamodel): an ``Artifact``
element traces to the generated FMEDA result and stores a query computing
the SPFM, so the case is *automatically re-evaluated* when the design — and
hence the FMEDA — changes.

- :mod:`repro.assurance.gsn` — Goal Structuring Notation elements (goals,
  strategies, solutions, context) with artifact-backed solutions;
- :mod:`repro.assurance.sacm` — the SACM-facing artifact layer: an
  ``ArtifactReference`` names an external artefact, an extraction query and
  a machine-checkable acceptance expression;
- :mod:`repro.assurance.evaluation` — automated case evaluation: execute
  every solution's query, check its acceptance expression, propagate
  support up the goal structure.
"""

from repro.assurance.gsn import (
    Assumption,
    Context,
    Goal,
    GsnError,
    Justification,
    Solution,
    Strategy,
    render_goal_structure,
)
from repro.assurance.sacm import ArtifactReference
from repro.assurance.evaluation import (
    CaseEvaluation,
    EvidenceFreshness,
    FreshnessReport,
    NodeStatus,
    check_evidence_freshness,
    evaluate_case,
)
from repro.assurance.patterns import (
    case_from_safety_concept,
    mechanism_artifact,
    spfm_artifact,
)

__all__ = [
    "Goal",
    "Strategy",
    "Solution",
    "Context",
    "Assumption",
    "Justification",
    "GsnError",
    "render_goal_structure",
    "ArtifactReference",
    "NodeStatus",
    "CaseEvaluation",
    "evaluate_case",
    "EvidenceFreshness",
    "FreshnessReport",
    "check_evidence_freshness",
    "case_from_safety_concept",
    "spfm_artifact",
    "mechanism_artifact",
]
