"""GSN pattern instantiation — from a safety concept to an assurance case.

Section V-C integrates DECISIVE's artefacts into an assurance case by hand;
this module automates the construction using the classic *hazard-directed
breakdown* pattern (from the GSN community's pattern catalogue):

    G1  system acceptably safe
      S1  argue over all identified hazards
        G-H<i>  hazard H<i> mitigated to its target ASIL
          S-H<i> argue over the architectural metrics + allocated
                 safety requirements
            G-M<i>  SPFM meets the target      <- Sn: FMEDA artifact query
            G-R<i>  mechanisms implemented     <- Sn: deployment records

Every leaf solution is machine-checkable (an
:class:`~repro.assurance.sacm.ArtifactReference` over the generated FMEDA
workbook), so the produced case re-validates itself whenever the design —
and hence the FMEDA — changes.
"""

from __future__ import annotations

from typing import Optional

from repro.assurance.gsn import Context, Goal, Solution, Strategy
from repro.assurance.sacm import ArtifactReference
from repro.decisive.process import SafetyConcept
from repro.safety.metrics import ASIL_SPFM_TARGETS


def spfm_artifact(
    fmeda_location: str,
    target_asil: str,
    name: str = "generated FMEDA",
) -> ArtifactReference:
    """The SPFM acceptance artifact over a saved FMEDA workbook."""
    target = ASIL_SPFM_TARGETS.get(target_asil, 0.0)
    return ArtifactReference(
        name=name,
        location=fmeda_location,
        driver_type="table",
        metadata="Summary",
        query="rows('Summary')[0]['SPFM']",
        acceptance=f"result >= {target}",
        description=(
            f"SPFM from the generated FMEDA must meet the {target_asil} "
            f"target ({target:.0%})"
        ),
    )


def mechanism_artifact(
    fmeda_location: str,
    component: str,
    failure_mode: str,
    mechanism: str,
    coverage: float,
) -> ArtifactReference:
    """Checks that the FMEDA records the mechanism on the failure mode with
    at least the claimed coverage."""
    query = (
        "[prop(r, 'SM_Coverage') for r in rows('FMEDA') "
        f"if prop(r, 'Failure_Mode') == '{failure_mode}']"
    )
    return ArtifactReference(
        name=f"{mechanism} on {component}",
        location=fmeda_location,
        driver_type="table",
        metadata="FMEDA",
        query=query,
        acceptance=(
            f"len(result) > 0 and max(v or 0 for v in result) >= {coverage}"
        ),
        description=(
            f"the FMEDA must record {mechanism} covering {component}/"
            f"{failure_mode} at >= {coverage:.0%}"
        ),
    )


def case_from_safety_concept(
    concept: SafetyConcept,
    fmeda_location: str,
) -> Goal:
    """Instantiate the hazard-directed breakdown over a safety concept.

    ``fmeda_location`` is the path (relative to the evaluation base dir) of
    the FMEDA workbook saved with
    :func:`~repro.safety.report.save_fmeda_workbook`.
    """
    top = Goal(
        "G1",
        f"{concept.system} is acceptably safe to operate "
        f"(target {concept.target_asil})",
    )
    top.add_context(
        Context(
            "C1",
            f"safety requirements: {', '.join(concept.safety_requirements) or '-'}",
        )
    )
    hazard_strategy = top.add_support(
        Strategy("S1", "Argument over all identified hazards")
    )
    hazards = concept.hazards or ["(unnamed hazard)"]
    for index, hazard in enumerate(hazards, start=1):
        hazard_goal = hazard_strategy.add_goal(
            Goal(
                f"G-H{index}",
                f"Hazard {hazard} is mitigated to {concept.target_asil}",
            )
        )
        metric_strategy = hazard_goal.add_support(
            Strategy(
                f"S-H{index}",
                "Argument over architectural metrics and allocated "
                "safety mechanisms",
            )
        )
        metric_goal = metric_strategy.add_goal(
            Goal(
                f"G-M{index}",
                f"The single point fault metric meets the "
                f"{concept.target_asil} target",
            )
        )
        metric_goal.add_support(
            Solution(
                f"Sn-M{index}",
                "Generated FMEDA (SPFM summary)",
                artifact=spfm_artifact(fmeda_location, concept.target_asil),
            )
        )
        if concept.deployments:
            mech_goal = metric_strategy.add_goal(
                Goal(
                    f"G-R{index}",
                    "Every allocated safety mechanism is recorded with its "
                    "claimed coverage",
                )
            )
            for d_index, deployment in enumerate(concept.deployments, start=1):
                mech_goal.add_support(
                    Solution(
                        f"Sn-R{index}.{d_index}",
                        f"{deployment.mechanism} on {deployment.component}",
                        artifact=mechanism_artifact(
                            fmeda_location,
                            deployment.component,
                            deployment.failure_mode,
                            deployment.mechanism,
                            deployment.coverage,
                        ),
                    )
                )
        else:
            metric_strategy.add_goal(
                Goal(
                    f"G-R{index}",
                    "No safety mechanisms were required",
                    undeveloped=False,
                )
            ).add_support(
                Solution(
                    f"Sn-R{index}",
                    "FMEDA shows the bare design meets the target",
                    artifact=spfm_artifact(
                        fmeda_location, concept.target_asil,
                        name="bare-design FMEDA",
                    ),
                )
            )
    return top
