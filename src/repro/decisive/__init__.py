"""The DECISIVE process — orchestration of the five-step methodology.

- :mod:`repro.decisive.process` — the iterative design loop (Fig. 1):
  requirements/hazards in, reliability aggregation (Step 3), automated
  evaluation (Step 4a), safety-mechanism refinement (Step 4b), safety
  concept out (Step 5), iterating until the target integrity level holds;
- :mod:`repro.decisive.analyst` — a calibrated simulator of the manual
  safety process, standing in for the paper's human participants in the
  efficiency (Table V) and correctness (RQ1) experiments.
"""

from repro.decisive.process import (
    DecisiveProcess,
    IterationRecord,
    ProcessLog,
    SafetyConcept,
)
from repro.decisive.analyst import (
    AnalystConfig,
    ProcessOutcome,
    simulate_process,
    simulate_manual_fmea,
)
from repro.decisive.hara import HazardousEventSpec, HazardSpec, perform_hara
from repro.decisive.impact import (
    ImpactReport,
    ModelDiff,
    assess_impact,
    diff_models,
)

__all__ = [
    "DecisiveProcess",
    "ProcessLog",
    "IterationRecord",
    "SafetyConcept",
    "AnalystConfig",
    "ProcessOutcome",
    "simulate_process",
    "simulate_manual_fmea",
    "HazardSpec",
    "HazardousEventSpec",
    "perform_hara",
    "ModelDiff",
    "ImpactReport",
    "diff_models",
    "assess_impact",
]
