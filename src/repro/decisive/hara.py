"""HARA — Hazard Analysis and Risk Assessment (DECISIVE Step 1).

Builds a SSAM hazard log from declarative hazardous-event specifications
and determines each hazard's target integrity level from the ISO 26262
risk graph (S/E/C), as Section II-A describes: HARA precedes everything,
and safety requirements with integrity levels are derived from its
findings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.metamodel import ModelObject
from repro.safety.asil import risk_graph
from repro.ssam import SSAMModel
from repro.ssam.hazard import (
    cause,
    control_measure,
    hazard,
    hazard_package,
    hazardous_situation,
)
from repro.ssam.requirements import requirement_package, safety_requirement

#: Ordering used to take the worst-case ASIL across situations.
_ASIL_ORDER = ["QM", "ASIL-A", "ASIL-B", "ASIL-C", "ASIL-D"]


@dataclass
class HazardousEventSpec:
    """One hazardous event: situation + S/E/C classes + causes/measures."""

    situation: str
    severity: str
    exposure: str
    controllability: str
    causes: List[str] = field(default_factory=list)
    control_measures: List[str] = field(default_factory=list)

    @property
    def asil(self) -> str:
        return risk_graph(self.severity, self.exposure, self.controllability)


@dataclass
class HazardSpec:
    """One hazard-log entry with its hazardous events."""

    identifier: str
    text: str
    events: List[HazardousEventSpec] = field(default_factory=list)

    @property
    def target_asil(self) -> str:
        """Worst-case ASIL over the hazard's events (QM when none)."""
        if not self.events:
            return "QM"
        return max(
            (event.asil for event in self.events),
            key=_ASIL_ORDER.index,
        )


def perform_hara(
    model: SSAMModel,
    hazards: List[HazardSpec],
    package_name: str = "HazardLog",
    derive_requirements: bool = True,
) -> ModelObject:
    """Build the hazard log (and optionally top-level safety requirements).

    For each hazard the worst-case ASIL across its hazardous events becomes
    the hazard's ``integrityTarget``; when ``derive_requirements`` is set, a
    top-level safety requirement at that integrity level is created and
    linked to the hazard via the ``cites`` facility.

    Returns the created hazard package.
    """
    package = hazard_package(package_name)
    requirements = (
        requirement_package(f"{package_name}_SafetyRequirements")
        if derive_requirements
        else None
    )
    for spec in hazards:
        element = hazard(spec.identifier, spec.text, spec.target_asil)
        for event in spec.events:
            situation = hazardous_situation(
                f"{spec.identifier}/{event.situation}",
                severity=event.severity,
                exposure=event.exposure,
                controllability=event.controllability,
            )
            for cause_text in event.causes:
                situation.add("causes", cause(cause_text))
            for measure_name in event.control_measures:
                situation.add(
                    "controlMeasures", control_measure(measure_name)
                )
            element.add("situations", situation)
        package.add("elements", element)
        if requirements is not None and spec.target_asil != "QM":
            requirement = safety_requirement(
                f"SR-{spec.identifier}",
                f"The system shall mitigate hazard {spec.identifier}: "
                f"{spec.text}",
                integrity_level=spec.target_asil,
            )
            requirement.add("cites", element)
            requirements.add("elements", requirement)
    model.add_hazard_package(package)
    if requirements is not None and requirements.get("elements"):
        model.add_requirement_package(requirements)
    return package
