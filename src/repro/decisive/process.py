"""The five-step DECISIVE loop over a SSAM model.

The class drives exactly the methodology of Fig. 1: given the Step 1/2
artefacts (a SSAM model carrying requirements, a hazard log and an
architecture), each iteration aggregates reliability data (Step 3),
evaluates the design (Step 4a: graph FMEA + SPFM/ASIL), and — when the
target is unmet — searches and deploys safety mechanisms (Step 4b).  When
the design is acceptably safe a *safety concept* (Step 5) is synthesised:
the safety requirements, hazard targets, analysis results and the chosen
mechanism allocations, with traceability into the model.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro import obs
from repro.federation import FederationReport, aggregate_reliability
from repro.metamodel import MetamodelError, ModelResource
from repro.reliability import ReliabilityModel
from repro.safety import (
    FmeaResult,
    FmedaResult,
    run_fmeda,
    run_ssam_fmea,
    search_for_target,
)
from repro.safety.mechanisms import Deployment, SafetyMechanismModel
from repro.safety.metrics import asil_from_spfm, spfm
from repro.ssam import SSAMModel
from repro.ssam.architecture import safety_mechanism
from repro.ssam.base import text_of


class ProcessError(Exception):
    """Raised when the process cannot run (no architecture, no target…)."""


@dataclass
class IterationRecord:
    """What one DECISIVE iteration did and found."""

    index: int
    spfm: float
    asil: str
    safety_related: List[str]
    deployments: List[Deployment] = field(default_factory=list)
    met_target: bool = False
    #: Provenance: the analysis-ledger entry recorded for this iteration
    #: (empty when the process runs without a ledger) and the human-readable
    #: delta against the previous iteration's entry.
    ledger_entry: str = ""
    diff_summary: str = ""


@dataclass
class SafetyConcept:
    """The Step 5 artefact: requirements, allocations and evidence."""

    system: str
    target_asil: str
    achieved_asil: str
    spfm: float
    safety_requirements: List[str]
    hazards: List[str]
    deployments: List[Deployment]
    fmeda: FmedaResult


@dataclass
class ProcessLog:
    """Full record of one DECISIVE run."""

    system: str
    target_asil: str
    iterations: List[IterationRecord] = field(default_factory=list)
    concept: Optional[SafetyConcept] = None

    @property
    def met_target(self) -> bool:
        return bool(self.iterations) and self.iterations[-1].met_target

    @property
    def final_spfm(self) -> float:
        if not self.iterations:
            raise ProcessError("process has not run")
        return self.iterations[-1].spfm


class DecisiveProcess:
    """Drives DECISIVE Steps 3–5 over a SSAM model."""

    def __init__(
        self,
        model: SSAMModel,
        reliability: ReliabilityModel,
        mechanisms: SafetyMechanismModel,
        target_asil: str = "ASIL-B",
        overwrite_reliability: bool = False,
        ledger=None,
        search_strategy: str = "dp",
    ) -> None:
        if not model.component_packages or not model.top_components():
            raise ProcessError("model has no architecture (Step 2 missing)")
        self.model = model
        self.reliability = reliability
        self.mechanisms = mechanisms
        self.target_asil = target_asil
        #: Optimizer backend for Step 4b: the exact separable Pareto DP
        #: (default), ``"greedy"``, or legacy ``"exhaustive"`` enumeration.
        self.search_strategy = search_strategy
        #: When set, Step 3 replaces hand-modelled failure data with the
        #: catalogue's — the right mode when re-running the process against
        #: revised reliability data (e.g. an environmental derating).
        self.overwrite_reliability = overwrite_reliability
        #: Optional :class:`repro.obs.ledger.AnalysisLedger`.  When set,
        #: every iteration records a provenance entry and auto-diffs
        #: against the previous one (the iteration observatory).
        self.ledger = ledger
        self.deployments: List[Deployment] = []
        self._system = model.top_components()[0]
        #: (system digest, FMEA) of the latest Step 4a run.  The loop calls
        #: Step 4a once per iteration plus once for the final FMEDA, but the
        #: architecture only changes when deployments are written back into
        #: the model — so unchanged-digest re-evaluations reuse the result.
        self._fmea_cache: Optional[Tuple[str, FmeaResult]] = None

    def _system_digest(self) -> Optional[str]:
        """Content hash of the system under analysis, or ``None`` when the
        model cannot be serialised (caching then simply switches off)."""
        try:
            payload = ModelResource().to_dict(self._system)
            blob = json.dumps(payload, sort_keys=True, default=repr)
        except (MetamodelError, TypeError, ValueError):
            return None
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    # -- steps ------------------------------------------------------------

    def step3_aggregate(self) -> FederationReport:
        """Aggregate reliability data into the design (Step 3)."""
        with obs.span("decisive.step3_aggregate"):
            return aggregate_reliability(
                self.model,
                self.reliability,
                overwrite=self.overwrite_reliability,
            )

    def step4a_evaluate(self) -> Tuple[FmeaResult, float, str]:
        """Automated FMEA + architectural metrics (Step 4a).

        The FMEA is reused from the previous evaluation while the system's
        content digest is unchanged (deployment *planning* does not touch
        the architecture; only :meth:`apply_deployments_to_model` does).
        """
        digest = self._system_digest()
        cached = self._fmea_cache
        if digest is not None and cached is not None and cached[0] == digest:
            fmea = cached[1]
            if obs.enabled():
                obs.counter("decisive_fmea_reuses").inc()
        else:
            with obs.span("decisive.fmea"):
                fmea = run_ssam_fmea(self._system, self.reliability)
            # The analysis annotates the model (safetyRelated flags), so
            # the digest to remember is the *post-run* state: an unchanged
            # model re-hashes to exactly this value next time.
            digest = self._system_digest()
            if digest is not None:
                self._fmea_cache = (digest, fmea)
        with obs.span("decisive.metric_check") as sp:
            value = spfm(fmea, self.deployments)
            asil = asil_from_spfm(value)
            sp.set(spfm=value, asil=asil)
        return fmea, value, asil

    def step4b_refine(self, fmea: FmeaResult) -> List[Deployment]:
        """Search the mechanism catalogue for a deployment meeting the
        target (Step 4b); returns the *new* deployments (possibly empty)."""
        with obs.span(
            "decisive.step4b_refine",
            target=self.target_asil,
            strategy=self.search_strategy,
        ):
            plan = search_for_target(
                fmea, self.mechanisms, self.target_asil,
                strategy=self.search_strategy,
            )
        if plan is None:
            return []
        existing = {(d.component, d.failure_mode) for d in self.deployments}
        fresh = [
            d
            for d in plan.deployments
            if (d.component, d.failure_mode) not in existing
        ]
        self.deployments = list(plan.deployments)
        return fresh

    def apply_deployments_to_model(self) -> int:
        """Write the chosen mechanisms into the SSAM model (the change that
        the next process iteration would formalise via change management)."""
        applied = 0
        components = {
            (text_of(c) or c.get("id")): c
            for c in self.model.elements_of_kind("Component")
        }
        for deployment in self.deployments:
            component = components.get(deployment.component)
            if component is None:
                continue
            mech = safety_mechanism(
                deployment.mechanism, deployment.coverage, deployment.cost
            )
            covered = [
                mode
                for mode in component.get("failureModes")
                if (text_of(mode) or mode.get("id")) == deployment.failure_mode
            ]
            mech.set("covers", covered)
            component.add("safetyMechanisms", mech)
            applied += 1
        return applied

    def step5_safety_concept(self, fmeda: FmedaResult) -> SafetyConcept:
        """Synthesise the safety concept (Step 5)."""
        return SafetyConcept(
            system=self.model.name,
            target_asil=self.target_asil,
            achieved_asil=fmeda.asil,
            spfm=fmeda.spfm,
            safety_requirements=[
                text_of(r) or r.get("id")
                for r in self.model.safety_requirements()
            ],
            hazards=[text_of(h) or h.get("id") for h in self.model.hazards()],
            deployments=list(self.deployments),
            fmeda=fmeda,
        )

    # -- the loop -----------------------------------------------------------

    def run(self, max_iterations: int = 10) -> ProcessLog:
        """Iterate Steps 3–4 until the target holds (or iterations run out),
        then synthesise the safety concept."""
        log = ProcessLog(system=self.model.name, target_asil=self.target_asil)
        previous_entry = None
        with obs.span(
            "decisive.process",
            system=self.model.name,
            target=self.target_asil,
        ) as process_span:
            self.step3_aggregate()
            for index in range(1, max_iterations + 1):
                with obs.span("decisive.iteration", index=index) as it_span:
                    fmea, value, asil = self.step4a_evaluate()
                    record = IterationRecord(
                        index=index,
                        spfm=value,
                        asil=asil,
                        safety_related=fmea.safety_related_components(),
                        met_target=_meets(value, self.target_asil),
                    )
                    log.iterations.append(record)
                    it_span.set(
                        spfm=value, asil=asil, met_target=record.met_target
                    )
                    if record.met_target:
                        previous_entry = self._record_iteration(
                            record, fmea, it_span, previous_entry
                        )
                        self._emit_iteration(record)
                        break
                    fresh = self.step4b_refine(fmea)
                    record.deployments = fresh
                    it_span.set(new_deployments=len(fresh))
                    previous_entry = self._record_iteration(
                        record, fmea, it_span, previous_entry
                    )
                    self._emit_iteration(record)
                    if not fresh:
                        break  # catalogue exhausted; target unreachable
            fmea, _, _ = self.step4a_evaluate()
            with obs.span("decisive.fmeda") as fmeda_span:
                fmeda = run_fmeda(fmea, self.deployments)
                self._record_fmeda(fmeda, fmeda_span)
            log.concept = self.step5_safety_concept(fmeda)
            process_span.set(
                iterations=len(log.iterations), met_target=log.met_target
            )
        return log

    def _emit_iteration(self, record) -> None:
        """One ``iteration_finished`` progress event per Step 3–4 turn
        (no-op while the event plane is disabled)."""
        obs.emit_event(
            "iteration_finished",
            system=self.model.name,
            index=record.index,
            spfm=record.spfm,
            asil=record.asil,
            met_target=record.met_target,
            new_deployments=len(record.deployments),
        )

    # -- provenance --------------------------------------------------------

    def _record_iteration(self, record, fmea, it_span, previous_entry):
        """Ledger one iteration and auto-diff it against the previous one.

        Returns the appended entry (or ``previous_entry`` unchanged when
        no ledger is configured).  Never lets provenance bookkeeping abort
        the safety analysis itself.
        """
        if self.ledger is None:
            return previous_entry
        from repro.obs.ledger import record_iteration

        try:
            entry = record_iteration(
                self.ledger,
                fmea,
                index=record.index,
                spfm=record.spfm,
                asil=record.asil,
                deployments=self.deployments,
                model_digest_value=self._system_digest() or "",
                reliability=self.reliability,
                config={
                    "target": self.target_asil,
                    "search_strategy": self.search_strategy,
                },
                meta={"met_target": record.met_target},
            )
        except Exception:  # noqa: BLE001 — provenance must not break the loop
            return previous_entry
        record.ledger_entry = entry.entry_id
        it_span.set(ledger_entry=entry.entry_id)
        if previous_entry is not None:
            from repro.obs.history import diff_entries

            record.diff_summary = diff_entries(previous_entry, entry).summary()
        return entry

    def _record_fmeda(self, fmeda, span) -> None:
        if self.ledger is None:
            return
        from repro.obs.ledger import record_fmeda

        try:
            entry = record_fmeda(
                self.ledger,
                fmeda,
                model=self._system,
                reliability=self.reliability,
                config={"target": self.target_asil},
                meta={"process": "decisive"},
            )
        except Exception:  # noqa: BLE001
            return
        span.set(ledger_entry=entry.entry_id)


def _meets(value: float, target_asil: str) -> bool:
    from repro.safety.metrics import spfm_meets

    return spfm_meets(value, target_asil)
