"""Change-impact analysis across DECISIVE artefacts.

SCSE "is incremental and iterative: when new hazards are identified, or
system requirements are changed, every artefact along the process shall be
updated and re-validated to analyse the impact of all changes" (Section
II-A).  This module automates the first half of that loop:

- :func:`diff_models` — a structural diff of two SSAM models (added /
  removed / modified components, failure modes, mechanisms);
- :func:`assess_impact` — maps the diff onto the downstream artefacts that
  must be re-validated: affected FMEA rows, requirements citing changed
  components, hazards cited by changed failure modes, and whether the
  architectural metrics must be recomputed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.metamodel import ModelObject
from repro.safety.fmea import FmeaResult
from repro.ssam import SSAMModel
from repro.ssam.base import text_of


@dataclass
class ModelDiff:
    """Structural differences between two SSAM models (by component name)."""

    added_components: List[str] = field(default_factory=list)
    removed_components: List[str] = field(default_factory=list)
    modified_components: List[str] = field(default_factory=list)
    #: component -> human-readable list of what changed
    details: Dict[str, List[str]] = field(default_factory=dict)

    @property
    def empty(self) -> bool:
        return not (
            self.added_components
            or self.removed_components
            or self.modified_components
        )

    def changed(self) -> Set[str]:
        return set(
            self.added_components
            + self.removed_components
            + self.modified_components
        )


def _component_signature(component: ModelObject) -> Dict[str, object]:
    return {
        "fit": component.get("fit"),
        "class": component.get("componentClass"),
        "type": component.get("componentType"),
        "dynamic": component.get("dynamic"),
        "failure_modes": tuple(
            sorted(
                (
                    text_of(m) or m.get("id"),
                    m.get("nature"),
                    round(float(m.get("distribution") or 0.0), 9),
                )
                for m in component.get("failureModes")
            )
        ),
        "mechanisms": tuple(
            sorted(
                (
                    text_of(m) or m.get("id"),
                    round(float(m.get("coverage") or 0.0), 9),
                )
                for m in component.get("safetyMechanisms")
            )
        ),
    }


def diff_models(old: SSAMModel, new: SSAMModel) -> ModelDiff:
    """Structural component-level diff keyed by component name."""
    old_components = {
        (text_of(c) or c.get("id")): c for c in old.elements_of_kind("Component")
    }
    new_components = {
        (text_of(c) or c.get("id")): c for c in new.elements_of_kind("Component")
    }
    diff = ModelDiff()
    for name in sorted(new_components.keys() - old_components.keys()):
        diff.added_components.append(name)
        diff.details[name] = ["component added"]
    for name in sorted(old_components.keys() - new_components.keys()):
        diff.removed_components.append(name)
        diff.details[name] = ["component removed"]
    for name in sorted(old_components.keys() & new_components.keys()):
        before = _component_signature(old_components[name])
        after = _component_signature(new_components[name])
        if before == after:
            continue
        changes = [
            f"{key}: {before[key]!r} -> {after[key]!r}"
            for key in before
            if before[key] != after[key]
        ]
        diff.modified_components.append(name)
        diff.details[name] = changes
    return diff


@dataclass
class ImpactReport:
    """Artefacts a change invalidates."""

    diff: ModelDiff
    affected_fmea_rows: List[Tuple[str, str]] = field(default_factory=list)
    affected_requirements: List[str] = field(default_factory=list)
    affected_hazards: List[str] = field(default_factory=list)
    metrics_stale: bool = False
    reanalysis_required: bool = False

    def summary(self) -> str:
        lines = [
            f"changed components : {sorted(self.diff.changed()) or '-'}",
            f"stale FMEA rows    : {self.affected_fmea_rows or '-'}",
            f"requirements       : {self.affected_requirements or '-'}",
            f"hazards            : {self.affected_hazards or '-'}",
            f"metrics stale      : {self.metrics_stale}",
            f"re-analysis needed : {self.reanalysis_required}",
        ]
        return "\n".join(lines)


def assess_impact(
    old: SSAMModel,
    new: SSAMModel,
    fmea: Optional[FmeaResult] = None,
) -> ImpactReport:
    """Map a model change onto the artefacts that must be re-validated.

    ``fmea`` is the analysis performed on ``old``; its rows touching
    changed components are stale.  Requirements and hazards are affected
    when they cite (or are cited by) a changed component or its failure
    modes.
    """
    diff = diff_models(old, new)
    report = ImpactReport(diff=diff)
    if diff.empty:
        return report
    changed = diff.changed()
    report.reanalysis_required = True
    report.metrics_stale = True

    if fmea is not None:
        report.affected_fmea_rows = [
            (row.component, row.failure_mode)
            for row in fmea.rows
            if row.component in changed
        ]

    # Requirements citing changed components (check both models: a removed
    # component's requirements live only in the old model).
    for model in (old, new):
        for requirement in model.elements_of_kind("Requirement"):
            name = text_of(requirement) or requirement.get("id")
            if name in report.affected_requirements:
                continue
            for cited in requirement.get("cites"):
                cited_name = text_of(cited) or cited.get("id")
                if cited.is_kind_of("Component") and cited_name in changed:
                    report.affected_requirements.append(name)
                    break

    # Hazards cited by the failure modes of changed components.
    for model in (old, new):
        for component in model.elements_of_kind("Component"):
            name = text_of(component) or component.get("id")
            if name not in changed:
                continue
            for mode in component.get("failureModes"):
                for hazard in mode.get("hazards"):
                    hazard_name = text_of(hazard) or hazard.get("id")
                    if hazard_name not in report.affected_hazards:
                        report.affected_hazards.append(hazard_name)
    return report
