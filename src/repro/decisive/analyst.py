"""A calibrated simulator of the manual safety-analysis process.

The paper's efficiency (Table V) and correctness (RQ1) experiments used two
human safety professionals; offline we substitute a stochastic analyst
model (see DESIGN.md) whose parameters are calibrated to the published
figures:

- **time model** — a manual iteration costs ``elements × minutes_per_element``
  plus mechanism-search and change-management overheads; a tool-supported
  iteration costs a short review pass plus change management (the analysis
  itself runs in seconds);
- **error model** — FMEA is "a highly subjective analysis technique": each
  manually-produced row disagrees with the algorithmic result with a small
  probability, *but never on rows whose flip would change the set of
  safety-related components* (the paper observed 1.5 % / 2.67 % row-level
  disagreement while all safety-related components were identified by both
  participants — the error model reproduces exactly that regime);
- **iteration model** — how many design iterations a participant takes is
  participant- and complexity-dependent (2–6 in the paper), drawn from the
  seeded RNG.
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.safety.fmea import FmeaResult


@dataclass
class AnalystConfig:
    """Calibration constants for the analyst simulator.

    The structure follows what Table V shows: total time tracks *system
    size*, not iteration count (Participant A spent 505 min on System A
    over 5 iterations and 497 min over 3) — so the first full analysis pass
    dominates and later iterations are incremental.  Defaults reproduce the
    published magnitudes: System A (102 elements) ~500 manual / ~60
    tool-supported minutes; System B (230 elements) ~1150 / ~105.
    """

    #: Manual minutes per design element for the initial full FMEA pass
    #: (reading the design, filling rows, tracing effects).
    manual_minutes_per_element: float = 3.5
    #: Manual minutes per safety-related component for mechanism search.
    manual_minutes_per_sm_search: float = 6.0
    #: Manual incremental re-analysis minutes per element per iteration.
    manual_incremental_per_element: float = 0.15
    #: Manual change-management minutes per iteration.
    manual_change_management: float = 12.0
    #: Tool-supported one-off review minutes per design element (checking
    #: the generated FMEA once).
    auto_review_minutes_per_element: float = 0.45
    #: Tool-supported minutes per iteration (invoke analysis, inspect).
    auto_minutes_per_iteration: float = 2.0
    #: One-off tool setup minutes (importing models, wiring references).
    auto_setup_minutes: float = 8.0
    #: Relative jitter on every time term (within-task variability).
    time_jitter: float = 0.08
    #: Participant-level speed factor spread (between-participant).
    participant_spread: float = 0.12
    #: Probability that a manual FMEA row disagrees with the algorithm,
    #: *conditional on the row being non-pivotal* (pivotal rows — those
    #: whose flip would change the safety-related component set — are the
    #: clear-cut calls both the paper's participants got right).  With
    #: roughly a third of rows non-pivotal on the evaluation subjects, this
    #: lands the overall row-level disagreement in the paper's 1.5–2.7 %
    #: band.
    manual_disagreement_rate: float = 0.06


@dataclass
class ProcessOutcome:
    """Result of one simulated design campaign (one Table V cell)."""

    system: str
    participant: str
    mode: str  # 'manual' | 'auto'
    minutes: float
    iterations: int
    tool_seconds: float = 0.0

    def as_row(self) -> dict:
        return {
            "System": self.system,
            "Participant": f"{self.participant}({'Man.' if self.mode == 'manual' else 'Auto.'})",
            "Time spent (minutes)": round(self.minutes),
            "No. Iterations": self.iterations,
        }


def _jitter(rng: np.random.Generator, value: float, config: AnalystConfig) -> float:
    return value * float(rng.normal(1.0, config.time_jitter))


def simulate_manual_fmea(
    truth: FmeaResult,
    rng: np.random.Generator,
    config: Optional[AnalystConfig] = None,
) -> Tuple[FmeaResult, float]:
    """Produce a manual analyst's FMEA: the algorithmic truth perturbed by
    subjective row-level disagreement, plus the minutes it took.

    Returns ``(manual_result, disagreement_fraction)``.
    """
    config = config or AnalystConfig()
    manual = FmeaResult(
        system=truth.system,
        method="manual",
        baseline_readings=dict(truth.baseline_readings),
        uncovered=list(truth.uncovered),
    )
    sr_components = set(truth.safety_related_components())
    # Rows whose flip would alter the safety-related component set are the
    # clear-cut ones both participants get right: a row is *pivotal* when it
    # is its component's only safety-related row, or when flipping a
    # non-related row would newly mark a non-SR component.
    remaining_sr: dict = {}
    for row in truth.rows:
        if row.safety_related:
            remaining_sr[row.component] = remaining_sr.get(row.component, 0) + 1
    disagreements = 0
    for row in truth.rows:
        flipped = copy.copy(row)
        flipped.sensor_deltas = dict(row.sensor_deltas)
        # A flip is pivotal (never made) when it would change the
        # safety-related component set: un-marking a component's *last*
        # remaining SR row, or newly marking a non-SR component.
        pivotal = (
            (row.safety_related and remaining_sr[row.component] == 1)
            or (not row.safety_related and row.component not in sr_components)
        )
        if not pivotal and rng.random() < config.manual_disagreement_rate:
            flipped.safety_related = not row.safety_related
            flipped.effect = "analyst judgement differs from algorithm"
            disagreements += 1
            if row.safety_related:
                remaining_sr[row.component] -= 1
            else:
                remaining_sr[row.component] = (
                    remaining_sr.get(row.component, 0) + 1
                )
        manual.rows.append(flipped)
    fraction = disagreements / len(truth.rows) if truth.rows else 0.0
    return manual, fraction


def simulate_process(
    system: str,
    element_count: int,
    safety_related_count: int,
    participant: str,
    mode: str,
    rng: np.random.Generator,
    config: Optional[AnalystConfig] = None,
    iterations: Optional[int] = None,
    tool_seconds_per_run: float = 2.0,
) -> ProcessOutcome:
    """Simulate one design campaign and return its Table V cell.

    ``iterations`` may be pinned (to replay the paper's exact counts);
    otherwise it is drawn from 2–6 as observed in the paper.
    """
    config = config or AnalystConfig()
    if mode not in ("manual", "auto"):
        raise ValueError(f"mode must be 'manual' or 'auto', got {mode!r}")
    if iterations is None:
        iterations = int(rng.integers(2, 7))
    skill = float(rng.normal(1.0, config.participant_spread))
    skill = max(skill, 0.5)
    minutes = 0.0
    tool_seconds = 0.0
    if mode == "manual":
        # One dominant full pass…
        minutes += _jitter(
            rng, element_count * config.manual_minutes_per_element, config
        )
        minutes += _jitter(
            rng,
            safety_related_count * config.manual_minutes_per_sm_search,
            config,
        )
        # …then incremental re-analysis + change management per iteration.
        for _ in range(iterations):
            minutes += _jitter(
                rng,
                element_count * config.manual_incremental_per_element,
                config,
            )
            minutes += _jitter(rng, config.manual_change_management, config)
    else:
        minutes += _jitter(rng, config.auto_setup_minutes, config)
        minutes += _jitter(
            rng, element_count * config.auto_review_minutes_per_element, config
        )
        for _ in range(iterations):
            minutes += _jitter(rng, config.auto_minutes_per_iteration, config)
            tool_seconds += tool_seconds_per_run
        minutes += tool_seconds / 60.0
    minutes *= skill
    return ProcessOutcome(
        system=system,
        participant=participant,
        mode=mode,
        minutes=minutes,
        iterations=iterations,
        tool_seconds=tool_seconds,
    )
