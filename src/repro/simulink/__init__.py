"""A Simulink/Simscape-like block-diagram substrate.

This package stands in for Matlab/Simulink in the paper's workflow: block
diagrams with nested subsystems, a Simscape-Foundation-like electrical block
library, persistence to a JSON ``.slx``-like format, and a ``simulate()``
entry point (DC operating point via :mod:`repro.circuit`) whose sensor
readings the injection-based FMEA compares before and after each fault.
"""

from repro.simulink.model import (
    Block,
    Diagram,
    Line,
    SimulinkError,
    SimulinkModel,
)
from repro.simulink.library import (
    BLOCK_LIBRARY,
    BlockTypeInfo,
    FailureBehavior,
    block_type_info,
    is_electrical_type,
)
from repro.simulink.electrical import ElectricalConversion, to_netlist
from repro.simulink.simulate import (
    ProtectedSimulationResult,
    SimulationResult,
    simulate,
    simulate_protected,
)
from repro.simulink.signalflow import (
    SignalFlowError,
    evaluate_signals,
    step_signals,
)

__all__ = [
    "Block",
    "Line",
    "Diagram",
    "SimulinkModel",
    "SimulinkError",
    "BLOCK_LIBRARY",
    "BlockTypeInfo",
    "FailureBehavior",
    "block_type_info",
    "is_electrical_type",
    "ElectricalConversion",
    "to_netlist",
    "SimulationResult",
    "simulate",
    "ProtectedSimulationResult",
    "simulate_protected",
    "SignalFlowError",
    "evaluate_signals",
    "step_signals",
]
