"""Block-diagram model: blocks, lines, diagrams, nested subsystems, JSON IO.

The model is deliberately shaped like Simulink's: a model owns a root
diagram; a diagram owns blocks and lines; a ``Subsystem`` block owns a nested
diagram.  Lines connect ``(block, port)`` endpoints; whether a line is
electrical (a conserving connection) or a directed signal line follows from
the port kinds declared in the block library.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from repro.simulink.library import BlockTypeInfo, block_type_info


class SimulinkError(Exception):
    """Raised for malformed diagrams, unknown blocks or bad connections."""


class Block:
    """One block instance in a diagram."""

    def __init__(
        self,
        name: str,
        block_type: str,
        parameters: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.name = name
        self.block_type = block_type
        info = block_type_info(block_type)
        self.parameters: Dict[str, Any] = dict(info.defaults)
        self.parameters.update(parameters or {})
        self.diagram: Optional["Diagram"] = None
        self.subdiagram: Optional["Diagram"] = None
        if block_type == "Subsystem":
            self.subdiagram = Diagram(owner=self)

    @property
    def info(self) -> BlockTypeInfo:
        return block_type_info(self.block_type)

    @property
    def effective_type(self) -> str:
        """The type used for electrical conversion and reliability lookup.

        A ``Subsystem`` annotated with ``annotated_type`` behaves as that
        library element (the paper's RQ2 workaround for components outside
        the Simscape library).
        """
        if self.block_type == "Subsystem":
            annotated = self.parameters.get("annotated_type")
            if annotated:
                return str(annotated)
        return self.block_type

    @property
    def effective_info(self) -> BlockTypeInfo:
        return block_type_info(self.effective_type)

    def param(self, name: str, default: Any = None) -> Any:
        return self.parameters.get(name, default)

    def set_param(self, name: str, value: Any) -> None:
        self.parameters[name] = value

    def ports(self) -> List[str]:
        if (
            self.block_type == "Subsystem"
            and not self.parameters.get("annotated_type")
            and self.subdiagram is not None
        ):
            # Boundary ports of a plain subsystem are defined by its inner
            # ConnectionPort blocks (Simscape's convention).
            return [
                str(inner.param("port_name", inner.name))
                for inner in self.subdiagram.blocks()
                if inner.block_type == "ConnectionPort"
            ]
        info = self.effective_info
        return list(
            info.electrical_ports + info.signal_inputs + info.signal_outputs
        )

    def path(self) -> str:
        """Hierarchical path, e.g. ``model/Controller/Gain1``."""
        parts: List[str] = [self.name]
        diagram = self.diagram
        while diagram is not None and diagram.owner is not None:
            parts.append(diagram.owner.name)
            diagram = diagram.owner.diagram
        if diagram is not None and diagram.model is not None:
            parts.append(diagram.model.name)
        return "/".join(reversed(parts))

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<Block {self.path()} : {self.block_type}>"


class Line:
    """A connection between two ``(block, port)`` endpoints in one diagram."""

    def __init__(
        self,
        source: Block,
        source_port: str,
        target: Block,
        target_port: str,
    ) -> None:
        self.source = source
        self.source_port = source_port
        self.target = target
        self.target_port = target_port

    @property
    def is_electrical(self) -> bool:
        src_info = self.source.effective_info
        dst_info = self.target.effective_info
        return (
            self.source_port in src_info.electrical_ports
            and self.target_port in dst_info.electrical_ports
        )

    def source_path(self) -> str:
        return f"{self.source.path()}:{self.source_port}"

    def target_path(self) -> str:
        return f"{self.target.path()}:{self.target_port}"

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<Line {self.source_path()} -> {self.target_path()}>"


class Diagram:
    """A canvas of blocks and lines (the root model or a subsystem body)."""

    def __init__(
        self,
        owner: Optional[Block] = None,
        model: Optional["SimulinkModel"] = None,
    ) -> None:
        self.owner = owner
        self.model = model
        self._blocks: Dict[str, Block] = {}
        self.lines: List[Line] = []

    def add_block(self, block: Block) -> Block:
        if block.name in self._blocks:
            raise SimulinkError(f"duplicate block name {block.name!r}")
        block.diagram = self
        self._blocks[block.name] = block
        return block

    def block(self, name: str) -> Block:
        try:
            return self._blocks[name]
        except KeyError:
            raise SimulinkError(
                f"no block named {name!r}; blocks: {sorted(self._blocks)}"
            ) from None

    def blocks(self) -> List[Block]:
        return list(self._blocks.values())

    def remove_block(self, name: str) -> Block:
        block = self.block(name)
        self.lines = [
            line
            for line in self.lines
            if line.source is not block and line.target is not block
        ]
        del self._blocks[name]
        return block

    def connect(
        self,
        source: Union[Block, str],
        source_port: str,
        target: Union[Block, str],
        target_port: str,
    ) -> Line:
        src = self.block(source) if isinstance(source, str) else source
        dst = self.block(target) if isinstance(target, str) else target
        for block, port in ((src, source_port), (dst, target_port)):
            if port not in block.ports():
                raise SimulinkError(
                    f"block {block.name!r} ({block.effective_type}) has no "
                    f"port {port!r}; ports: {block.ports()}"
                )
        line = Line(src, source_port, dst, target_port)
        self.lines.append(line)
        return line

    def all_blocks(self) -> Iterator[Block]:
        """Blocks of this diagram and, recursively, of nested subsystems."""
        for block in self._blocks.values():
            yield block
            if block.subdiagram is not None:
                yield from block.subdiagram.all_blocks()

    def all_lines(self) -> Iterator[Line]:
        yield from self.lines
        for block in self._blocks.values():
            if block.subdiagram is not None:
                yield from block.subdiagram.all_lines()


class SimulinkModel:
    """A complete model: name + root diagram + persistence."""

    FORMAT = "repro-simulink/1"

    def __init__(self, name: str = "model") -> None:
        self.name = name
        self.root = Diagram(model=self)

    # -- convenience ---------------------------------------------------------

    def add_block(
        self,
        name: str,
        block_type: str,
        **parameters: Any,
    ) -> Block:
        return self.root.add_block(Block(name, block_type, parameters))

    def block(self, name: str) -> Block:
        return self.root.block(name)

    def find_block(self, path: str) -> Block:
        """Resolve a hierarchical path like ``model/Sub1/Gain``."""
        parts = path.split("/")
        if parts and parts[0] == self.name:
            parts = parts[1:]
        diagram = self.root
        block: Optional[Block] = None
        for part in parts:
            if diagram is None:
                raise SimulinkError(f"path {path!r} descends into a leaf block")
            block = diagram.block(part)
            diagram = block.subdiagram
        if block is None:
            raise SimulinkError(f"empty block path {path!r}")
        return block

    def connect(
        self,
        source: Union[Block, str],
        source_port: str,
        target: Union[Block, str],
        target_port: str,
    ) -> Line:
        return self.root.connect(source, source_port, target, target_port)

    def all_blocks(self) -> List[Block]:
        return list(self.root.all_blocks())

    def all_lines(self) -> List[Line]:
        return list(self.root.all_lines())

    def block_count(self) -> int:
        return sum(1 for _ in self.root.all_blocks())

    # -- persistence -----------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": self.FORMAT,
            "name": self.name,
            "diagram": self._diagram_to_dict(self.root),
        }

    def _diagram_to_dict(self, diagram: Diagram) -> Dict[str, Any]:
        blocks = []
        for block in diagram.blocks():
            entry: Dict[str, Any] = {
                "name": block.name,
                "type": block.block_type,
                "parameters": block.parameters,
            }
            if block.subdiagram is not None:
                entry["diagram"] = self._diagram_to_dict(block.subdiagram)
            blocks.append(entry)
        lines = [
            {
                "source": line.source.name,
                "source_port": line.source_port,
                "target": line.target.name,
                "target_port": line.target_port,
            }
            for line in diagram.lines
        ]
        return {"blocks": blocks, "lines": lines}

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2)
        return path

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SimulinkModel":
        if data.get("format") != cls.FORMAT:
            raise SimulinkError(
                f"unsupported model format {data.get('format')!r}"
            )
        model = cls(data.get("name", "model"))
        cls._load_diagram(model.root, data["diagram"])
        return model

    @staticmethod
    def _load_diagram(diagram: Diagram, data: Dict[str, Any]) -> None:
        for entry in data.get("blocks", []):
            block = Block(entry["name"], entry["type"], entry.get("parameters"))
            diagram.add_block(block)
            if block.subdiagram is not None and "diagram" in entry:
                SimulinkModel._load_diagram(block.subdiagram, entry["diagram"])
        for entry in data.get("lines", []):
            diagram.connect(
                entry["source"],
                entry["source_port"],
                entry["target"],
                entry["target_port"],
            )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "SimulinkModel":
        with open(path, encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<SimulinkModel {self.name!r} ({self.block_count()} blocks)>"
