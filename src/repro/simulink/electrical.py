"""Electrical flattening — block diagram to :class:`~repro.circuit.Netlist`.

Net extraction is the standard conserving-port algorithm: every electrical
``(block, port)`` endpoint is a union-find node; electrical lines merge
endpoints; subsystem boundaries are bridged through ``ConnectionPort``
blocks; any net touching a ``Ground`` port becomes the reference node.

The conversion keeps a block→element mapping so the fault-injection engine
can manipulate netlist elements by block name.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.circuit import Netlist
from repro.circuit.netlist import GROUND
from repro.simulink.model import Block, Diagram, SimulinkError, SimulinkModel


class _UnionFind:
    def __init__(self) -> None:
        self._parent: Dict[Tuple[str, str], Tuple[str, str]] = {}

    def find(self, item: Tuple[str, str]) -> Tuple[str, str]:
        self._parent.setdefault(item, item)
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:  # path compression
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: Tuple[str, str], b: Tuple[str, str]) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[ra] = rb

    def items(self):
        return list(self._parent)


@dataclass
class ElectricalConversion:
    """Result of flattening: the netlist plus traceability maps."""

    netlist: Netlist
    #: block path -> netlist element name (absent for non-contributing blocks)
    element_of_block: Dict[str, str]
    #: block path -> (net_pos, net_neg) for every electrical block
    nets_of_block: Dict[str, Tuple[str, Optional[str]]]
    #: voltage-sensor block path -> (net_pos, net_neg)
    voltage_sensors: Dict[str, Tuple[str, str]]
    #: current-sensor block path -> ammeter element name
    current_sensors: Dict[str, str]
    #: fuse block path -> (element name, rated current)
    fuses: Dict[str, Tuple[str, float]] = field(default_factory=dict)

    def element_name(self, block_or_path: str) -> str:
        """Element name for a block, accepting a bare name or a full path."""
        if block_or_path in self.element_of_block:
            return self.element_of_block[block_or_path]
        matches = [
            elem
            for path, elem in self.element_of_block.items()
            if path.rsplit("/", 1)[-1] == block_or_path
        ]
        if len(matches) == 1:
            return matches[0]
        if not matches:
            raise SimulinkError(
                f"no electrical element for block {block_or_path!r}"
            )
        raise SimulinkError(
            f"ambiguous block name {block_or_path!r}; use a full path"
        )


def _electrical_blocks(diagram: Diagram) -> List[Block]:
    """Blocks contributing to (or bridging) the electrical network, descending
    into plain subsystems but treating annotated subsystems as leaves."""
    out: List[Block] = []
    for block in diagram.blocks():
        if block.block_type == "Subsystem" and not block.param("annotated_type"):
            if block.subdiagram is not None:
                out.extend(_electrical_blocks(block.subdiagram))
            continue
        out.append(block)
    return out


def _collect_lines(diagram: Diagram) -> List:
    lines = list(diagram.lines)
    for block in diagram.blocks():
        if block.block_type == "Subsystem" and not block.param("annotated_type"):
            if block.subdiagram is not None:
                lines.extend(_collect_lines(block.subdiagram))
    return lines


def to_netlist(model: SimulinkModel) -> ElectricalConversion:
    """Flatten ``model``'s electrical network into a netlist."""
    union = _UnionFind()

    # 1. Merge endpoints along electrical lines (all hierarchy levels).
    for line in _collect_lines(model.root):
        src_key = (line.source.path(), line.source_port)
        dst_key = (line.target.path(), line.target_port)
        if _endpoint_is_electrical(line.source, line.source_port) and (
            _endpoint_is_electrical(line.target, line.target_port)
        ):
            union.union(src_key, dst_key)

    # 2. Bridge subsystem boundaries through ConnectionPorts.
    _bridge_subsystems(model.root, union)

    blocks = _electrical_blocks(model.root)

    # 3. Seed every electrical port so floating ports get their own net.
    ground_roots = set()
    for block in blocks:
        etype = block.effective_type
        if etype == "Subsystem":
            continue
        info = block.effective_info
        for port in info.electrical_ports:
            key = (block.path(), port)
            union.find(key)
        if etype == "Ground":
            ground_roots.add(union.find((block.path(), "p")))

    # Re-root after all unions: compute final root -> net name.
    net_of_root: Dict[Tuple[str, str], str] = {}
    counter = 0
    for key in union.items():
        root = union.find(key)
        if root in net_of_root:
            continue
        if any(union.find(g) == root for g in ground_roots):
            net_of_root[root] = GROUND
        else:
            counter += 1
            net_of_root[root] = f"n{counter}"

    def net(block: Block, port: str) -> str:
        return net_of_root[union.find((block.path(), port))]

    # 4. Contribute elements.
    netlist = Netlist(model.name)
    element_of_block: Dict[str, str] = {}
    nets_of_block: Dict[str, Tuple[str, Optional[str]]] = {}
    voltage_sensors: Dict[str, Tuple[str, str]] = {}
    current_sensors: Dict[str, str] = {}
    fuses: Dict[str, Tuple[str, float]] = {}
    used_names: Dict[str, int] = {}

    def unique_name(base: str) -> str:
        if base not in used_names:
            used_names[base] = 1
            return base
        used_names[base] += 1
        return f"{base}_{used_names[base]}"

    for block in blocks:
        etype = block.effective_type
        if etype in ("Ground", "SolverConfiguration", "ConnectionPort"):
            continue
        info = block.effective_info
        if not info.is_electrical:
            continue
        path = block.path()
        npos = net(block, info.electrical_ports[0])
        nneg = (
            net(block, info.electrical_ports[1])
            if len(info.electrical_ports) > 1
            else None
        )
        nets_of_block[path] = (npos, nneg)
        name = unique_name(block.name)
        if etype == "DCVoltageSource":
            netlist.voltage_source(name, npos, nneg, float(block.param("voltage", 0.0)))
        elif etype in ("Resistor", "Load"):
            netlist.resistor(name, npos, nneg, float(block.param("resistance", 1.0)))
        elif etype == "Capacitor":
            netlist.capacitor(name, npos, nneg, float(block.param("capacitance", 1e-6)))
        elif etype == "Inductor":
            netlist.inductor(
                name,
                npos,
                nneg,
                float(block.param("inductance", 1e-3)),
                float(block.param("series_resistance", 0.0)),
            )
        elif etype == "Diode":
            netlist.diode(
                name,
                npos,
                nneg,
                saturation_current=float(block.param("saturation_current", 1e-12)),
            )
        elif etype == "Switch":
            netlist.switch(name, npos, nneg, bool(block.param("closed", 1.0)))
        elif etype == "MCU":
            netlist.resistor(
                name, npos, nneg, float(block.param("load_resistance", 100.0))
            )
        elif etype == "Fuse":
            netlist.resistor(
                name, npos, nneg, float(block.param("resistance", 1e-3))
            )
            fuses[path] = (name, float(block.param("rated_current", 1.0)))
        elif etype == "CurrentSensor":
            netlist.ammeter(name, npos, nneg)
            current_sensors[path] = name
        elif etype == "VoltageSensor":
            voltage_sensors[path] = (npos, nneg)
            continue  # no electrical contribution
        else:
            raise SimulinkError(
                f"block type {etype!r} has electrical ports but no netlist "
                f"contribution rule"
            )
        element_of_block[path] = name

    return ElectricalConversion(
        netlist=netlist,
        element_of_block=element_of_block,
        nets_of_block=nets_of_block,
        voltage_sensors=voltage_sensors,
        current_sensors=current_sensors,
        fuses=fuses,
    )


def _endpoint_is_electrical(block: Block, port: str) -> bool:
    if block.block_type == "Subsystem" and not block.param("annotated_type"):
        return port in block.ports()  # ConnectionPort names are electrical
    return port in block.effective_info.electrical_ports


def _bridge_subsystems(diagram: Diagram, union: _UnionFind) -> None:
    for block in diagram.blocks():
        if block.block_type != "Subsystem" or block.param("annotated_type"):
            continue
        if block.subdiagram is None:
            continue
        for inner in block.subdiagram.blocks():
            if inner.block_type == "ConnectionPort":
                port_name = str(inner.param("port_name", inner.name))
                union.union(
                    (block.path(), port_name),
                    (inner.path(), "p"),
                )
        _bridge_subsystems(block.subdiagram, union)
