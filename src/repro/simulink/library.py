"""The block library — a Simscape-Foundation-like catalogue.

Each :class:`BlockTypeInfo` declares a block type's ports (electrical
conserving ports vs directed signal ports), its default parameters, how it
contributes to an electrical netlist, and its known *failure behaviours* —
what physically happens to the block under each failure-mode name, which is
what the injection engine applies.

The paper's RQ2 "workaround" for elements outside the Simscape library
(complex microcontrollers) is reproduced: a ``Subsystem`` may carry an
``annotated_type`` parameter naming a library type (e.g. ``MCU``), and the
electrical conversion then treats the subsystem as that annotated element.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class FailureBehavior:
    """Physical effect of one failure mode of a block.

    ``kind`` is one of:

    - ``open`` — the element stops conducting (removed from the netlist);
    - ``short`` — replaced by ``resistance`` ohms (element-class specific;
      e.g. failed capacitors are *leaky*, not dead shorts);
    - ``resistive`` — replaced by ``resistance`` ohms (used for loads whose
      failure changes their impedance, e.g. an MCU halting into standby);
    - ``param`` — a parameter changes to ``value`` (``parameter`` names it).
    """

    kind: str
    resistance: Optional[float] = None
    parameter: Optional[str] = None
    value: Optional[float] = None


@dataclass(frozen=True)
class BlockTypeInfo:
    """Static description of a block type."""

    name: str
    electrical_ports: Tuple[str, ...] = ()
    signal_inputs: Tuple[str, ...] = ()
    signal_outputs: Tuple[str, ...] = ()
    defaults: Dict[str, float] = field(default_factory=dict)
    #: 'source' | 'passive' | 'sensor' | 'reference' | 'support' | 'structural'
    role: str = "passive"
    failure_behaviors: Dict[str, FailureBehavior] = field(default_factory=dict)
    doc: str = ""

    @property
    def is_electrical(self) -> bool:
        return bool(self.electrical_ports)


def _two_terminal(
    name: str,
    defaults: Dict[str, float],
    role: str,
    failure_behaviors: Dict[str, FailureBehavior],
    doc: str,
) -> BlockTypeInfo:
    return BlockTypeInfo(
        name=name,
        electrical_ports=("p", "n"),
        defaults=defaults,
        role=role,
        failure_behaviors=failure_behaviors,
        doc=doc,
    )


#: Failed-short replacement resistances per element class.  Electrolytic and
#: ceramic capacitors predominantly fail *leaky* (a resistive path of tens to
#: hundreds of ohms) rather than as dead shorts; semiconductors and windings
#: short hard.  See DESIGN.md, substitution notes.
_HARD_SHORT_OHMS = 1e-3
_LEAKY_SHORT_OHMS = 200.0

BLOCK_LIBRARY: Dict[str, BlockTypeInfo] = {}


def _register(info: BlockTypeInfo) -> BlockTypeInfo:
    BLOCK_LIBRARY[info.name] = info
    return info


_register(
    _two_terminal(
        "DCVoltageSource",
        {"voltage": 5.0},
        "source",
        {
            "Loss of Output": FailureBehavior("open"),
        },
        "Ideal DC voltage source (p = +).",
    )
)

_register(
    _two_terminal(
        "Resistor",
        {"resistance": 1000.0},
        "passive",
        {
            "Open": FailureBehavior("open"),
            "Short": FailureBehavior("short", resistance=_HARD_SHORT_OHMS),
            "Drift": FailureBehavior("param", parameter="resistance", value=None),
        },
        "Linear resistor.",
    )
)

_register(
    _two_terminal(
        "Capacitor",
        {"capacitance": 10e-6},
        "passive",
        {
            "Open": FailureBehavior("open"),
            "Short": FailureBehavior("short", resistance=_LEAKY_SHORT_OHMS),
        },
        "Linear capacitor (open at DC; failed-short is leaky-resistive).",
    )
)

_register(
    _two_terminal(
        "Inductor",
        {"inductance": 1e-3, "series_resistance": 0.1},
        "passive",
        {
            "Open": FailureBehavior("open"),
            "Short": FailureBehavior("short", resistance=_HARD_SHORT_OHMS),
        },
        "Linear inductor with winding resistance.",
    )
)

_register(
    _two_terminal(
        "Diode",
        {"saturation_current": 1e-12},
        "passive",
        {
            "Open": FailureBehavior("open"),
            "Short": FailureBehavior("short", resistance=_HARD_SHORT_OHMS),
        },
        "Exponential (Shockley) diode; p is the anode.",
    )
)

_register(
    _two_terminal(
        "Load",
        {"resistance": 100.0},
        "passive",
        {
            "Open": FailureBehavior("open"),
            "Short": FailureBehavior("short", resistance=_HARD_SHORT_OHMS),
        },
        "Generic resistive load.",
    )
)

_register(
    _two_terminal(
        "MCU",
        {"load_resistance": 100.0, "standby_resistance": 10000.0},
        "passive",
        {
            # A RAM failure halts the firmware; the device falls back to its
            # standby draw, which the current sensor sees as a load collapse.
            "RAM Failure": FailureBehavior("resistive", resistance=None),
        },
        "Microcontroller modelled as its supply load (RQ2 workaround target).",
    )
)

_register(
    _two_terminal(
        "Switch",
        {"closed": 1.0},
        "passive",
        {
            "Stuck Open": FailureBehavior("open"),
            "Stuck Closed": FailureBehavior("short", resistance=_HARD_SHORT_OHMS),
        },
        "Ideal switch (closed when the 'closed' parameter is nonzero).",
    )
)

_register(
    _two_terminal(
        "CurrentSensor",
        {},
        "sensor",
        {},
        "Series current sensor (0 V branch); signal output 'I'.",
    )
)
# CurrentSensor additionally has a signal output.
BLOCK_LIBRARY["CurrentSensor"] = BlockTypeInfo(
    name="CurrentSensor",
    electrical_ports=("p", "n"),
    signal_outputs=("I",),
    role="sensor",
    doc="Series current sensor (0 V branch); signal output 'I'.",
)

BLOCK_LIBRARY["VoltageSensor"] = BlockTypeInfo(
    name="VoltageSensor",
    electrical_ports=("p", "n"),
    signal_outputs=("V",),
    role="sensor",
    doc="Parallel voltage sensor (no electrical contribution); output 'V'.",
)

_register(
    _two_terminal(
        "Fuse",
        {"rated_current": 1.0, "resistance": 1e-3},
        "passive",
        {
            "Stuck Open": FailureBehavior("open"),
            # The dangerous failure: the fuse conducts past its rating.
            # Electrically the healthy and failed states coincide until an
            # overcurrent occurs, so injection models it as the element
            # pinned closed (a plain resistor the protection logic ignores).
            "Fails To Blow": FailureBehavior("short", resistance=1e-3),
        },
        "Overcurrent protection; blows (opens) above rated_current in "
        "protected simulation.",
    )
)

_register(
    BlockTypeInfo(
        name="Ground",
        electrical_ports=("p",),
        role="reference",
        doc="Electrical reference.",
    )
)

_register(
    BlockTypeInfo(
        name="SolverConfiguration",
        electrical_ports=("p",),
        role="support",
        doc="Marks the physical network for simulation (no contribution).",
    )
)

_register(
    BlockTypeInfo(
        name="Scope",
        signal_inputs=("in",),
        role="support",
        doc="Displays a signal; readable from simulation results.",
    )
)

_register(
    BlockTypeInfo(
        name="Outport",
        signal_inputs=("in",),
        role="support",
        doc="Writes a signal to the workspace; readable from results.",
    )
)

_register(
    BlockTypeInfo(
        name="Inport",
        signal_outputs=("out",),
        role="support",
        doc="External signal input.",
    )
)

_register(
    BlockTypeInfo(
        name="Subsystem",
        role="structural",
        doc=(
            "A nested diagram.  Electrical connectivity crosses the boundary "
            "through ConnectionPort blocks; an 'annotated_type' parameter "
            "makes the subsystem behave as a library element (RQ2 workaround)."
        ),
    )
)

_register(
    BlockTypeInfo(
        name="ConnectionPort",
        electrical_ports=("p",),
        role="structural",
        doc="Bridges a subsystem boundary; 'port_name' names the outer port.",
    )
)

# Non-electrical signal blocks (coverage beyond Simscape, used by System B's
# software/control diagrams).
for _name, _inputs, _outputs, _defaults in [
    ("Gain", ("in",), ("out",), {"gain": 1.0}),
    ("Sum", ("in1", "in2"), ("out",), {}),
    ("Constant", (), ("out",), {"value": 0.0}),
    ("Saturation", ("in",), ("out",), {"lower": 0.0, "upper": 1.0}),
    ("UnitDelay", ("in",), ("out",), {}),
    ("Relay", ("in",), ("out",), {"threshold": 0.5}),
]:
    _register(
        BlockTypeInfo(
            name=_name,
            signal_inputs=_inputs,
            signal_outputs=_outputs,
            defaults=dict(_defaults),
            role="support",
            doc=f"Signal-processing block {_name}.",
        )
    )


def block_type_info(type_name: str) -> BlockTypeInfo:
    """Look up a block type; raises ``KeyError`` with the known types listed."""
    try:
        return BLOCK_LIBRARY[type_name]
    except KeyError:
        raise KeyError(
            f"unknown block type {type_name!r}; known: {sorted(BLOCK_LIBRARY)}"
        ) from None


def is_electrical_type(type_name: str) -> bool:
    info = BLOCK_LIBRARY.get(type_name)
    return info is not None and info.is_electrical
