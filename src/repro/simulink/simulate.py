"""``simulate()`` — the Simulink simulation entry point.

Flattens the model's electrical network, solves the DC operating point and
exposes the readings the FMEA engine compares: current-sensor currents,
voltage-sensor voltages, and the values seen by ``Scope`` / ``Outport``
blocks (resolved by following signal lines back to the sensor that drives
them, mirroring how the paper reads ``Scope1`` / ``Out1``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.circuit import DCSolution, dc_operating_point
from repro.simulink.electrical import ElectricalConversion, to_netlist
from repro.simulink.model import SimulinkError, SimulinkModel


@dataclass
class SimulationResult:
    """Sensor-level view of one DC solution."""

    model_name: str
    solution: DCSolution
    conversion: ElectricalConversion

    def current(self, sensor: str) -> float:
        """Reading of a current sensor (bare name or full path)."""
        path = self._resolve_sensor(sensor, self.conversion.current_sensors)
        return self.solution.current(self.conversion.current_sensors[path])

    def voltage(self, sensor: str) -> float:
        """Reading of a voltage sensor (bare name or full path)."""
        path = self._resolve_sensor(sensor, self.conversion.voltage_sensors)
        npos, nneg = self.conversion.voltage_sensors[path]
        return self.solution.voltage_across(npos, nneg)

    @staticmethod
    def _resolve_sensor(sensor: str, table: Dict[str, object]) -> str:
        if sensor in table:
            return sensor
        matches = [p for p in table if p.rsplit("/", 1)[-1] == sensor]
        if len(matches) == 1:
            return matches[0]
        if not matches:
            raise SimulinkError(f"no sensor named {sensor!r}")
        raise SimulinkError(f"ambiguous sensor name {sensor!r}; use a full path")

    def readings(self) -> Dict[str, float]:
        """All sensor readings, keyed by block path."""
        out: Dict[str, float] = {}
        for path, element in self.conversion.current_sensors.items():
            out[path] = self.solution.current(element)
        for path, (npos, nneg) in self.conversion.voltage_sensors.items():
            out[path] = self.solution.voltage_across(npos, nneg)
        return out


def simulate(model: SimulinkModel) -> SimulationResult:
    """Simulate the model's electrical network at DC."""
    conversion = to_netlist(model)
    if len(conversion.netlist) == 0:
        raise SimulinkError(
            f"model {model.name!r} has no electrical network to simulate"
        )
    solution = dc_operating_point(conversion.netlist)
    return SimulationResult(model.name, solution, conversion)


def simulate_protected(
    model: SimulinkModel, max_blows: int = 10
) -> "ProtectedSimulationResult":
    """DC simulation honouring overcurrent protection.

    Iterates: solve, check every intact fuse's current against its rating,
    blow (open) the worst offender, re-solve — until all intact fuses are
    within rating.  One fuse per iteration matches physical sequencing (the
    most-overloaded element clears first, which may relieve the others).
    """
    conversion = to_netlist(model)
    if len(conversion.netlist) == 0:
        raise SimulinkError(
            f"model {model.name!r} has no electrical network to simulate"
        )
    netlist = conversion.netlist
    blown: list = []
    for _ in range(max_blows + 1):
        solution = dc_operating_point(netlist)
        worst_path: Optional[str] = None
        worst_ratio = 1.0
        for path, (element_name, rating) in conversion.fuses.items():
            if path in blown or rating <= 0:
                continue
            element = netlist.element(element_name)
            voltage = solution.voltage_across(
                element.node_pos, element.node_neg
            )
            current = abs(voltage) / element.resistance  # type: ignore[attr-defined]
            ratio = current / rating
            if ratio > worst_ratio:
                worst_ratio = ratio
                worst_path = path
        if worst_path is None:
            return ProtectedSimulationResult(
                model.name, solution, conversion, blown
            )
        element_name, _ = conversion.fuses[worst_path]
        netlist = netlist.without(element_name)
        blown.append(worst_path)
    raise SimulinkError(
        f"protection did not settle within {max_blows} fuse operations"
    )


@dataclass
class ProtectedSimulationResult(SimulationResult):
    """A protected solution: also records which fuses blew."""

    blown_fuses: list = None  # type: ignore[assignment]

    def __init__(self, model_name, solution, conversion, blown_fuses):
        super().__init__(model_name, solution, conversion)
        self.blown_fuses = list(blown_fuses)

    def fuse_blown(self, fuse: str) -> bool:
        matches = [
            path
            for path in self.blown_fuses
            if path == fuse or path.rsplit("/", 1)[-1] == fuse
        ]
        return bool(matches)


def scope_readings(
    model: SimulinkModel, result: Optional[SimulationResult] = None
) -> Dict[str, float]:
    """Values displayed by ``Scope`` / written by ``Outport`` blocks.

    A scope's value is the reading of the sensor whose signal output feeds
    it (directly, over signal lines).
    """
    if result is None:
        result = simulate(model)
    readings = result.readings()
    out: Dict[str, float] = {}
    for line in model.all_lines():
        if line.is_electrical:
            continue
        target_type = line.target.effective_type
        if target_type not in ("Scope", "Outport"):
            continue
        source_path = line.source.path()
        if source_path in readings:
            out[line.target.path()] = readings[source_path]
    return out
