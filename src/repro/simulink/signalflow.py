"""Signal-flow evaluation — the directed (non-conserving) half of Simulink.

The electrical network is solved by :mod:`repro.circuit`; control/software
diagrams (System B's domain) are directed dataflow over signal lines.  This
module evaluates that dataflow at one instant:

- sources: ``Constant`` blocks, ``Inport`` values supplied by the caller,
  and sensor outputs taken from an electrical :class:`SimulationResult`;
- transfer blocks: ``Gain``, ``Sum``, ``Saturation``, ``Relay``,
  ``UnitDelay`` (whose state is supplied/collected, enabling stepped
  simulation);
- sinks: ``Scope`` and ``Outport`` readings.

Evaluation is a topological pass over the signal graph; algebraic loops
(cycles without a ``UnitDelay``) are rejected, exactly as Simulink rejects
them without a solver break.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.simulink.model import Block, Line, SimulinkError, SimulinkModel
from repro.simulink.simulate import SimulationResult


class SignalFlowError(SimulinkError):
    """Raised for algebraic loops or unconnected required inputs."""


def _signal_lines(model: SimulinkModel) -> List[Line]:
    return [line for line in model.all_lines() if not line.is_electrical]


def _is_signal_block(block: Block) -> bool:
    info = block.effective_info
    return bool(info.signal_inputs or info.signal_outputs)


def evaluate_signals(
    model: SimulinkModel,
    inputs: Optional[Dict[str, float]] = None,
    electrical: Optional[SimulationResult] = None,
    state: Optional[Dict[str, float]] = None,
) -> Dict[str, float]:
    """One-instant evaluation of the signal network.

    Parameters
    ----------
    inputs:
        values for ``Inport`` blocks (by block name or path);
    electrical:
        an electrical solution whose sensor readings drive the
        ``CurrentSensor.I`` / ``VoltageSensor.V`` outputs;
    state:
        previous-step outputs of ``UnitDelay`` blocks (default 0.0).

    Returns a mapping ``block path -> output value`` for every signal block,
    including ``Scope`` / ``Outport`` sinks (their displayed value).
    """
    inputs = inputs or {}
    state = state or {}
    lines = _signal_lines(model)
    blocks = [b for b in model.all_blocks() if _is_signal_block(b)]
    by_path = {block.path(): block for block in blocks}

    # Feeding lines per (block path, input port).
    feeds: Dict[Tuple[str, str], Line] = {}
    for line in lines:
        key = (line.target.path(), line.target_port)
        feeds[key] = line

    values: Dict[str, float] = {}
    visiting: Dict[str, bool] = {}

    def input_value(block: Block, port: str) -> float:
        line = feeds.get((block.path(), port))
        if line is None:
            raise SignalFlowError(
                f"block {block.path()!r} input {port!r} is unconnected"
            )
        return output_of(line.source)

    def output_of(block: Block) -> float:
        path = block.path()
        if path in values:
            return values[path]
        if visiting.get(path):
            raise SignalFlowError(
                f"algebraic loop through {path!r}; break it with a UnitDelay"
            )
        visiting[path] = True
        try:
            values[path] = _evaluate_block(
                block, input_value, inputs, electrical, state
            )
        finally:
            visiting[path] = False
        return values[path]

    for block in blocks:
        output_of(block)
    return values


def _evaluate_block(
    block: Block,
    input_value,
    inputs: Dict[str, float],
    electrical: Optional[SimulationResult],
    state: Dict[str, float],
) -> float:
    etype = block.effective_type
    if etype == "Constant":
        return float(block.param("value", 0.0))
    if etype == "Inport":
        for key in (block.name, block.path()):
            if key in inputs:
                return float(inputs[key])
        return 0.0
    if etype == "Gain":
        return float(block.param("gain", 1.0)) * input_value(block, "in")
    if etype == "Sum":
        return input_value(block, "in1") + input_value(block, "in2")
    if etype == "Saturation":
        lower = float(block.param("lower", 0.0))
        upper = float(block.param("upper", 1.0))
        return min(max(input_value(block, "in"), lower), upper)
    if etype == "Relay":
        threshold = float(block.param("threshold", 0.5))
        return 1.0 if input_value(block, "in") >= threshold else 0.0
    if etype == "UnitDelay":
        for key in (block.name, block.path()):
            if key in state:
                return float(state[key])
        return 0.0
    if etype in ("Scope", "Outport"):
        return input_value(block, "in")
    if etype == "CurrentSensor":
        if electrical is None:
            raise SignalFlowError(
                f"sensor {block.path()!r} needs an electrical solution"
            )
        return electrical.current(block.path())
    if etype == "VoltageSensor":
        if electrical is None:
            raise SignalFlowError(
                f"sensor {block.path()!r} needs an electrical solution"
            )
        return electrical.voltage(block.path())
    raise SignalFlowError(
        f"block type {etype!r} has no signal-flow semantics"
    )


def step_signals(
    model: SimulinkModel,
    steps: int,
    inputs_per_step: Optional[List[Dict[str, float]]] = None,
    electrical: Optional[SimulationResult] = None,
) -> List[Dict[str, float]]:
    """Stepped simulation: ``UnitDelay`` blocks carry state across steps.

    Returns one value map per step.  ``inputs_per_step`` may be shorter than
    ``steps``; the last entry (or empty inputs) is reused.
    """
    if steps < 1:
        raise SignalFlowError("steps must be >= 1")
    inputs_per_step = inputs_per_step or [{}]
    results: List[Dict[str, float]] = []
    state: Dict[str, float] = {}
    delay_paths = [
        block.path()
        for block in model.all_blocks()
        if block.effective_type == "UnitDelay"
    ]
    delay_feeds = {
        (line.target.path(), line.target_port): line
        for line in _signal_lines(model)
    }
    for index in range(steps):
        step_inputs = inputs_per_step[min(index, len(inputs_per_step) - 1)]
        values = evaluate_signals(model, step_inputs, electrical, state)
        results.append(values)
        # Latch each delay's *input* as its next-step output.
        next_state: Dict[str, float] = {}
        for path in delay_paths:
            line = delay_feeds.get((path, "in"))
            if line is not None:
                next_state[path] = values[line.source.path()]
        state = next_state
    return results
