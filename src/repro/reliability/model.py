"""Reliability data structures.

The unit conventions match the paper: FIT is 1e-9 failures/hour; a failure
mode's *distribution* is its share of the component's total failure rate, so
the failure rate attributable to one mode is ``fit * distribution``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

#: Default mapping from conventional failure-mode names to SSAM natures.
_NATURE_BY_NAME = {
    "open": "open",
    "short": "short",
    "drift": "drift",
    "jitter": "erroneous",
    "stuck": "loss_of_function",
    "ram failure": "loss_of_function",
    "rom failure": "loss_of_function",
    "cpu failure": "loss_of_function",
    "loss of function": "loss_of_function",
    "loss of output": "loss_of_function",
    "crash": "loss_of_function",
    "hang": "loss_of_function",
    "omission": "omission",
    "commission": "commission",
    "lower frequency": "degraded",
    "higher frequency": "erroneous",
    "wrong value": "erroneous",
    "erroneous output": "erroneous",
    "degraded": "degraded",
}


def nature_for_mode_name(mode_name: str) -> str:
    """Best-effort SSAM nature for a conventional failure-mode name."""
    return _NATURE_BY_NAME.get(mode_name.strip().lower(), "other")


class ReliabilityError(Exception):
    """Raised for malformed reliability data."""


@dataclass(frozen=True)
class FailureModeSpec:
    """One failure mode of a component class."""

    name: str
    distribution: float
    nature: str = ""

    def __post_init__(self) -> None:
        if not 0.0 <= self.distribution <= 1.0:
            raise ReliabilityError(
                f"failure mode {self.name!r}: distribution "
                f"{self.distribution} outside [0, 1]"
            )
        if not self.nature:
            object.__setattr__(self, "nature", nature_for_mode_name(self.name))

    def rate(self, fit: float) -> float:
        """Failure rate of this mode in FIT, given the component FIT."""
        return fit * self.distribution


@dataclass
class ComponentReliability:
    """Reliability data for one component class (one Table II block)."""

    component_class: str
    fit: float
    failure_modes: List[FailureModeSpec] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.fit < 0:
            raise ReliabilityError(
                f"component class {self.component_class!r}: FIT must be >= 0"
            )
        names = [m.name for m in self.failure_modes]
        if len(names) != len(set(names)):
            raise ReliabilityError(
                f"component class {self.component_class!r}: duplicate "
                f"failure-mode names"
            )

    def total_distribution(self) -> float:
        return sum(m.distribution for m in self.failure_modes)

    def check_distribution(self, tolerance: float = 1e-6) -> None:
        """Raise unless the mode distributions sum to 1 (within tolerance).

        The paper's tables always budget the full failure rate across modes;
        loaders call this to catch transcription errors early.
        """
        total = self.total_distribution()
        if self.failure_modes and abs(total - 1.0) > tolerance:
            raise ReliabilityError(
                f"component class {self.component_class!r}: failure-mode "
                f"distributions sum to {total:.4f}, expected 1.0"
            )

    def mode(self, name: str) -> FailureModeSpec:
        for spec in self.failure_modes:
            if spec.name == name:
                return spec
        raise ReliabilityError(
            f"component class {self.component_class!r} has no failure "
            f"mode {name!r}"
        )


class ReliabilityModel:
    """A catalogue of :class:`ComponentReliability` entries by class name.

    Lookup is case-insensitive and tolerant of the ``MC`` / ``MCU``
    synonymy the paper itself exhibits (Table II says *MC*, Table III says
    *MCU*).
    """

    _SYNONYMS = {"mc": "mcu"}

    def __init__(
        self, entries: Optional[Iterable[ComponentReliability]] = None
    ) -> None:
        self._entries: Dict[str, ComponentReliability] = {}
        for entry in entries or []:
            self.add(entry)

    @classmethod
    def _key(cls, component_class: str) -> str:
        key = component_class.strip().lower()
        return cls._SYNONYMS.get(key, key)

    def add(self, entry: ComponentReliability) -> ComponentReliability:
        key = self._key(entry.component_class)
        if key in self._entries:
            raise ReliabilityError(
                f"duplicate reliability entry for {entry.component_class!r}"
            )
        self._entries[key] = entry
        return entry

    def __contains__(self, component_class: str) -> bool:
        return self._key(component_class) in self._entries

    def get(self, component_class: str) -> Optional[ComponentReliability]:
        return self._entries.get(self._key(component_class))

    def lookup(self, component_class: str) -> ComponentReliability:
        entry = self.get(component_class)
        if entry is None:
            raise ReliabilityError(
                f"no reliability data for component class {component_class!r}; "
                f"known: {sorted(e.component_class for e in self._entries.values())}"
            )
        return entry

    def entries(self) -> List[ComponentReliability]:
        return list(self._entries.values())

    def component_classes(self) -> List[str]:
        return [entry.component_class for entry in self._entries.values()]

    def merged_with(self, other: "ReliabilityModel") -> "ReliabilityModel":
        """A new model where ``other``'s entries override this one's."""
        merged = ReliabilityModel(self.entries())
        for entry in other.entries():
            key = self._key(entry.component_class)
            merged._entries[key] = entry
        return merged

    def __len__(self) -> int:
        return len(self._entries)
