"""A built-in reliability catalogue in the spirit of MIL-HDBK-338B.

The paper's Step 3 says reliability data "can be obtained through the
component manufacturer, or from certain documents (e.g. MIL-HDBK-338B)".
This module is the offline stand-in for those documents: representative FIT
rates and failure-mode distributions for common electrical, electronic and
software component classes.  Values are typical of handbook data; absolute
accuracy is not required for the reproduction (the FMEA logic consumes the
*structure*), and the case studies override classes where the paper gives
exact numbers (Table II).
"""

from __future__ import annotations

from repro.reliability.model import (
    ComponentReliability,
    FailureModeSpec,
    ReliabilityModel,
)

_CATALOGUE = [
    # (class, FIT, [(mode, distribution, nature), ...])
    ("Resistor", 1, [("Open", 0.3, "open"), ("Short", 0.7, "short")]),
    ("Capacitor", 2, [("Open", 0.3, "open"), ("Short", 0.7, "short")]),
    ("Inductor", 15, [("Open", 0.3, "open"), ("Short", 0.7, "short")]),
    ("Diode", 10, [("Open", 0.3, "open"), ("Short", 0.7, "short")]),
    ("Zener", 12, [("Open", 0.25, "open"), ("Short", 0.75, "short")]),
    ("Transistor", 20, [("Open", 0.4, "open"), ("Short", 0.6, "short")]),
    (
        "MCU",
        300,
        [("RAM Failure", 1.0, "loss_of_function")],
    ),
    (
        "CPU",
        250,
        [
            ("Crash", 0.6, "loss_of_function"),
            ("Wrong Value", 0.4, "erroneous"),
        ],
    ),
    (
        "PLL",
        50,
        [
            ("Lower Frequency", 0.401, "degraded"),
            ("Higher Frequency", 0.287, "erroneous"),
            ("Jitter", 0.312, "erroneous"),
        ],
    ),
    (
        "Oscillator",
        30,
        [("No Output", 0.7, "loss_of_function"), ("Drift", 0.3, "drift")],
    ),
    ("Connector", 5, [("Open", 0.9, "open"), ("Short", 0.1, "short")]),
    (
        "Fuse",
        3,
        [
            ("Stuck Open", 0.7, "open"),
            ("Fails To Blow", 0.3, "other"),
        ],
    ),
    ("Relay", 25, [("Stuck Open", 0.55, "open"), ("Stuck Closed", 0.45, "short")]),
    ("Switch", 8, [("Stuck Open", 0.6, "open"), ("Stuck Closed", 0.4, "short")]),
    (
        "DCSource",
        40,
        [("Loss of Output", 0.8, "loss_of_function"), ("Drift", 0.2, "drift")],
    ),
    ("DCVoltageSource", 40, [("Loss of Output", 0.8, "loss_of_function"), ("Drift", 0.2, "drift")]),
    (
        "CurrentSensor",
        35,
        [
            ("No Reading", 0.5, "loss_of_function"),
            ("Wrong Value", 0.5, "erroneous"),
        ],
    ),
    (
        "VoltageSensor",
        35,
        [
            ("No Reading", 0.5, "loss_of_function"),
            ("Wrong Value", 0.5, "erroneous"),
        ],
    ),
    (
        "Sensor",
        45,
        [
            ("No Reading", 0.5, "loss_of_function"),
            ("Wrong Value", 0.5, "erroneous"),
        ],
    ),
    (
        "Actuator",
        60,
        [
            ("Stuck", 0.5, "loss_of_function"),
            ("Degraded", 0.5, "degraded"),
        ],
    ),
    (
        "Motor",
        80,
        [
            ("Winding Open", 0.4, "open"),
            ("Winding Short", 0.3, "short"),
            ("Bearing Wear", 0.3, "degraded"),
        ],
    ),
    (
        "Battery",
        55,
        [
            ("No Output", 0.6, "loss_of_function"),
            ("Degraded Capacity", 0.4, "degraded"),
        ],
    ),
    (
        "SoftwareTask",
        100,
        [
            ("Crash", 0.5, "loss_of_function"),
            ("Hang", 0.2, "loss_of_function"),
            ("Wrong Value", 0.3, "erroneous"),
        ],
    ),
    (
        "BusController",
        70,
        [
            ("Omission", 0.6, "omission"),
            ("Commission", 0.4, "commission"),
        ],
    ),
    (
        "MemoryModule",
        150,
        [
            ("Bit Flip", 0.7, "erroneous"),
            ("Bank Failure", 0.3, "loss_of_function"),
        ],
    ),
    (
        "PowerRegulator",
        90,
        [
            ("No Output", 0.5, "loss_of_function"),
            ("Over Voltage", 0.2, "erroneous"),
            ("Under Voltage", 0.3, "degraded"),
        ],
    ),
]


def standard_reliability_model() -> ReliabilityModel:
    """A fresh copy of the built-in catalogue."""
    return ReliabilityModel(
        ComponentReliability(
            component_class,
            float(fit),
            [FailureModeSpec(name, dist, nature) for name, dist, nature in modes],
        )
        for component_class, fit, modes in _CATALOGUE
    )
