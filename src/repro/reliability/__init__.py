"""Component reliability modelling (DECISIVE Step 3 inputs).

A *component reliability model* maps component classes to their FIT rate
(Failure-In-Time, 1e-9 failures/hour) and failure modes with probability
distributions, as in the paper's Table II.  Sources: CSV/"Excel" workbooks
(the paper's format), JSON, or the built-in MIL-HDBK-338B-flavoured
catalogue in :mod:`repro.reliability.standards`.
"""

from repro.reliability.model import (
    ComponentReliability,
    FailureModeSpec,
    ReliabilityError,
    ReliabilityModel,
    nature_for_mode_name,
)
from repro.reliability.sources import (
    load_reliability_json,
    load_reliability_table,
    save_reliability_table,
)
from repro.reliability.standards import standard_reliability_model

__all__ = [
    "FailureModeSpec",
    "ComponentReliability",
    "ReliabilityModel",
    "ReliabilityError",
    "nature_for_mode_name",
    "load_reliability_table",
    "load_reliability_json",
    "save_reliability_table",
    "standard_reliability_model",
]
