"""Environmental derating of reliability data — MIL-HDBK-217F-style π factors.

Handbook FIT rates are *base* rates at reference conditions; fielded rates
are ``lambda = lambda_base * pi_T * pi_Q * pi_E`` with

- ``pi_T`` — temperature acceleration (Arrhenius over junction/ambient
  temperature against the 25 °C reference);
- ``pi_Q`` — quality level (screened space parts to commercial plastic);
- ``pi_E`` — application environment (ground benign to cannon launch;
  we carry the common subset).

:func:`derate_model` applies one operating profile to a whole
:class:`~repro.reliability.ReliabilityModel`, producing the model DECISIVE
Step 3 should aggregate when the system will not live on a lab bench.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro.reliability.model import (
    ComponentReliability,
    ReliabilityError,
    ReliabilityModel,
)

#: Boltzmann constant in eV/K.
_BOLTZMANN_EV = 8.617e-5

#: Reference temperature for handbook base rates, in °C.
REFERENCE_CELSIUS = 25.0

#: Default activation energy in eV (typical for silicon failure mechanisms).
DEFAULT_ACTIVATION_EV = 0.4

#: Quality factors (MIL-HDBK-217F flavour).
QUALITY_FACTORS: Dict[str, float] = {
    "space": 0.5,
    "full_military": 1.0,
    "ruggedized": 2.0,
    "commercial": 5.0,
    "commercial_plastic": 10.0,
}

#: Environment factors (subset of MIL-HDBK-217F's environments).
ENVIRONMENT_FACTORS: Dict[str, float] = {
    "ground_benign": 0.5,
    "ground_fixed": 1.0,
    "ground_mobile": 4.0,
    "naval_sheltered": 4.0,
    "airborne_cargo": 5.0,
    "airborne_fighter": 8.0,
    "missile_launch": 12.0,
}


@dataclass(frozen=True)
class OperatingProfile:
    """One deployment's environmental conditions."""

    temperature_celsius: float = REFERENCE_CELSIUS
    quality: str = "full_military"
    environment: str = "ground_fixed"
    activation_energy_ev: float = DEFAULT_ACTIVATION_EV

    def __post_init__(self) -> None:
        if self.quality not in QUALITY_FACTORS:
            raise ReliabilityError(
                f"unknown quality level {self.quality!r}; "
                f"known: {sorted(QUALITY_FACTORS)}"
            )
        if self.environment not in ENVIRONMENT_FACTORS:
            raise ReliabilityError(
                f"unknown environment {self.environment!r}; "
                f"known: {sorted(ENVIRONMENT_FACTORS)}"
            )
        if self.temperature_celsius <= -273.15:
            raise ReliabilityError("temperature below absolute zero")
        if self.activation_energy_ev <= 0:
            raise ReliabilityError("activation energy must be positive")

    @property
    def pi_temperature(self) -> float:
        """Arrhenius acceleration relative to the 25 °C reference."""
        t_use = self.temperature_celsius + 273.15
        t_ref = REFERENCE_CELSIUS + 273.15
        return math.exp(
            (self.activation_energy_ev / _BOLTZMANN_EV)
            * (1.0 / t_ref - 1.0 / t_use)
        )

    @property
    def pi_quality(self) -> float:
        return QUALITY_FACTORS[self.quality]

    @property
    def pi_environment(self) -> float:
        return ENVIRONMENT_FACTORS[self.environment]

    @property
    def total_factor(self) -> float:
        return self.pi_temperature * self.pi_quality * self.pi_environment


def derate_entry(
    entry: ComponentReliability, profile: OperatingProfile
) -> ComponentReliability:
    """One derated entry (mode distributions are condition-independent)."""
    return ComponentReliability(
        component_class=entry.component_class,
        fit=entry.fit * profile.total_factor,
        failure_modes=list(entry.failure_modes),
    )


def derate_model(
    model: ReliabilityModel,
    profile: OperatingProfile,
    overrides: Optional[Dict[str, OperatingProfile]] = None,
) -> ReliabilityModel:
    """A new model with every entry derated for ``profile``.

    ``overrides`` supplies per-class profiles (e.g. a component mounted on
    a hot regulator sees a higher local temperature).
    """
    overrides = overrides or {}
    derated = ReliabilityModel()
    for entry in model.entries():
        local = overrides.get(entry.component_class, profile)
        derated.add(derate_entry(entry, local))
    return derated
