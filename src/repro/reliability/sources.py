"""Loaders and writers for reliability models.

The table format matches the paper's Table II exactly: columns ``Component``,
``FIT``, ``Failure_Mode``, ``Distribution``, with blank continuation cells
for components that have several modes::

    Component,FIT,Failure_Mode,Distribution
    Diode,10,Open,30%
    ,,Short,70%
    Capacitor,2,Open,30%
    ,,Short,70%
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.drivers import JsonDriver, TableDriver
from repro.drivers.table import Sheet, Workbook
from repro.reliability.model import (
    ComponentReliability,
    FailureModeSpec,
    ReliabilityError,
    ReliabilityModel,
)


def _coerce_fraction(value: Any, context: str) -> float:
    """Accept 0.3, '30%' (already parsed by the table driver) or 30 (percent)."""
    if value is None:
        raise ReliabilityError(f"{context}: missing distribution")
    number = float(value)
    if number > 1.0:
        number /= 100.0
    return number


def load_reliability_table(
    location: Union[str, Path],
    sheet: str = "",
    check_distributions: bool = True,
) -> ReliabilityModel:
    """Load a Table II-style reliability workbook (CSV file or directory)."""
    driver = TableDriver(location, metadata=sheet)
    rows = driver.elements(sheet or None)
    return reliability_from_rows(rows, check_distributions, source=str(location))


def reliability_from_rows(
    rows: List[Dict[str, Any]],
    check_distributions: bool = True,
    source: str = "<rows>",
) -> ReliabilityModel:
    """Build a model from Table II-style dict rows (continuation rows have a
    blank ``Component`` cell)."""
    model = ReliabilityModel()
    current_class: Optional[str] = None
    current_fit: float = 0.0
    current_modes: List[FailureModeSpec] = []

    def flush() -> None:
        nonlocal current_modes
        if current_class is None:
            return
        entry = ComponentReliability(current_class, current_fit, current_modes)
        if check_distributions:
            entry.check_distribution()
        model.add(entry)
        current_modes = []

    for index, row in enumerate(rows):
        component = row.get("Component")
        if component not in (None, ""):
            flush()
            current_class = str(component)
            fit = row.get("FIT")
            if fit is None:
                raise ReliabilityError(
                    f"{source} row {index + 1}: component {component!r} has no FIT"
                )
            current_fit = float(fit)
        if current_class is None:
            raise ReliabilityError(
                f"{source} row {index + 1}: continuation row before any component"
            )
        mode_name = row.get("Failure_Mode")
        if mode_name in (None, ""):
            continue
        distribution = _coerce_fraction(
            row.get("Distribution"),
            f"{source} row {index + 1} ({current_class}/{mode_name})",
        )
        nature = str(row.get("Nature") or "")
        current_modes.append(
            FailureModeSpec(str(mode_name), distribution, nature)
        )
    flush()
    if len(model) == 0:
        raise ReliabilityError(f"{source}: no reliability entries found")
    return model


def save_reliability_table(
    model: ReliabilityModel, location: Union[str, Path]
) -> Path:
    """Write a model back out in Table II format."""
    sheet = Sheet(Path(location).stem or "reliability")
    for entry in model.entries():
        first = True
        for mode in entry.failure_modes:
            sheet.append(
                {
                    "Component": entry.component_class if first else "",
                    "FIT": entry.fit if first else "",
                    "Failure_Mode": mode.name,
                    "Distribution": f"{mode.distribution * 100:g}%",
                }
            )
            first = False
        if not entry.failure_modes:
            sheet.append(
                {
                    "Component": entry.component_class,
                    "FIT": entry.fit,
                    "Failure_Mode": "",
                    "Distribution": "",
                }
            )
    return Workbook([sheet]).save(location)


def load_reliability_json(location: Union[str, Path]) -> ReliabilityModel:
    """Load reliability data from JSON of the shape::

        {"components": [{"class": "Diode", "fit": 10,
                         "failure_modes": [{"name": "Open",
                                            "distribution": 0.3,
                                            "nature": "open"}, ...]}]}
    """
    driver = JsonDriver(location)
    model = ReliabilityModel()
    for record in driver.elements("components"):
        modes = [
            FailureModeSpec(
                str(m["name"]),
                _coerce_fraction(m.get("distribution"), str(m.get("name"))),
                str(m.get("nature", "")),
            )
            for m in record.get("failure_modes", [])
        ]
        entry = ComponentReliability(
            str(record["class"]), float(record["fit"]), modes
        )
        entry.check_distribution()
        model.add(entry)
    if len(model) == 0:
        raise ReliabilityError(f"{location}: no reliability entries found")
    return model
