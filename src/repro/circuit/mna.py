"""Modified Nodal Analysis — DC operating point.

Unknowns are the non-ground node voltages plus one branch current per
voltage-like element (voltage sources, ammeters and — at DC — inductors,
which behave as 0 V branches in series with their parasitic resistance).
Nonlinear diodes are solved by damped Newton iteration with pn-junction
voltage limiting.  A small ``gmin`` conductance from every node to ground
keeps matrices regular when fault injection leaves nodes floating (an *open*
failure must still produce a solution: the sensors simply read ~0).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.circuit.netlist import (
    Ammeter,
    Capacitor,
    CircuitError,
    CurrentSource,
    Diode,
    Element,
    GROUND,
    Inductor,
    Netlist,
    Resistor,
    Switch,
    VoltageSource,
)

#: Ground aliases accepted in netlists.
GROUND_NAMES = (GROUND, "GND", "gnd", "ground")

_MAX_NEWTON_ITERATIONS = 200
_NEWTON_TOLERANCE = 1e-9
_DEFAULT_GMIN = 1e-12
_MAX_DIODE_STEP = 0.5  # volts per Newton step, for convergence


def _is_ground(node: str) -> bool:
    return node in GROUND_NAMES


@dataclass
class DCSolution:
    """DC operating point: node voltages and branch currents."""

    node_voltages: Dict[str, float]
    branch_currents: Dict[str, float]
    iterations: int = 1

    def voltage(self, node: str) -> float:
        if _is_ground(node):
            return 0.0
        try:
            return self.node_voltages[node]
        except KeyError:
            raise CircuitError(f"no node named {node!r}") from None

    def voltage_across(self, node_pos: str, node_neg: str) -> float:
        return self.voltage(node_pos) - self.voltage(node_neg)

    def current(self, element_name: str) -> float:
        """Branch current of a voltage source, ammeter or inductor."""
        try:
            return self.branch_currents[element_name]
        except KeyError:
            raise CircuitError(
                f"element {element_name!r} has no tracked branch current "
                f"(tracked: {sorted(self.branch_currents)})"
            ) from None


class _System:
    """Index assignment and matrix assembly for one netlist."""

    def __init__(self, netlist: Netlist, gmin: float) -> None:
        self.netlist = netlist
        self.gmin = gmin
        self.node_index: Dict[str, int] = {}
        for node in netlist.nodes():
            if not _is_ground(node) and node not in self.node_index:
                self.node_index[node] = len(self.node_index)
        self.branch_elements: List[Element] = [
            e
            for e in netlist.elements()
            if isinstance(e, (VoltageSource, Ammeter, Inductor))
        ]
        self.branch_index: Dict[str, int] = {
            e.name: len(self.node_index) + i
            for i, e in enumerate(self.branch_elements)
        }
        self.size = len(self.node_index) + len(self.branch_elements)
        self.diodes: List[Diode] = [
            e for e in netlist.elements() if isinstance(e, Diode)
        ]

    def _idx(self, node: str) -> Optional[int]:
        if _is_ground(node):
            return None
        return self.node_index[node]

    def _stamp_conductance(
        self, matrix: np.ndarray, n1: str, n2: str, conductance: float
    ) -> None:
        i, j = self._idx(n1), self._idx(n2)
        if i is not None:
            matrix[i, i] += conductance
        if j is not None:
            matrix[j, j] += conductance
        if i is not None and j is not None:
            matrix[i, j] -= conductance
            matrix[j, i] -= conductance

    def _stamp_current(
        self, rhs: np.ndarray, n_from: str, n_to: str, current: float
    ) -> None:
        """Current ``current`` flows out of ``n_from`` into ``n_to``."""
        i, j = self._idx(n_from), self._idx(n_to)
        if i is not None:
            rhs[i] -= current
        if j is not None:
            rhs[j] += current

    def assemble(
        self, diode_voltages: Dict[str, float]
    ) -> Tuple[np.ndarray, np.ndarray]:
        matrix = np.zeros((self.size, self.size))
        rhs = np.zeros(self.size)

        for node_idx in self.node_index.values():
            matrix[node_idx, node_idx] += self.gmin

        for element in self.netlist.elements():
            if isinstance(element, Resistor):
                self._stamp_conductance(
                    matrix, element.node_pos, element.node_neg,
                    1.0 / element.resistance,
                )
            elif isinstance(element, Switch):
                resistance = (
                    element.on_resistance if element.closed else element.off_resistance
                )
                self._stamp_conductance(
                    matrix, element.node_pos, element.node_neg, 1.0 / resistance
                )
            elif isinstance(element, CurrentSource):
                self._stamp_current(
                    rhs, element.node_pos, element.node_neg, element.current
                )
            elif isinstance(element, Capacitor):
                continue  # open at DC
            elif isinstance(element, Diode):
                g, ieq = self._diode_companion(
                    element, diode_voltages.get(element.name, 0.6)
                )
                self._stamp_conductance(
                    matrix, element.node_pos, element.node_neg, g
                )
                self._stamp_current(
                    rhs, element.node_pos, element.node_neg, ieq
                )
            elif isinstance(element, (VoltageSource, Ammeter, Inductor)):
                k = self.branch_index[element.name]
                i, j = self._idx(element.node_pos), self._idx(element.node_neg)
                if i is not None:
                    matrix[i, k] += 1.0
                    matrix[k, i] += 1.0
                if j is not None:
                    matrix[j, k] -= 1.0
                    matrix[k, j] -= 1.0
                if isinstance(element, VoltageSource):
                    rhs[k] += element.voltage
                elif isinstance(element, Inductor):
                    # DC: v = i * R_series (0 V branch when R_series == 0)
                    matrix[k, k] -= element.series_resistance
            else:  # pragma: no cover - guarded by Netlist.add
                raise CircuitError(
                    f"unsupported element type {type(element).__name__}"
                )
        return matrix, rhs

    @staticmethod
    def _diode_companion(diode: Diode, vd: float) -> Tuple[float, float]:
        """Linearised (conductance, equivalent current) at bias ``vd``."""
        n_vt = diode.ideality * diode.thermal_voltage
        vd = min(vd, 2.0)  # clamp: exp() overflow guard
        exp_term = math.exp(vd / n_vt)
        current = diode.saturation_current * (exp_term - 1.0)
        conductance = diode.saturation_current * exp_term / n_vt
        conductance = max(conductance, 1e-12)
        ieq = current - conductance * vd
        return conductance, ieq

    def diode_voltage(
        self, solution: np.ndarray, diode: Diode
    ) -> float:
        def node_voltage(node: str) -> float:
            idx = self._idx(node)
            return 0.0 if idx is None else float(solution[idx])

        return node_voltage(diode.node_pos) - node_voltage(diode.node_neg)


def dc_operating_point(
    netlist: Netlist, gmin: float = _DEFAULT_GMIN
) -> DCSolution:
    """Solve the DC operating point of ``netlist``.

    Raises :class:`CircuitError` if Newton iteration fails to converge or the
    system matrix is singular even with ``gmin``.
    """
    if len(netlist) == 0:
        raise CircuitError("cannot solve an empty netlist")
    system = _System(netlist, gmin)
    if system.size == 0:
        raise CircuitError("netlist has no unknowns (everything grounded?)")

    diode_voltages: Dict[str, float] = {d.name: 0.6 for d in system.diodes}
    solution = np.zeros(system.size)
    iterations = 0
    for iterations in range(1, _MAX_NEWTON_ITERATIONS + 1):
        matrix, rhs = system.assemble(diode_voltages)
        try:
            new_solution = np.linalg.solve(matrix, rhs)
        except np.linalg.LinAlgError:
            # Retry once with a stronger gmin before giving up.
            if gmin < 1e-9:
                return dc_operating_point(netlist, gmin=1e-9)
            raise CircuitError(
                f"singular MNA matrix for netlist {netlist.name!r}"
            ) from None
        if not system.diodes:
            solution = new_solution
            break
        converged = True
        for diode in system.diodes:
            old_vd = diode_voltages[diode.name]
            new_vd = system.diode_voltage(new_solution, diode)
            step = new_vd - old_vd
            if abs(step) > _MAX_DIODE_STEP:
                new_vd = old_vd + math.copysign(_MAX_DIODE_STEP, step)
                converged = False
            elif abs(step) > _NEWTON_TOLERANCE:
                converged = False
            diode_voltages[diode.name] = new_vd
        solution = new_solution
        if converged:
            break
    else:
        raise CircuitError(
            f"Newton iteration did not converge for netlist {netlist.name!r}"
        )

    node_voltages = {
        node: float(solution[idx]) for node, idx in system.node_index.items()
    }
    branch_currents = {
        element.name: float(solution[system.branch_index[element.name]])
        for element in system.branch_elements
    }
    return DCSolution(node_voltages, branch_currents, iterations)
